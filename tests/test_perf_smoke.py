"""Smoke-scale performance regressions for the fast kernels.

Each check compares the optimised path against the retained reference
implementation at a size where the asymptotic gap is already decisive,
using the median of several repeats and a threshold far below the
measured speedups (so CI noise cannot flake them).  The full
demonstration with the ISSUE acceptance thresholds lives in
``benchmarks/bench_micro_components.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.delegation.graph import SELF, DelegationGraph
from repro.voting.exact import (
    _reference_poisson_binomial_pmf,
    _reference_weighted_bernoulli_pmf,
    poisson_binomial_pmf,
    weighted_bernoulli_pmf,
)


def _median_seconds(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_poisson_binomial_faster_than_reference():
    p = np.random.default_rng(0).uniform(0.0, 1.0, size=2048)
    fast = _median_seconds(lambda: poisson_binomial_pmf(p))
    ref = _median_seconds(lambda: _reference_poisson_binomial_pmf(p))
    # Measured ~6.5x; require a conservative 2x so CI noise cannot flake.
    assert ref / fast >= 2.0, f"PB speedup only {ref / fast:.2f}x"


def test_weighted_bernoulli_faster_than_reference():
    rng = np.random.default_rng(1)
    n = 1500
    w = np.ones(n, dtype=np.int64)
    heavy = rng.choice(n, size=40, replace=False)
    w[heavy] = rng.integers(2, 30, size=40)
    p = rng.uniform(0.0, 1.0, size=n)
    fast = _median_seconds(lambda: weighted_bernoulli_pmf(w, p))
    ref = _median_seconds(lambda: _reference_weighted_bernoulli_pmf(w, p))
    assert ref / fast >= 1.3, f"WB speedup only {ref / fast:.2f}x"


def test_chain_resolution_faster_than_reference():
    n = 4096
    delegates = np.array(list(range(1, n)) + [SELF], dtype=np.int64)
    fast = _median_seconds(lambda: DelegationGraph(delegates))
    ref = _median_seconds(
        lambda: DelegationGraph._reference_resolve_sinks(delegates)
    )
    assert ref / fast >= 2.0, f"resolution speedup only {ref / fast:.2f}x"
