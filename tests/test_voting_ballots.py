"""Tests for abstention-aware ballot evaluation."""

import pytest

from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import Ballot
from repro.voting.ballots import ballot_correct_probability
from repro.voting.exact import forest_correct_probability
from repro.voting.outcome import TiePolicy


class TestBallotValidation:
    def test_abstaining_must_be_sinks(self):
        forest = DelegationGraph([1, SELF])
        with pytest.raises(ValueError, match="must be sinks"):
            Ballot(forest, frozenset({0}))

    def test_empty_abstention_ok(self):
        ballot = Ballot(DelegationGraph.direct(3))
        assert ballot.participating_weight == 3

    def test_participating_weight(self):
        forest = DelegationGraph([2, 2, SELF, SELF])
        ballot = Ballot(forest, frozenset({3}))
        assert ballot.participating_weight == 3


class TestBallotCorrectProbability:
    def test_no_abstention_matches_forest(self):
        forest = DelegationGraph([2, 2, SELF, SELF])
        p = [0.5, 0.5, 0.8, 0.4]
        ballot = Ballot(forest)
        assert ballot_correct_probability(ballot, p) == pytest.approx(
            forest_correct_probability(forest, p)
        )

    def test_abstention_drops_sink(self):
        # Sinks 2 (weight 3) and 3 (weight 1); if 3 abstains only 2 decides.
        forest = DelegationGraph([2, 2, SELF, SELF])
        p = [0.5, 0.5, 0.8, 0.4]
        ballot = Ballot(forest, frozenset({3}))
        assert ballot_correct_probability(ballot, p) == pytest.approx(0.8)

    def test_everyone_abstains(self):
        forest = DelegationGraph.direct(2)
        ballot = Ballot(forest, frozenset({0, 1}))
        assert ballot_correct_probability(ballot, [0.9, 0.9]) == 0.0
        assert ballot_correct_probability(
            ballot, [0.9, 0.9], TiePolicy.COIN_FLIP
        ) == 0.5

    def test_votes_delegated_to_abstainer_lost(self):
        # 0 and 1 delegate to 2 who abstains; only 3 (weight 1) participates.
        forest = DelegationGraph([2, 2, SELF, SELF])
        p = [0.99, 0.99, 0.99, 0.3]
        ballot = Ballot(forest, frozenset({2}))
        assert ballot_correct_probability(ballot, p) == pytest.approx(0.3)

    def test_length_mismatch_rejected(self):
        ballot = Ballot(DelegationGraph.direct(2))
        with pytest.raises(ValueError):
            ballot_correct_probability(ballot, [0.5])
