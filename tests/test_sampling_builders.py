"""Tests for the mechanism-run → recycle-graph builder (the Lemma 7 step)."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph, path_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved
from repro.sampling.builders import recycle_graph_from_mechanism_run


@pytest.fixture
def instance():
    return ProblemInstance(
        complete_graph(8),
        [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        alpha=0.15,
    )


class TestBuilder:
    def test_direct_voting_is_independent(self, instance):
        graph, order = recycle_graph_from_mechanism_run(instance, DirectVoting())
        assert graph.independent_prefix == instance.num_voters
        assert graph.partition_complexity() == 1

    def test_order_is_descending_competency(self, instance):
        _, order = recycle_graph_from_mechanism_run(instance, RandomApproved())
        p = instance.competencies[order]
        assert np.all(np.diff(p) <= 0)

    def test_node_params_match_voters(self, instance):
        graph, order = recycle_graph_from_mechanism_run(instance, RandomApproved())
        for k, voter in enumerate(order):
            assert graph.nodes[k].bernoulli_param == pytest.approx(
                instance.competency(int(voter))
            )

    def test_successors_point_to_approved(self, instance):
        graph, order = recycle_graph_from_mechanism_run(instance, RandomApproved())
        position_to_voter = {k: int(v) for k, v in enumerate(order)}
        for k, node in enumerate(graph.nodes):
            voter = position_to_voter[k]
            approved = set(instance.approved_neighbors(voter))
            for s in node.successors:
                assert position_to_voter[s] in approved

    def test_fresh_prob_matches_distribution(self, instance):
        mech = ApprovalThreshold(3)
        graph, order = recycle_graph_from_mechanism_run(instance, mech)
        for k, voter in enumerate(order):
            dist = mech.distribution(instance.local_view(int(voter)))
            assert graph.nodes[k].fresh_prob == pytest.approx(
                dist.get(None, 0.0)
            )

    def test_partition_complexity_bounded_by_alpha(self, instance):
        graph, _ = recycle_graph_from_mechanism_run(instance, RandomApproved())
        import math

        assert graph.partition_complexity() <= math.ceil(1 / instance.alpha) + 1

    def test_expected_sum_at_least_direct(self, instance):
        # Delegation to strictly better voters raises the expected sum.
        graph, _ = recycle_graph_from_mechanism_run(instance, RandomApproved())
        assert graph.mean_sum() >= instance.competencies.sum() - 1e-9

    def test_expectation_increase_at_least_alpha_per_delegation(self, instance):
        # Lemma 7's key step: every delegating voter gains >= alpha.
        graph, order = recycle_graph_from_mechanism_run(
            instance, RandomApproved()
        )
        num_delegators = sum(1 for node in graph.nodes if node.successors)
        lift = graph.mean_sum() - float(instance.competencies.sum())
        assert lift >= num_delegators * instance.alpha - 1e-9

    def test_path_graph_locality(self):
        inst = ProblemInstance(path_graph(4), [0.2, 0.4, 0.6, 0.8], alpha=0.1)
        graph, order = recycle_graph_from_mechanism_run(inst, RandomApproved())
        # voter 0 (p=0.2) may only recycle its neighbour 1 (p=0.4)
        pos = {int(v): k for k, v in enumerate(order)}
        node = graph.nodes[pos[0]]
        assert [pos[1]] == list(node.successors)

    def test_rejects_non_uniform_mechanism(self, instance):
        class Lopsided(ApprovalThreshold):
            def distribution(self, view):
                if view.approval_count >= 2:
                    targets = list(view.approved)
                    out = {t: 0.0 for t in targets}
                    out[targets[0]] = 0.9
                    out[targets[1]] = 0.1
                    return out
                return {None: 1.0}

        with pytest.raises(ValueError, match="non-uniform"):
            recycle_graph_from_mechanism_run(instance, Lopsided(1))

    def test_empirical_sum_close_to_expectation(self, instance):
        graph, _ = recycle_graph_from_mechanism_run(instance, RandomApproved())
        rng = np.random.default_rng(0)
        sums = [graph.sample_sum(rng) for _ in range(3000)]
        assert np.mean(sums) == pytest.approx(graph.mean_sum(), rel=0.05)
