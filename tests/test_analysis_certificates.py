"""Tests for theorem certificates."""

import numpy as np

from repro.analysis.certificates import (
    Certificate,
    _epsilon_for_max_degree,
    certify,
    summarize_certificates,
)
from repro.core.instance import ProblemInstance
from repro.graphs.generators import (
    complete_graph,
    random_min_degree_graph,
    random_regular_graph,
    star_graph,
)
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.greedy import CappedRandomApproved
from repro.mechanisms.sampled import SampledNeighbourhood
from repro.mechanisms.threshold import ApprovalThreshold


def balanced_instance(graph, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.uniform(0.4, 0.6, graph.num_vertices)
    return ProblemInstance(graph, p, alpha=0.05)


def find(certs, fragment):
    matches = [c for c in certs if fragment in c.statement]
    assert matches, f"no certificate mentioning {fragment!r}"
    return matches[0]


class TestTheorem2Certificate:
    def test_applies_on_complete_with_algorithm1(self):
        inst = balanced_instance(complete_graph(50))
        certs = certify(inst, ApprovalThreshold(3))
        assert find(certs, "Theorem 2").applies

    def test_fails_on_unbalanced_competencies(self):
        inst = ProblemInstance(complete_graph(10), [0.9] * 10, alpha=0.05)
        certs = certify(inst, ApprovalThreshold(3))
        assert not find(certs, "Theorem 2").applies

    def test_fails_on_star(self):
        inst = balanced_instance(star_graph(10))
        certs = certify(inst, ApprovalThreshold(3))
        assert not find(certs, "Theorem 2").applies


class TestTheorem3Certificate:
    def test_applies_on_regular_with_algorithm2(self):
        inst = balanced_instance(random_regular_graph(40, 4, seed=0))
        certs = certify(inst, SampledNeighbourhood(threshold=1, d=4))
        assert find(certs, "Theorem 3").applies

    def test_absent_for_other_mechanisms(self):
        inst = balanced_instance(random_regular_graph(40, 4, seed=0))
        certs = certify(inst, DirectVoting())
        assert not any("Theorem 3" in c.statement for c in certs)


class TestTheorem4Certificate:
    def test_applies_for_small_degree(self):
        from repro.graphs.generators import cycle_graph

        inst = balanced_instance(cycle_graph(1000))
        cert = find(certify(inst, DirectVoting()), "Theorem 4")
        assert cert.applies

    def test_fails_for_large_degree(self):
        inst = balanced_instance(complete_graph(50))
        cert = find(certify(inst, DirectVoting()), "Theorem 4")
        assert not cert.applies

    def test_fails_for_unbounded_competencies(self):
        from repro.graphs.generators import cycle_graph

        inst = ProblemInstance(
            cycle_graph(100), [1.0] + [0.5] * 99, alpha=0.05
        )
        cert = find(certify(inst, DirectVoting()), "Theorem 4")
        assert not cert.applies


class TestTheorem5Certificate:
    def test_applies_for_high_min_degree(self):
        g = random_min_degree_graph(100, 12, seed=0)
        inst = balanced_instance(g)
        cert = find(certify(inst, FractionApproved(0.5)), "Theorem 5")
        assert cert.applies

    def test_fails_for_low_min_degree(self):
        from repro.graphs.generators import path_graph

        inst = balanced_instance(path_graph(100))
        cert = find(certify(inst, FractionApproved(0.5)), "Theorem 5")
        assert not cert.applies


class TestLemmaCertificates:
    def test_lemma3_applies_to_direct_voting(self):
        inst = balanced_instance(complete_graph(20))
        cert = find(certify(inst, DirectVoting()), "Lemma 3")
        assert cert.applies

    def test_lemma3_deferred_for_delegating_mechanisms(self):
        inst = balanced_instance(complete_graph(20))
        cert = find(certify(inst, ApprovalThreshold(1)), "Lemma 3")
        assert not cert.applies
        assert "runtime" in cert.reason

    def test_lemma5_applies_to_capped_mechanism(self):
        inst = balanced_instance(complete_graph(200))
        cert = find(certify(inst, CappedRandomApproved(3)), "Lemma 5")
        assert cert.applies

    def test_lemma5_deferred_without_cap(self):
        inst = balanced_instance(complete_graph(20))
        cert = find(certify(inst, ApprovalThreshold(1)), "Lemma 5")
        assert not cert.applies


class TestEpsilonSolver:
    def test_degree_one_trivial(self):
        assert _epsilon_for_max_degree(100, 1) == 0.0

    def test_small_degree_solvable(self):
        eps = _epsilon_for_max_degree(10**6, 4)
        assert eps is not None and 0 < eps < 1

    def test_large_degree_unsolvable(self):
        assert _epsilon_for_max_degree(100, 50) is None

    def test_degree_equals_n(self):
        assert _epsilon_for_max_degree(10, 10) is None


class TestSummary:
    def test_summary_format(self):
        certs = [
            Certificate("Theorem X", True, "g", "because"),
            Certificate("Theorem Y", False, "", "nope"),
        ]
        text = summarize_certificates(certs)
        assert "✔ Theorem X" in text
        assert "✘ Theorem Y" in text

    def test_empty(self):
        assert "no paper guarantee" in summarize_certificates([])
