"""Tests for repro._util.tables."""

import pytest

from repro._util.tables import format_cell, render_table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456, precision=3) == "0.123"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int(self):
        assert format_cell(42) == "42"

    def test_string(self):
        assert format_cell("abc") == "abc"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_large_float_scientific(self):
        assert "e" in format_cell(1.5e7)

    def test_tiny_float_scientific(self):
        assert "e" in format_cell(1.5e-7)


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_consistent(self):
        out = render_table(["col"], [[1], [100]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
