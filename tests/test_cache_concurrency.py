"""Multi-process hammering of the shared estimate cache.

The sharded service points every worker process at one cache
directory, so `EstimateCache.put` must survive N concurrent writers:
racing writers of the *same* digest land exactly one entry (the rest
quietly drop their identical copies via the `os.link` claim), writers
of *disjoint* digests never lose a write, and no interleaving ever
leaves a torn or half-written file where `get` can see it.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.cache import SCHEMA_VERSION, EstimateCache

_DIGEST = "d" * 64


def _estimate(seed: int) -> dict:
    # Deterministic content per digest, as in real use: every writer of
    # one digest writes identical bytes.
    return {
        "probability": 0.5 + seed / 1000.0,
        "rounds": 100 + seed,
        "std_error": 0.01,
        "ci_low": 0.4,
        "ci_high": 0.6,
        "converged": True,
    }


def _hammer_same_digest(args) -> int:
    root, writes = args
    cache = EstimateCache(root)
    for _ in range(writes):
        cache.put(_DIGEST, _estimate(0))
    return writes


def _hammer_own_digests(args) -> int:
    root, worker, writes = args
    cache = EstimateCache(root)
    for i in range(writes):
        seed = worker * writes + i
        cache.put(f"{seed:064x}", _estimate(seed))
    return writes


def _pool(n: int):
    # fork keeps startup cheap; the cache has no inherited state to trip on.
    return multiprocessing.get_context("fork").Pool(n)


class TestConcurrentWriters:
    N_PROCS = 8
    WRITES = 25

    def test_same_digest_lands_exactly_one_entry(self, tmp_path):
        root = tmp_path / "cache"
        with _pool(self.N_PROCS) as pool:
            done = pool.map(
                _hammer_same_digest,
                [(str(root), self.WRITES)] * self.N_PROCS,
            )
        assert done == [self.WRITES] * self.N_PROCS
        reader = EstimateCache(root)
        stats = reader.stats()
        assert stats["entries"] == 1
        entry = reader.get(_DIGEST)
        assert entry is not None
        assert entry["estimate"] == _estimate(0)
        # No leaked temp files from the losing writers.
        assert not list(root.glob(".tmp-*"))

    def test_disjoint_digests_lose_no_writes(self, tmp_path):
        root = tmp_path / "cache"
        with _pool(self.N_PROCS) as pool:
            pool.map(
                _hammer_own_digests,
                [(str(root), worker, self.WRITES)
                 for worker in range(self.N_PROCS)],
            )
        reader = EstimateCache(root)
        assert reader.stats()["entries"] == self.N_PROCS * self.WRITES
        for seed in range(self.N_PROCS * self.WRITES):
            entry = reader.get(f"{seed:064x}")
            assert entry is not None, f"lost write for seed {seed}"
            assert entry["estimate"] == _estimate(seed)
        assert reader.hits == self.N_PROCS * self.WRITES
        assert reader.misses == 0

    def test_no_corrupt_entries_under_contention(self, tmp_path):
        # Mixed load: everyone writes the shared digest *and* their own.
        root = tmp_path / "cache"
        with _pool(self.N_PROCS) as pool:
            shared = pool.map_async(
                _hammer_same_digest,
                [(str(root), self.WRITES)] * (self.N_PROCS // 2),
            )
            own = pool.map_async(
                _hammer_own_digests,
                [(str(root), worker, self.WRITES)
                 for worker in range(self.N_PROCS // 2)],
            )
            shared.get(timeout=120)
            own.get(timeout=120)
        # Every visible file parses, validates, and matches its digest.
        files = sorted(root.glob("*.json"))
        assert len(files) == 1 + (self.N_PROCS // 2) * self.WRITES
        for path in files:
            data = json.loads(path.read_text())
            assert data["schema"] == SCHEMA_VERSION
            assert path.name == f"{data['digest']}.json"
            assert set(data["estimate"]) >= {
                "probability", "rounds", "std_error",
                "ci_low", "ci_high", "converged",
            }

    def test_stats_consistent_after_the_dust_settles(self, tmp_path):
        root = tmp_path / "cache"
        with _pool(4) as pool:
            pool.map(
                _hammer_own_digests,
                [(str(root), worker, 10) for worker in range(4)],
            )
        stats = EstimateCache(root).stats()
        assert stats["entries"] == 40
        assert stats["bytes"] > 0
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestSingleProcessSemantics:
    """The claim path must not change single-writer behaviour."""

    def test_put_then_get_round_trips(self, tmp_path):
        cache = EstimateCache(tmp_path / "cache")
        cache.put(_DIGEST, _estimate(3))
        entry = cache.get(_DIGEST)
        assert entry["estimate"] == _estimate(3)
        assert cache.hits == 1

    def test_repeated_put_is_idempotent(self, tmp_path):
        cache = EstimateCache(tmp_path / "cache")
        for _ in range(5):
            cache.put(_DIGEST, _estimate(3))
        assert cache.stats()["entries"] == 1
        assert not list((tmp_path / "cache").glob(".tmp-*"))

    def test_prune_still_bounds_entries(self, tmp_path):
        cache = EstimateCache(tmp_path / "cache", max_entries=5)
        for seed in range(12):
            cache.put(f"{seed:064x}", _estimate(seed))
        assert cache.stats()["entries"] == 5
