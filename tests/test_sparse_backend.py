"""Sparse (CSR-native) backend equivalence suite.

The CSR backend's contract is *bit-identity*, not approximation: a graph
built through :meth:`Graph.from_csr` must be indistinguishable — same
digest, same forests, same estimates — from the same graph built through
the edge-list constructor, for every topology, mechanism and engine.
Chunked streaming must likewise be invisible: any ``chunk_rounds`` yields
the same bits as the unchunked run.  These tests pin all of that, plus
the int32/int64 index-dtype boundary and the tuple-view size gate that
keeps million-vertex graphs from materialising Python tuples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approval_graph import (
    _approval_in_degrees,
    _longest_chain,
    _reference_in_degrees,
    _reference_longest_chain,
)
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs import generators as G
from repro.graphs import graph as graph_module
from repro.graphs.graph import Graph, allow_tuple_views, csr_index_dtype
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.greedy import GreedyBest
from repro.mechanisms.sampled import SampledNeighbourhood
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved
from repro.voting.montecarlo import BatchEstimator

# The four non-complete topology families the scale work targets, small
# enough that the dense (edge-tuple) twin is cheap to build.
TOPOLOGIES = [
    ("ba", lambda: G.barabasi_albert_graph(72, 3, seed=7)),
    ("ws", lambda: G.watts_strogatz_graph(72, 6, 0.2, seed=11)),
    ("caveman", lambda: G.connected_caveman_graph(12, 6)),
    ("regular", lambda: G.random_regular_graph(72, 4, seed=13)),
]

MECHANISMS = [
    ("direct", lambda: DirectVoting()),
    ("threshold", lambda: ApprovalThreshold(2)),
    ("random-approved", lambda: RandomApproved()),
    ("fraction", lambda: FractionApproved(0.5)),
    ("sampled", lambda: SampledNeighbourhood(2)),
    ("greedy", lambda: GreedyBest()),
]


def _twin_instances(build):
    """The same instance built via the dense and the CSR constructor."""
    csr_graph = build()
    n = csr_graph.num_vertices
    dense_graph = Graph(n, csr_graph.edge_array)
    p = bounded_uniform_competencies(n, 0.3, seed=5)
    return (
        ProblemInstance(dense_graph, p, alpha=0.08),
        ProblemInstance(csr_graph, p, alpha=0.08),
    )


@pytest.mark.parametrize("topo,build", TOPOLOGIES, ids=[t for t, _ in TOPOLOGIES])
@pytest.mark.parametrize("mech,make", MECHANISMS, ids=[m for m, _ in MECHANISMS])
@pytest.mark.parametrize("use_reference", [False, True], ids=["batch", "reference"])
def test_csr_vs_dense_bit_identity(topo, build, mech, make, use_reference):
    """Same seed, same bits: dense-built and CSR-built twins agree exactly."""
    dense, sparse = _twin_instances(build)
    mechanism = make()
    forests_dense = mechanism.sample_delegations_batch(dense, 6, seed=3)
    forests_sparse = mechanism.sample_delegations_batch(sparse, 6, seed=3)
    assert np.array_equal(forests_dense, forests_sparse)
    assert forests_dense.dtype == forests_sparse.dtype
    est = BatchEstimator(use_reference=use_reference)
    a = est.estimate(dense, mechanism, rounds=12, seed=9)
    b = est.estimate(sparse, mechanism, rounds=12, seed=9)
    assert a.probability == b.probability
    assert a.std_error == b.std_error


@pytest.mark.parametrize("topo,build", TOPOLOGIES, ids=[t for t, _ in TOPOLOGIES])
def test_from_csr_round_trip(topo, build):
    """``from_csr(*g.adjacency_csr())`` preserves identity semantics."""
    g = build()
    indptr, indices = g.adjacency_csr()
    h = Graph.from_csr(g.num_vertices, indptr, indices, validate=True)
    assert h == g
    assert hash(h) == hash(g)
    assert h.num_edges == g.num_edges
    assert np.array_equal(h.degrees(), g.degrees())
    assert np.array_equal(h.edge_array, g.edge_array)
    for v in (0, g.num_vertices // 2, g.num_vertices - 1):
        assert h.neighbors(v) == g.neighbors(v)
    # CSR arrays come back verbatim.
    hp, hi = h.adjacency_csr()
    assert np.array_equal(hp, indptr) and np.array_equal(hi, indices)


@pytest.mark.parametrize(
    "mutate,match",
    [
        (lambda p, i: (p, np.where(i >= 1, i - 1, i)), "self-loop|symmetric|increasing"),
        (lambda p, i: (p, i + 100), "out of range"),
        (lambda p, i: (p[:-1], i), "length"),
        (lambda p, i: (p, i[::-1].copy()), "increasing|symmetric"),
    ],
)
def test_from_csr_validation_rejects_bad_input(mutate, match):
    g = G.connected_caveman_graph(4, 4)
    indptr, indices = g.adjacency_csr()
    bad_indptr, bad_indices = mutate(indptr.copy(), indices.astype(np.int64))
    with pytest.raises(ValueError, match=match):
        Graph.from_csr(g.num_vertices, bad_indptr, bad_indices, validate=True)


def test_from_csr_asymmetric_rejected():
    # 0→1 present, 1→0 missing: valid rows, invalid graph.
    indptr = np.array([0, 1, 1, 1])
    indices = np.array([1])
    with pytest.raises(ValueError, match="symmetric"):
        Graph.from_csr(3, indptr, indices, validate=True)


def test_csr_index_dtype_int32_overflow_guard():
    """int32 iff *both* the vertex ids and the CSR offsets fit in int32."""
    i32_max = np.iinfo(np.int32).max
    assert csr_index_dtype(1000, 4000) == np.int32
    assert csr_index_dtype(i32_max, 100) == np.int32
    assert csr_index_dtype(i32_max + 1, 100) == np.int64
    assert csr_index_dtype(100, i32_max) == np.int32
    assert csr_index_dtype(100, i32_max + 1) == np.int64
    assert csr_index_dtype(i32_max + 1, i32_max + 1) == np.int64


def test_generator_graphs_use_int32_indices():
    for _, build in TOPOLOGIES:
        g = build()
        indptr, indices = g.adjacency_csr()
        assert indices.dtype == np.int32
        assert indptr.dtype == np.int32


@pytest.mark.parametrize("chunk_rounds", [1, 3, 5, None])
def test_batch_sampling_chunk_invariance(chunk_rounds):
    """Chunk boundaries cannot shift round seeds: forests are identical."""
    _, instance = _twin_instances(TOPOLOGIES[0][1])
    mechanism = ApprovalThreshold(2)
    baseline = mechanism.sample_delegations_batch(instance, 11, seed=2)
    chunked = mechanism.sample_delegations_batch(
        instance, 11, seed=2, chunk_rounds=chunk_rounds
    )
    assert np.array_equal(baseline, chunked)


@pytest.mark.parametrize("chunk_rounds", [1, 4, None])
def test_estimator_chunk_invariance(chunk_rounds):
    _, instance = _twin_instances(TOPOLOGIES[1][1])
    mechanism = RandomApproved()
    baseline = BatchEstimator().estimate(instance, mechanism, rounds=13, seed=4)
    chunked = BatchEstimator(chunk_rounds=chunk_rounds).estimate(
        instance, mechanism, rounds=13, seed=4
    )
    assert baseline.probability == chunked.probability
    assert baseline.std_error == chunked.std_error


@pytest.mark.parametrize("alpha", [0.02, 0.1, 0.5])
@pytest.mark.parametrize(
    "topo,build",
    TOPOLOGIES + [("complete", lambda: G.complete_graph(40))],
    ids=[t for t, _ in TOPOLOGIES] + ["complete"],
)
def test_approval_graph_kernels_match_reference(topo, build, alpha):
    """Vectorised in-degree / longest-chain pin to the per-voter oracles."""
    g = build()
    p = bounded_uniform_competencies(g.num_vertices, 0.25, seed=17)
    instance = ProblemInstance(g, p, alpha=alpha)
    assert np.array_equal(
        _approval_in_degrees(instance), _reference_in_degrees(instance)
    )
    assert _longest_chain(instance) == _reference_longest_chain(instance)


def test_approval_graph_kernels_equal_competencies():
    # Degenerate floats: ties everywhere, tiny alpha.
    g = G.complete_graph(16)
    p = np.full(16, 0.5)
    instance = ProblemInstance(g, p, alpha=1e-12)
    assert np.array_equal(
        _approval_in_degrees(instance), _reference_in_degrees(instance)
    )
    assert _longest_chain(instance) == _reference_longest_chain(instance)


def test_tuple_view_gate(monkeypatch):
    """Beyond the limit, bulk tuple views raise; array APIs keep working."""
    g = G.connected_caveman_graph(6, 5)
    monkeypatch.setattr(graph_module, "TUPLE_VIEW_LIMIT", 4)
    with pytest.raises(RuntimeError, match="TUPLE_VIEW_LIMIT"):
        g.edges
    with pytest.raises(RuntimeError, match="TUPLE_VIEW_LIMIT"):
        g._adjacency_tuples()
    # Array-native and per-vertex APIs stay available at any size.
    assert g.edge_array.shape == (g.num_edges, 2)
    indptr, indices = g.adjacency_csr()
    assert indices.size == 2 * g.num_edges
    assert len(g.neighbors(0)) == g.degree(0)
    with allow_tuple_views():
        assert len(g.edges) == g.num_edges
    # The gate re-engages once the context exits (fresh graph: `edges`
    # caches a successfully built view).
    g2 = G.connected_caveman_graph(6, 5)
    with pytest.raises(RuntimeError, match="TUPLE_VIEW_LIMIT"):
        g2.edges
