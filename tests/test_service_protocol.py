"""Protocol-layer tests for :mod:`repro.service.protocol`.

Every error path must produce a *typed* :class:`ServiceError` (stable
``code``, mapped HTTP status) — never a bare traceback — and the
request dataclasses must mirror the library's cache-digest parameters
exactly, which is what makes served estimates share persistent-cache
entries (and coalesce keys) with direct library calls.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import estimate_digest
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.io import instance_to_dict
from repro.mechanisms.threshold import ApprovalThreshold
from repro.service.protocol import (
    HTTP_STATUS,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    EstimateRequest,
    ExperimentRequest,
    PowerThreshold,
    ServiceError,
    build_mechanism,
    instance_pool,
    mechanism_pool,
    mechanism_spec,
    parse_body,
    parse_request,
)


def _instance(n: int = 16, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


def _body(**overrides):
    body = {
        "v": PROTOCOL_VERSION,
        "op": "estimate",
        "instance": instance_to_dict(_instance()),
        "mechanism": {"name": "approval_threshold", "params": {"threshold": 2}},
        "rounds": 40,
        "seed": 1,
    }
    body.update(overrides)
    return body


def _raw(**overrides) -> bytes:
    return json.dumps(_body(**overrides)).encode()


class TestServiceError:
    def test_codes_map_to_http_statuses(self):
        for code, status in HTTP_STATUS.items():
            assert ServiceError(code, "x").http_status == status

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServiceError("nonsense", "x")

    def test_payload_shape(self):
        payload = ServiceError("queue_full", "busy").payload()
        assert payload == {
            "v": PROTOCOL_VERSION,
            "ok": False,
            "error": {"code": "queue_full", "message": "busy"},
        }


class TestParseBody:
    def test_valid_body_round_trips(self):
        assert parse_body(_raw())["op"] == "estimate"

    def test_malformed_json_is_typed(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(b'{"v": 1, "op": ')
        assert excinfo.value.code == "bad_json"
        assert excinfo.value.http_status == 400

    def test_non_utf8_is_bad_json(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(b"\xff\xfe\x00")
        assert excinfo.value.code == "bad_json"

    def test_non_object_body_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(b'[1, 2, 3]')
        assert excinfo.value.code == "bad_request"

    def test_unknown_schema_version(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(_raw(v=99))
        assert excinfo.value.code == "unsupported_version"
        assert "v1" in excinfo.value.message

    def test_missing_version(self):
        body = _body()
        del body["v"]
        with pytest.raises(ServiceError) as excinfo:
            parse_body(json.dumps(body).encode())
        assert excinfo.value.code == "unsupported_version"

    def test_oversized_payload(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(b"x" * 100, max_bytes=10)
        assert excinfo.value.code == "payload_too_large"
        assert excinfo.value.http_status == 413

    def test_default_limit_is_8mib(self):
        assert MAX_PAYLOAD_BYTES == 8 * 1024 * 1024

    def test_unknown_op(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_body(_raw(op="destroy"))
        assert excinfo.value.code == "bad_request"


class TestParseRequest:
    def test_valid_request(self):
        req = parse_request(parse_body(_raw()))
        assert isinstance(req, EstimateRequest)
        assert req.rounds == 40 and req.seed == 1
        assert req.engine == "batch" and req.exact_conditional is True

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_request(parse_body(_raw(surprise=1)))
        assert excinfo.value.code == "bad_request"
        assert "surprise" in excinfo.value.message

    @pytest.mark.parametrize("field", ["instance", "mechanism"])
    def test_missing_required_field(self, field):
        body = _body()
        del body[field]
        with pytest.raises(ServiceError) as excinfo:
            parse_request(parse_body(json.dumps(body).encode()))
        assert excinfo.value.code == "bad_request"
        assert field in excinfo.value.message

    @pytest.mark.parametrize(
        "overrides",
        [
            {"rounds": 0},
            {"rounds": "many"},
            {"rounds": True},
            {"seed": -1},
            {"seed": 2**63},
            {"tie_policy": "RECOUNT"},
            {"engine": "quantum"},
            {"target_se": -0.1},
            {"target_se": "small"},
            {"exact_conditional": "yes"},
            {"max_rounds": 100},  # requires target_se
            {"instance": 7},
            {"instance": {"bogus": True}},
            {"mechanism": {"name": "mind_reader", "params": {}}},
            {"mechanism": {"name": "approval_threshold", "params": {}}},
            {"mechanism": {"name": "direct", "params": {"x": 1}}},
        ],
    )
    def test_invalid_fields_are_bad_request(self, overrides):
        with pytest.raises(ServiceError) as excinfo:
            parse_request(parse_body(_raw(**overrides)))
        assert excinfo.value.code == "bad_request"

    def test_experiment_request(self):
        body = {
            "v": PROTOCOL_VERSION,
            "op": "experiment",
            "experiment": "F1",
            "scale": "smoke",
        }
        req = parse_request(parse_body(json.dumps(body).encode()))
        assert isinstance(req, ExperimentRequest)
        assert req.coalesce_key() == req.group_key()

    def test_experiment_requires_id(self):
        body = {"v": PROTOCOL_VERSION, "op": "experiment"}
        with pytest.raises(ServiceError) as excinfo:
            parse_request(parse_body(json.dumps(body).encode()))
        assert excinfo.value.code == "bad_request"

    def test_interned_instances_are_shared(self):
        instances, mechanisms = instance_pool(), mechanism_pool()
        a = parse_request(parse_body(_raw()), instances, mechanisms)
        b = parse_request(parse_body(_raw()), instances, mechanisms)
        assert a.instance is b.instance
        assert a.mechanism is b.mechanism


class TestDeterminismKeys:
    """The digest contract: served and direct calls share cache keys."""

    def test_estimator_params_match_library_digest(self):
        req = parse_request(parse_body(_raw()))
        # The literal params dict montecarlo.py hashes for this call
        # (see test_estimate_cache.PARAMS).
        assert req.estimator_params() == {
            "fn": "estimate_correct_probability",
            "rounds": 40,
            "tie_policy": "INCORRECT",
            "exact_conditional": True,
            "engine": "batch",
            "target_se": None,
            "max_rounds": None,
        }

    def test_coalesce_key_is_the_cache_digest(self):
        req = parse_request(parse_body(_raw()))
        digest = estimate_digest(
            _instance(), ApprovalThreshold(2), 1, req.estimator_params()
        )
        assert req.coalesce_key() == f"estimate:{digest}"

    def test_ops_do_not_coalesce_across_each_other(self):
        est = parse_request(parse_body(_raw()))
        ballot = parse_request(parse_body(_raw(op="ballot")))
        assert est.coalesce_key() != ballot.coalesce_key()

    def test_group_key_ignores_rounds_and_seed(self):
        a = parse_request(parse_body(_raw()))
        b = parse_request(parse_body(_raw(rounds=80, seed=9)))
        assert a.group_key() == b.group_key()
        assert a.coalesce_key() != b.coalesce_key()

    def test_adaptive_max_rounds_defaults_to_rounds(self):
        req = parse_request(parse_body(_raw(target_se=0.01)))
        params = req.estimator_params()
        assert params["target_se"] == 0.01
        assert params["max_rounds"] == 40


class TestMechanismSpecs:
    def test_known_specs_build(self):
        base = {"name": "approval_threshold", "params": {"threshold": 2}}
        specs = [
            {"name": "direct", "params": {}},
            base,
            {"name": "random_approved", "params": {}},
            {"name": "fraction_approved", "params": {"fraction": 0.25}},
            {"name": "sampled_neighbourhood", "params": {"threshold": 2, "d": 3}},
            {"name": "greedy_best", "params": {}},
            {"name": "capped_random_approved", "params": {"max_weight": 4}},
            {"name": "abstention", "params": {"base": base, "abstain_prob": 0.1}},
        ]
        for spec in specs:
            mech = build_mechanism(spec)
            assert mech.cache_token(_instance()) is not None

    def test_power_threshold_matches_lambda(self):
        power = PowerThreshold(exponent=1 / 3)
        for degree in (1, 5, 39):
            assert power(degree) == degree ** (1 / 3)

    def test_power_threshold_spec(self):
        spec = mechanism_spec(
            "approval_threshold",
            threshold={"kind": "power", "exponent": 0.5, "scale": 2.0},
        )
        mech = build_mechanism(spec)
        assert mech.cache_token(_instance()) is not None

    def test_mechanism_spec_validates_eagerly(self):
        with pytest.raises(ServiceError):
            mechanism_spec("approval_threshold")  # missing threshold

    def test_abstention_requires_local_base(self):
        with pytest.raises(ServiceError) as excinfo:
            build_mechanism(
                {
                    "name": "abstention",
                    "params": {
                        "base": {
                            "name": "abstention",
                            "params": {
                                "base": {"name": "direct", "params": {}},
                                "abstain_prob": 0.5,
                            },
                        },
                        "abstain_prob": 0.5,
                    },
                }
            )
        assert excinfo.value.code == "bad_request"
