"""Tests for the Graph type."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_edges_normalised_sorted(self):
        g = Graph(3, [(2, 1), (1, 0)])
        assert g.edges == ((0, 1), (1, 2))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(ValueError):
            Graph(-1)


class TestAccessors:
    @pytest.fixture
    def triangle_plus(self):
        # triangle 0-1-2 plus pendant 3 attached to 0
        return Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])

    def test_neighbors_sorted(self, triangle_plus):
        assert triangle_plus.neighbors(0) == (1, 2, 3)

    def test_degree(self, triangle_plus):
        assert triangle_plus.degree(0) == 3
        assert triangle_plus.degree(3) == 1

    def test_degrees(self, triangle_plus):
        degs = triangle_plus.degrees()
        assert isinstance(degs, np.ndarray)
        assert degs.tolist() == [3, 2, 2, 1]
        assert not degs.flags.writeable

    def test_adjacency_csr(self, triangle_plus):
        indptr, indices = triangle_plus.adjacency_csr()
        assert indptr.tolist() == [0, 3, 5, 7, 8]
        assert indices.tolist() == [1, 2, 3, 0, 2, 0, 1, 0]
        assert not indptr.flags.writeable
        assert not indices.flags.writeable

    def test_edge_array_canonical(self, triangle_plus):
        arr = triangle_plus.edge_array
        assert arr.tolist() == [[0, 1], [0, 2], [0, 3], [1, 2]]
        assert not arr.flags.writeable

    def test_has_edge(self, triangle_plus):
        assert triangle_plus.has_edge(0, 1)
        assert triangle_plus.has_edge(1, 0)
        assert not triangle_plus.has_edge(1, 3)

    def test_has_edge_out_of_range_false(self, triangle_plus):
        assert not triangle_plus.has_edge(0, 10)

    def test_len_and_iter(self, triangle_plus):
        assert len(triangle_plus) == 4
        assert list(triangle_plus) == [0, 1, 2, 3]

    def test_max_min_degree(self, triangle_plus):
        assert triangle_plus.max_degree() == 3
        assert triangle_plus.min_degree() == 1

    def test_empty_graph_degrees(self):
        g = Graph(0)
        assert g.max_degree() == 0
        assert g.min_degree() == 0


class TestPredicates:
    def test_complete_detection(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.is_complete()

    def test_not_complete(self):
        assert not Graph(3, [(0, 1)]).is_complete()

    def test_regular(self):
        cycle = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert cycle.is_regular()

    def test_not_regular(self):
        assert not Graph(3, [(0, 1)]).is_regular()

    def test_empty_is_regular(self):
        assert Graph(0).is_regular()


class TestEqualityHash:
    def test_equal(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_unequal_sizes(self):
        assert Graph(3) != Graph(4)

    def test_non_graph_comparison(self):
        assert Graph(1) != "graph"


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_relabels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(10, 20)
        g = Graph.from_networkx(nxg)
        assert g.num_vertices == 2
        assert g.has_edge(0, 1)

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1], [0, 2], [1]])
        assert g.edges == ((0, 1), (1, 2))

    def test_from_adjacency_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Graph.from_adjacency([[1], []])
