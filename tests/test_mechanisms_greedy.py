"""Tests for GreedyBest and CappedRandomApproved."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.generators import path_graph, star_graph
from repro.mechanisms.greedy import CappedRandomApproved, GreedyBest


class TestGreedyBest:
    def test_not_local(self):
        assert not GreedyBest().is_local

    def test_deterministic(self, small_complete_instance):
        a = GreedyBest().sample_delegations(small_complete_instance, 0)
        b = GreedyBest().sample_delegations(small_complete_instance, 99)
        assert np.array_equal(a.delegates, b.delegates)

    def test_everyone_delegates_to_best_neighbour(self, small_complete_instance):
        forest = GreedyBest().sample_delegations(small_complete_instance, 0)
        inst = small_complete_instance
        best = int(np.argmax(inst.competencies))
        # complete graph: everyone except the best delegates straight to it
        for v in range(inst.num_voters):
            if v == best:
                assert forest.delegates[v] == SELF
            else:
                assert forest.delegates[v] == best

    def test_star_concentrates_on_hub(self, figure1_instance):
        forest = GreedyBest().sample_delegations(figure1_instance, 0)
        assert forest.sinks == (0,)
        assert forest.max_weight() == figure1_instance.num_voters

    def test_tie_broken_by_lowest_index(self):
        inst = ProblemInstance(
            star_graph(4, centre=0), [0.1, 0.7, 0.7, 0.7], alpha=0.05
        )
        forest = GreedyBest().sample_delegations(inst, 0)
        assert forest.delegates[0] == 1

    def test_chain_on_path(self):
        inst = ProblemInstance(path_graph(4), [0.2, 0.4, 0.6, 0.8], alpha=0.1)
        forest = GreedyBest().sample_delegations(inst, 0)
        assert forest.delegates.tolist() == [1, 2, 3, SELF]
        assert forest.max_depth() == 3


class TestCappedRandomApproved:
    def test_cap_respected(self, small_complete_instance):
        rng = np.random.default_rng(0)
        for cap in (1, 2, 3, 5):
            mech = CappedRandomApproved(cap)
            for _ in range(5):
                forest = mech.sample_delegations(small_complete_instance, rng)
                assert forest.max_weight() <= cap

    def test_cap_one_means_direct(self, small_complete_instance):
        forest = CappedRandomApproved(1).sample_delegations(
            small_complete_instance, 0
        )
        assert forest.num_delegators == 0

    def test_large_cap_allows_delegation(self, small_complete_instance):
        forest = CappedRandomApproved(100).sample_delegations(
            small_complete_instance, 0
        )
        assert forest.num_delegators > 0

    def test_delegates_only_to_approved(self, small_complete_instance):
        forest = CappedRandomApproved(4).sample_delegations(
            small_complete_instance, 0
        )
        inst = small_complete_instance
        for v in range(inst.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert inst.approves(v, t)

    def test_star_capped_restores_variance(self, figure1_instance):
        # Figure 1 failure is max_weight = n; capping fixes it.
        mech = CappedRandomApproved(4)
        forest = mech.sample_delegations(figure1_instance, 0)
        assert forest.max_weight() <= 4
        assert forest.num_sinks > figure1_instance.num_voters // 8

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            CappedRandomApproved(0)

    def test_not_local(self):
        assert not CappedRandomApproved(3).is_local

    def test_name_mentions_cap(self):
        assert "7" in CappedRandomApproved(7).name


class TestCappedCacheToken:
    """Regression for reprolint C301: the cap is the behaviour."""

    def test_token_is_behavioural_not_pickled(self, figure1_instance):
        token = CappedRandomApproved(4).cache_token(figure1_instance)
        assert token == ("CappedRandomApproved", 4)

    def test_token_separates_caps(self, figure1_instance):
        assert (
            CappedRandomApproved(2).cache_token(figure1_instance)
            != CappedRandomApproved(3).cache_token(figure1_instance)
        )
