"""Tests for the repeated-election simulation layer."""

import numpy as np
import pytest

from repro.core.competencies import bounded_uniform_competencies
from repro.graphs.generators import complete_graph, star_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.greedy import GreedyBest
from repro.mechanisms.threshold import ApprovalThreshold
from repro.simulation.drift import (
    NoDrift,
    OrnsteinUhlenbeckDrift,
    RandomWalkDrift,
    ShockDrift,
)
from repro.simulation.series import ElectionSeries


class TestDriftModels:
    @pytest.fixture
    def p(self):
        return np.linspace(0.3, 0.7, 20)

    def test_no_drift_identity(self, p):
        out = NoDrift().step(p, np.random.default_rng(0))
        assert np.array_equal(out, p)
        assert out is not p  # a copy, not an alias

    def test_random_walk_stays_bounded(self, p):
        drift = RandomWalkDrift(sigma=0.5, low=0.1, high=0.9)
        rng = np.random.default_rng(1)
        current = p
        for _ in range(20):
            current = drift.step(current, rng)
            assert np.all((current >= 0.1) & (current <= 0.9))

    def test_random_walk_moves(self, p):
        out = RandomWalkDrift(sigma=0.05).step(p, np.random.default_rng(2))
        assert not np.array_equal(out, p)

    def test_ou_pulls_to_baseline(self, p):
        drift = OrnsteinUhlenbeckDrift(baseline=0.5, rate=0.5, sigma=1e-6)
        rng = np.random.default_rng(3)
        current = p.copy()
        for _ in range(30):
            current = drift.step(current, rng)
        assert np.all(np.abs(current - 0.5) < 0.05)

    def test_shock_changes_fraction(self, p):
        drift = ShockDrift(NoDrift(), shock_prob=0.999, shock_fraction=0.5)
        out = drift.step(p, np.random.default_rng(4))
        changed = np.sum(out != p)
        assert changed == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomWalkDrift(sigma=0.0)
        with pytest.raises(ValueError):
            RandomWalkDrift(sigma=0.1, low=0.9, high=0.1)
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckDrift(0.5, rate=1.5, sigma=0.1)


class TestElectionSeries:
    @pytest.fixture
    def series(self):
        n = 64
        return ElectionSeries(
            complete_graph(n),
            bounded_uniform_competencies(n, 0.35, seed=0),
            ApprovalThreshold(lambda d: max(1.0, d ** (1 / 3))),
            drift=RandomWalkDrift(sigma=0.01, low=0.3, high=0.7),
            alpha=0.05,
        )

    def test_records_accumulate(self, series):
        series.run(5, seed=0)
        assert len(series.records) == 5
        series.run(3, seed=1)
        assert len(series.records) == 8
        assert [r.round_index for r in series.records] == list(range(8))

    def test_summary_fields(self, series):
        summary = series.run(10, seed=0)
        assert summary.rounds == 10
        assert -1.0 <= summary.min_gain <= summary.mean_gain <= 1.0
        assert 0.0 <= summary.realized_accuracy <= 1.0
        assert summary.worst_max_weight >= 1
        assert "10 elections" in summary.describe()

    def test_good_mechanism_sustains_gain(self, series):
        summary = series.run(12, seed=2)
        assert summary.mean_gain > 0.1
        assert summary.rounds_with_loss <= 1

    def test_direct_voting_zero_gain_series(self):
        n = 32
        series = ElectionSeries(
            complete_graph(n),
            bounded_uniform_competencies(n, 0.35, seed=1),
            DirectVoting(),
        )
        summary = series.run(5, seed=0)
        assert summary.mean_gain == pytest.approx(0.0, abs=1e-12)
        assert summary.rounds_with_loss == 0

    def test_star_dictator_series_loses(self):
        n = 129
        p = np.full(n, 9 / 16)
        p[0] = 5 / 8
        series = ElectionSeries(
            star_graph(n), p, GreedyBest(), alpha=0.01
        )
        summary = series.run(8, seed=0)
        assert summary.mean_gain < -0.1
        assert summary.rounds_with_loss == 8
        assert summary.worst_max_weight == n

    def test_no_drift_keeps_competencies(self):
        n = 16
        p0 = bounded_uniform_competencies(n, 0.3, seed=3)
        series = ElectionSeries(complete_graph(n), p0, DirectVoting())
        series.run(4, seed=0)
        assert np.allclose(series.current_competencies, p0)

    def test_reproducible(self):
        n = 32
        p0 = bounded_uniform_competencies(n, 0.35, seed=4)

        def build():
            return ElectionSeries(
                complete_graph(n), p0, ApprovalThreshold(2),
                drift=RandomWalkDrift(sigma=0.02),
            )

        a = build().run(6, seed=11)
        b = build().run(6, seed=11)
        assert a == b

    def test_summary_before_running_rejected(self, series):
        with pytest.raises(ValueError):
            series.summary()

    def test_rejects_zero_rounds(self, series):
        with pytest.raises(ValueError):
            series.run(0)

    def test_rejects_mismatched_competencies(self):
        with pytest.raises(ValueError):
            ElectionSeries(complete_graph(4), [0.5] * 5, DirectVoting())
