"""Tests for approval sets and the ApprovalOracle."""

import numpy as np
import pytest

from repro.core.approval import ApprovalOracle, approval_set
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph


class TestApprovalSet:
    def test_basic(self):
        p = [0.1, 0.3, 0.5, 0.9]
        assert approval_set(p, 0, alpha=0.15) == (1, 2, 3)
        assert approval_set(p, 2, alpha=0.15) == (3,)
        assert approval_set(p, 3, alpha=0.15) == ()

    def test_threshold_inclusive(self):
        # Dyadic values so the boundary comparison is exact in binary FP.
        assert approval_set([0.25, 0.5], 0, alpha=0.25) == (1,)

    def test_excludes_self(self):
        # equal competency never approved because alpha > 0
        assert approval_set([0.5, 0.5], 0, alpha=0.01) == ()

    def test_rejects_bad_voter(self):
        with pytest.raises(ValueError):
            approval_set([0.5], 1, alpha=0.1)

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError):
            approval_set([0.5, 0.6], 0, alpha=0.0)


class TestApprovalOracle:
    @pytest.fixture
    def oracle(self):
        inst = ProblemInstance(
            complete_graph(5), [0.1, 0.3, 0.5, 0.7, 0.9], alpha=0.25
        )
        return ApprovalOracle(inst)

    def test_counts_match_bruteforce(self, oracle):
        inst = oracle.instance
        for v in range(5):
            brute = sum(
                1 for u in range(5) if inst.approves(v, u)
            )
            assert oracle.approval_count(v) == brute

    def test_members_match_bruteforce(self, oracle):
        inst = oracle.instance
        for v in range(5):
            brute = tuple(
                u for u in range(5) if inst.approves(v, u)
            )
            assert oracle.approval_members(v) == brute

    def test_is_approved_delegates(self, oracle):
        assert oracle.is_approved(0, 4)
        assert not oracle.is_approved(4, 0)

    def test_partition_complexity_spacing(self):
        # competencies 0.1, 0.35, 0.6, 0.85 with alpha 0.25: chain of 4
        inst = ProblemInstance(
            complete_graph(4), [0.1, 0.35, 0.6, 0.85], alpha=0.25
        )
        assert ApprovalOracle(inst).partition_complexity() == 4

    def test_partition_complexity_all_equal(self):
        inst = ProblemInstance(complete_graph(4), [0.5] * 4, alpha=0.1)
        assert ApprovalOracle(inst).partition_complexity() == 1

    def test_partition_complexity_le_one_over_alpha(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0, 1, size=50)
        inst = ProblemInstance(complete_graph(50), p, alpha=0.2)
        assert ApprovalOracle(inst).partition_complexity() <= 6  # ceil(1/0.2)+1
