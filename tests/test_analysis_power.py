"""Tests for voting-power indices."""

import itertools

import numpy as np
import pytest

from repro.analysis.power import (
    banzhaf_indices,
    dictator_index,
    forest_banzhaf,
    normalized_banzhaf,
    power_concentration,
    shapley_shubik_indices,
)
from repro.delegation.graph import SELF, DelegationGraph


def brute_banzhaf(weights):
    """Enumerate coalitions; reference for small games (strict quota)."""
    m = len(weights)
    total = sum(weights)
    out = []
    for i in range(m):
        others = [w for j, w in enumerate(weights) if j != i]
        pivotal = 0
        for coalition in itertools.product([0, 1], repeat=m - 1):
            s = sum(w for take, w in zip(coalition, others) if take)
            if s <= total / 2 < s + weights[i]:
                pivotal += 1
        out.append(pivotal / 2 ** (m - 1))
    return np.array(out)


def brute_shapley(weights):
    """Enumerate orderings; reference for small games."""
    m = len(weights)
    total = sum(weights)
    counts = np.zeros(m)
    for perm in itertools.permutations(range(m)):
        acc = 0.0
        for player in perm:
            if acc <= total / 2 < acc + weights[player]:
                counts[player] += 1
                break
            acc += weights[player]
    import math

    return counts / math.factorial(m)


class TestBanzhaf:
    @pytest.mark.parametrize(
        "weights",
        [[1, 1, 1], [3, 1, 1], [2, 2, 1], [4, 2, 1, 1], [5, 3, 1, 1, 1]],
    )
    def test_matches_bruteforce(self, weights):
        assert np.allclose(banzhaf_indices(weights), brute_banzhaf(weights))

    def test_symmetric_players_equal(self):
        values = banzhaf_indices([2, 2, 2, 2])
        assert np.allclose(values, values[0])

    def test_dictator_gets_one(self):
        values = banzhaf_indices([10, 1, 1, 1])
        assert values[0] == pytest.approx(1.0)
        # with a strict-majority dictator the others are never pivotal
        assert np.allclose(values[1:], 0.0)

    def test_zero_weight_no_power(self):
        values = banzhaf_indices([3, 2, 0])
        assert values[2] == 0.0

    def test_empty(self):
        assert banzhaf_indices([]).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            banzhaf_indices([1, -1])

    def test_normalised_sums_to_one(self):
        values = normalized_banzhaf([3, 2, 2, 1])
        assert values.sum() == pytest.approx(1.0)

    def test_normalised_degenerate(self):
        assert normalized_banzhaf([0, 0]).sum() == 0.0


class TestShapleyShubik:
    @pytest.mark.parametrize(
        "weights", [[1, 1, 1], [3, 1, 1], [2, 2, 1], [4, 2, 1, 1]]
    )
    def test_matches_bruteforce(self, weights):
        assert np.allclose(
            shapley_shubik_indices(weights), brute_shapley(weights), atol=1e-9
        )

    def test_sums_to_one(self):
        values = shapley_shubik_indices([5, 3, 2, 1, 1])
        assert values.sum() == pytest.approx(1.0)

    def test_dictator(self):
        values = shapley_shubik_indices([10, 1, 1])
        assert values[0] == pytest.approx(1.0)

    def test_symmetric_equal(self):
        values = shapley_shubik_indices([1, 1, 1, 1, 1])
        assert np.allclose(values, 0.2)

    def test_empty(self):
        assert shapley_shubik_indices([]).size == 0


class TestForestPower:
    def test_direct_voting_equal_power(self):
        forest = DelegationGraph.direct(5)
        power = forest_banzhaf(forest)
        assert np.allclose(power, power[0])
        assert power[0] > 0

    def test_delegators_lose_power(self):
        forest = DelegationGraph([2, 2, SELF, SELF, SELF])
        power = forest_banzhaf(forest)
        assert power[0] == 0.0 and power[1] == 0.0
        assert power[2] > power[3]  # weight 3 sink beats weight 1 sinks

    def test_star_dictatorship(self):
        n = 9
        forest = DelegationGraph([SELF] + [0] * (n - 1))
        assert dictator_index(forest) == pytest.approx(1.0)
        assert power_concentration(forest) == pytest.approx(0.0)  # single sink

    def test_concentration_orders_configurations(self):
        uniform = DelegationGraph.direct(8)
        # one sink holds 5 of 8 votes; three singleton sinks remain
        skewed = DelegationGraph([SELF, 0, 0, 0, 0, SELF, SELF, SELF])
        assert power_concentration(skewed) > power_concentration(uniform)

    def test_empty_forest(self):
        assert power_concentration(DelegationGraph([])) == 0.0
        assert dictator_index(DelegationGraph([])) == 0.0
