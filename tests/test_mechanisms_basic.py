"""Tests for DirectVoting, ApprovalThreshold, RandomApproved, FractionApproved."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.generators import path_graph, star_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved


class TestDirectVoting:
    def test_nobody_delegates(self, small_complete_instance):
        forest = DirectVoting().sample_delegations(small_complete_instance, 0)
        assert forest.num_delegators == 0

    def test_distribution(self, small_complete_instance):
        view = small_complete_instance.local_view(0)
        assert DirectVoting().distribution(view) == {None: 1.0}

    def test_is_local(self):
        assert DirectVoting().is_local

    def test_name(self):
        assert DirectVoting().name == "direct"


class TestApprovalThreshold:
    def test_constant_threshold(self, small_complete_instance):
        # threshold 3: voters with >= 3 approved delegate
        mech = ApprovalThreshold(3)
        forest = mech.sample_delegations(small_complete_instance, 0)
        inst = small_complete_instance
        for v in range(inst.num_voters):
            count = inst.local_view(v).approval_count
            if count >= 3:
                assert forest.delegates[v] != SELF
            else:
                assert forest.delegates[v] == SELF

    def test_delegates_only_to_approved(self, small_complete_instance):
        mech = ApprovalThreshold(1)
        forest = mech.sample_delegations(small_complete_instance, 0)
        inst = small_complete_instance
        for v in range(inst.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert inst.approves(v, t)

    def test_threshold_function_receives_degree(self):
        seen = []

        def record(deg):
            seen.append(deg)
            return 1

        inst = ProblemInstance(star_graph(4), [0.1, 0.5, 0.6, 0.7], alpha=0.05)
        ApprovalThreshold(record).sample_delegations(inst, 0)
        # Evaluated once per *distinct* degree (hub 3, leaves 1).
        assert sorted(seen) == [1, 3]

    def test_impossible_threshold_means_direct(self, small_complete_instance):
        mech = ApprovalThreshold(10**9)
        forest = mech.sample_delegations(small_complete_instance, 0)
        assert forest.num_delegators == 0

    def test_threshold_zero_delegates_when_possible(self, small_complete_instance):
        mech = ApprovalThreshold(0)
        forest = mech.sample_delegations(small_complete_instance, 0)
        inst = small_complete_instance
        expected = sum(
            1 for v in range(inst.num_voters)
            if inst.local_view(v).approval_count > 0
        )
        assert forest.num_delegators == expected

    def test_distribution_uniform_over_approved(self, small_complete_instance):
        mech = ApprovalThreshold(1)
        view = small_complete_instance.local_view(0)
        dist = mech.distribution(view)
        assert None not in dist
        assert len(dist) == view.approval_count
        assert all(
            v == pytest.approx(1.0 / view.approval_count) for v in dist.values()
        )

    def test_distribution_vote_when_below(self, small_complete_instance):
        mech = ApprovalThreshold(10**9)
        view = small_complete_instance.local_view(0)
        assert mech.distribution(view) == {None: 1.0}

    def test_name_includes_threshold(self):
        assert "3" in ApprovalThreshold(3).name


class TestRandomApproved:
    def test_star_all_leaves_delegate(self, figure1_instance):
        forest = RandomApproved().sample_delegations(figure1_instance, 0)
        n = figure1_instance.num_voters
        assert forest.num_delegators == n - 1
        assert forest.max_weight() == n
        assert forest.sinks == (0,)

    def test_acyclic_forests(self, small_complete_instance):
        rng = np.random.default_rng(0)
        for _ in range(10):
            forest = RandomApproved().sample_delegations(
                small_complete_instance, rng
            )
            assert forest.is_acyclic()

    def test_most_competent_never_delegates(self, small_complete_instance):
        forest = RandomApproved().sample_delegations(small_complete_instance, 0)
        best = int(np.argmax(small_complete_instance.competencies))
        assert forest.delegates[best] == SELF


class TestFractionApproved:
    def test_half_rule(self):
        # path 0-1-2: middle voter has 2 neighbours; needs 1 approved.
        inst = ProblemInstance(path_graph(3), [0.3, 0.5, 0.9], alpha=0.1)
        forest = FractionApproved(0.5).sample_delegations(inst, 0)
        assert forest.delegates[1] == 2  # only approved neighbour
        assert forest.delegates[0] == 1
        assert forest.delegates[2] == SELF

    def test_below_fraction_votes(self):
        # hub has 3 neighbours, only 1 approved -> 1/3 < 1/2: vote.
        inst = ProblemInstance(
            star_graph(4), [0.5, 0.3, 0.4, 0.9], alpha=0.1
        )
        forest = FractionApproved(0.5).sample_delegations(inst, 0)
        assert forest.delegates[0] == SELF

    def test_fraction_accessor(self):
        assert FractionApproved(0.25).fraction == 0.25

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            FractionApproved(0.0)
        with pytest.raises(ValueError):
            FractionApproved(1.0)

    def test_isolated_voter_votes(self):
        from repro.graphs.graph import Graph

        inst = ProblemInstance(Graph(2), [0.4, 0.6], alpha=0.05)
        forest = FractionApproved(0.5).sample_delegations(inst, 0)
        assert forest.num_delegators == 0


class TestFractionCacheToken:
    """Regression for reprolint C301: the fraction is the behaviour."""

    def test_token_is_behavioural_not_pickled(self):
        inst = ProblemInstance(path_graph(3), [0.3, 0.5, 0.9], alpha=0.1)
        assert FractionApproved(0.25).cache_token(inst) == (
            "FractionApproved",
            0.25,
        )

    def test_token_separates_fractions(self):
        inst = ProblemInstance(path_graph(3), [0.3, 0.5, 0.9], alpha=0.1)
        assert (
            FractionApproved(0.25).cache_token(inst)
            != FractionApproved(0.75).cache_token(inst)
        )
