"""Tests for weight-concentration metrics."""

import numpy as np
import pytest

from repro.delegation.graph import SELF, DelegationGraph
from repro.delegation.metrics import (
    effective_num_voters,
    normalized_outcome_std,
    outcome_variance,
    weight_profile,
)


class TestEffectiveNumVoters:
    def test_uniform_weights(self):
        assert effective_num_voters(np.array([1, 1, 1, 1])) == pytest.approx(4.0)

    def test_dictatorship(self):
        assert effective_num_voters(np.array([10])) == pytest.approx(1.0)

    def test_skewed_below_count(self):
        e = effective_num_voters(np.array([7, 1, 1, 1]))
        assert 1.0 < e < 4.0

    def test_empty(self):
        assert effective_num_voters(np.array([])) == 0.0


class TestWeightProfile:
    def test_direct_voting_profile(self):
        profile = weight_profile(DelegationGraph.direct(5))
        assert profile.num_sinks == 5
        assert profile.max_weight == 1
        assert profile.delegation_fraction == 0.0
        assert profile.weight_gini == pytest.approx(0.0)
        assert profile.effective_num_voters == pytest.approx(5.0)
        assert profile.max_depth == 0

    def test_dictatorship_profile(self):
        profile = weight_profile(DelegationGraph([SELF, 0, 0, 0]))
        assert profile.num_sinks == 1
        assert profile.max_weight == 4
        assert profile.delegation_fraction == pytest.approx(0.75)
        assert profile.effective_num_voters == pytest.approx(1.0)

    def test_max_weight_bound_check(self):
        profile = weight_profile(DelegationGraph([SELF, 0, SELF]))
        assert profile.satisfies_max_weight_bound(2)
        assert not profile.satisfies_max_weight_bound(1.5)

    def test_mean_weight(self):
        profile = weight_profile(DelegationGraph([SELF, 0, SELF]))
        assert profile.mean_weight == pytest.approx(1.5)


class TestOutcomeVariance:
    def test_direct_voting_variance(self):
        d = DelegationGraph.direct(3)
        p = np.array([0.5, 0.5, 0.5])
        assert outcome_variance(d, p) == pytest.approx(3 * 0.25)

    def test_dictator_variance_scales_quadratically(self):
        d = DelegationGraph([SELF, 0, 0, 0])
        p = np.array([0.5] * 4)
        assert outcome_variance(d, p) == pytest.approx(16 * 0.25)

    def test_deterministic_sink_no_variance(self):
        d = DelegationGraph.direct(2)
        p = np.array([1.0, 0.0])
        assert outcome_variance(d, p) == 0.0

    def test_normalized_std_direct_bounded(self):
        n = 100
        d = DelegationGraph.direct(n)
        p = np.full(n, 0.5)
        assert normalized_outcome_std(d, p) == pytest.approx(0.5)

    def test_normalized_std_dictator_grows(self):
        n = 100
        d = DelegationGraph([SELF] + [0] * (n - 1))
        p = np.full(n, 0.5)
        # dictator: std = n/2, normalized = n/2/sqrt(n) = sqrt(n)/2
        assert normalized_outcome_std(d, p) == pytest.approx(np.sqrt(n) / 2)

    def test_empty(self):
        assert normalized_outcome_std(DelegationGraph([]), np.array([])) == 0.0
