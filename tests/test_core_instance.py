"""Tests for ProblemInstance and LocalView."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic(self):
        inst = ProblemInstance(complete_graph(3), [0.2, 0.5, 0.8], alpha=0.1)
        assert inst.num_voters == 3
        assert inst.alpha == 0.1

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            ProblemInstance(complete_graph(3), [0.5, 0.5])

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            ProblemInstance(complete_graph(2), [0.4, 0.6], alpha=0.0)

    def test_rejects_bad_competency(self):
        with pytest.raises(ValueError):
            ProblemInstance(complete_graph(2), [0.4, 1.2])

    def test_competencies_read_only(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6])
        with pytest.raises(ValueError):
            inst.competencies[0] = 0.9

    def test_competency_accessor(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6])
        assert inst.competency(1) == 0.6
        with pytest.raises(ValueError):
            inst.competency(2)

    def test_mean_competency(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6])
        assert inst.mean_competency() == pytest.approx(0.5)


class TestApproval:
    @pytest.fixture
    def inst(self):
        return ProblemInstance(
            complete_graph(4), [0.2, 0.4, 0.6, 0.8], alpha=0.25
        )

    def test_approves_strict_threshold(self, inst):
        assert inst.approves(0, 2)  # 0.2 + 0.25 <= 0.6
        assert inst.approves(0, 3)
        assert not inst.approves(0, 1)  # 0.2 + 0.25 > 0.4

    def test_boundary_inclusive(self):
        # Dyadic values so p_i + alpha == p_j holds exactly in binary FP.
        inst = ProblemInstance(complete_graph(2), [0.25, 0.5], alpha=0.25)
        assert inst.approves(0, 1)  # 0.25 + 0.25 <= 0.5 exactly

    def test_never_self_approves(self, inst):
        assert not any(inst.approves(v, v) for v in range(4))

    def test_approved_neighbors(self, inst):
        assert inst.approved_neighbors(0) == (2, 3)
        assert inst.approved_neighbors(3) == ()

    def test_approval_respects_graph(self):
        # path 0-1-2-3: voter 0 cannot approve non-neighbour 3.
        inst = ProblemInstance(path_graph(4), [0.2, 0.4, 0.6, 0.8], alpha=0.15)
        assert inst.approved_neighbors(0) == (1,)


class TestLocalView:
    def test_view_contents(self):
        inst = ProblemInstance(
            star_graph(4), [0.9, 0.3, 0.5, 0.2], alpha=0.1
        )
        view = inst.local_view(1)  # leaf sees only the hub
        assert view.voter == 1
        assert view.neighbors == (0,)
        assert view.approved == (0,)
        assert view.approval_count == 1

    def test_view_hub(self):
        inst = ProblemInstance(
            star_graph(4), [0.9, 0.3, 0.5, 0.2], alpha=0.1
        )
        view = inst.local_view(0)
        assert view.num_neighbors == 3
        assert view.approved == ()

    def test_approved_ranked_by_competency(self):
        # graph: voter 0 adjacent to 1, 2, 3 with competencies out of index order
        inst = ProblemInstance(
            star_graph(4), [0.1, 0.9, 0.5, 0.7], alpha=0.1
        )
        view = inst.local_view(0)
        assert view.approved == (2, 3, 1)  # ascending competency

    def test_view_rejects_bad_voter(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6])
        with pytest.raises(ValueError):
            inst.local_view(5)


class TestTransforms:
    def test_sorted_by_competency(self):
        g = Graph(3, [(0, 1), (1, 2)])
        inst = ProblemInstance(g, [0.9, 0.1, 0.5], alpha=0.05)
        sorted_inst, perm = inst.sorted_by_competency()
        assert list(sorted_inst.competencies) == [0.1, 0.5, 0.9]
        assert perm.tolist() == [1, 2, 0]
        # Edge structure preserved under relabelling: old (0,1) -> new (2,0)
        assert sorted_inst.graph.has_edge(0, 2)
        assert sorted_inst.graph.has_edge(0, 1)  # old (1,2) -> new (0,1)
        assert not sorted_inst.graph.has_edge(1, 2)

    def test_sorted_stable_on_ties(self):
        inst = ProblemInstance(complete_graph(3), [0.5, 0.5, 0.2])
        _, perm = inst.sorted_by_competency()
        assert perm.tolist() == [2, 0, 1]

    def test_with_competencies(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6], alpha=0.1)
        new = inst.with_competencies([0.1, 0.2])
        assert list(new.competencies) == [0.1, 0.2]
        assert new.alpha == 0.1
        assert new.graph is inst.graph

    def test_with_alpha(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6], alpha=0.1)
        assert inst.with_alpha(0.2).alpha == 0.2

    def test_repr(self):
        inst = ProblemInstance(complete_graph(2), [0.4, 0.6])
        assert "n=2" in repr(inst)


class TestApprovalStructureCache:
    def test_cached_identity(self):
        inst = ProblemInstance(complete_graph(5), np.linspace(0.1, 0.9, 5))
        assert inst.approval_structure() is inst.approval_structure()

    def test_counts_match_views(self):
        inst = ProblemInstance(
            path_graph(6), [0.1, 0.5, 0.3, 0.9, 0.2, 0.7], alpha=0.1
        )
        structure = inst.approval_structure()
        for v in range(6):
            assert structure.approved_count(v) == inst.local_view(v).approval_count
