"""Tests for the Section 6 extension mechanisms."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.generators import complete_graph
from repro.mechanisms.extensions import AbstentionMechanism, MultiDelegateWeighted
from repro.mechanisms.threshold import RandomApproved


@pytest.fixture
def instance():
    return ProblemInstance(
        complete_graph(12), np.linspace(0.25, 0.75, 12), alpha=0.04
    )


class TestAbstentionMechanism:
    def test_zero_rate_matches_base(self, instance):
        mech = AbstentionMechanism(RandomApproved(), 0.0)
        ballot = mech.sample_ballot(instance, 0)
        assert ballot.abstaining == frozenset()

    def test_full_rate_all_eligible_abstain(self, instance):
        mech = AbstentionMechanism(RandomApproved(), 1.0)
        ballot = mech.sample_ballot(instance, 0)
        eligible = {
            v for v in range(instance.num_voters)
            if instance.local_view(v).approval_count > 0
        }
        assert ballot.abstaining == frozenset(eligible)

    def test_ineligible_never_abstain(self, instance):
        mech = AbstentionMechanism(RandomApproved(), 1.0)
        ballot = mech.sample_ballot(instance, 0)
        best = int(np.argmax(instance.competencies))
        assert best not in ballot.abstaining

    def test_abstainers_are_sinks(self, instance):
        mech = AbstentionMechanism(RandomApproved(), 0.5)
        rng = np.random.default_rng(1)
        for _ in range(10):
            ballot = mech.sample_ballot(instance, rng)
            assert set(ballot.abstaining) <= set(ballot.forest.sinks)

    def test_rate_controls_abstainer_count(self, instance):
        rng = np.random.default_rng(2)
        low = np.mean([
            len(AbstentionMechanism(RandomApproved(), 0.2).sample_ballot(instance, rng).abstaining)
            for _ in range(30)
        ])
        high = np.mean([
            len(AbstentionMechanism(RandomApproved(), 0.8).sample_ballot(instance, rng).abstaining)
            for _ in range(30)
        ])
        assert high > low

    def test_sample_delegations_drops_abstention_info(self, instance):
        mech = AbstentionMechanism(RandomApproved(), 0.5)
        forest = mech.sample_delegations(instance, 0)
        assert forest.num_voters == instance.num_voters

    def test_rejects_bad_probability(self, instance):
        with pytest.raises(ValueError):
            AbstentionMechanism(RandomApproved(), 1.5)

    def test_accessors(self):
        base = RandomApproved()
        mech = AbstentionMechanism(base, 0.3)
        assert mech.base is base
        assert mech.abstain_prob == 0.3
        assert "0.3" in mech.name


class TestMultiDelegateWeighted:
    def test_k1_uniform_over_approved(self, instance):
        mech = MultiDelegateWeighted(1)
        forest = mech.sample_delegations(instance, 0)
        for v in range(instance.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert instance.approves(v, t)

    def test_large_k_selects_best(self, instance):
        mech = MultiDelegateWeighted(100)
        forest = mech.sample_delegations(instance, 0)
        worst = int(np.argmin(instance.competencies))
        best = int(np.argmax(instance.competencies))
        # with k=100 over ~11 approved, the worst voter almost surely
        # delegates to the global best
        assert forest.delegates[worst] == best

    def test_mean_delegate_competency_increases_with_k(self, instance):
        rng = np.random.default_rng(3)
        p = instance.competencies

        def mean_delegate(k):
            vals = []
            for _ in range(30):
                forest = MultiDelegateWeighted(k).sample_delegations(instance, rng)
                targets = forest.delegates[forest.delegates >= 0]
                vals.append(p[targets].mean())
            return np.mean(vals)

        assert mean_delegate(5) > mean_delegate(1)

    def test_threshold_respected(self, instance):
        mech = MultiDelegateWeighted(2, threshold=10**9)
        forest = mech.sample_delegations(instance, 0)
        assert forest.num_delegators == 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MultiDelegateWeighted(0)

    def test_decide_matches_fast_path_support(self, instance):
        # decide() and the vectorised sampler must draw from the same
        # support: approved neighbours only.
        mech = MultiDelegateWeighted(3)
        rng = np.random.default_rng(4)
        v = int(np.argmin(instance.competencies))
        view = instance.local_view(v)
        for _ in range(20):
            choice = mech.decide(view, rng)
            assert choice in view.approved

    def test_k_accessor_and_name(self):
        mech = MultiDelegateWeighted(4, threshold=2)
        assert mech.k == 4
        assert "k=4" in mech.name


class TestMultiDelegateCacheToken:
    """Regression for reprolint C301: (k, threshold) fully determine the
    mechanism's behaviour, so they — not pickle bytes — key the cache."""

    def test_token_is_behavioural_not_pickled(self, instance):
        token = MultiDelegateWeighted(3, threshold=1.5).cache_token(instance)
        assert token == ("MultiDelegateWeighted", 3, 1.5)

    def test_token_separates_k(self, instance):
        assert (
            MultiDelegateWeighted(2).cache_token(instance)
            != MultiDelegateWeighted(3).cache_token(instance)
        )

    def test_token_separates_threshold(self, instance):
        assert (
            MultiDelegateWeighted(2, threshold=1.0).cache_token(instance)
            != MultiDelegateWeighted(2, threshold=2.0).cache_token(instance)
        )
