"""Smoke tests for the runnable examples.

Every example must at least parse and expose a ``main`` function; the
fastest one is executed end to end as a subprocess so regressions in
the public API surface in CI, not on a user's terminal.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleStructure:
    def test_expected_examples_present(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "dao_governance.py",
            "corporate_network.py",
            "topology_audit.py",
            "election_planner.py",
            "continuous_governance.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        compile(path.read_text(), str(path), "exec")

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_have_main_guard(self, path):
        text = path.read_text()
        assert 'if __name__ == "__main__":' in text
        assert "def main(" in text

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_have_docstring(self, path):
        text = path.read_text()
        assert text.lstrip().startswith('#!/usr/bin/env python\n"""')


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "gain" in result.stdout
        assert "do-no-harm violation" in result.stdout
