"""End-to-end tests for the estimation server and client.

The load-bearing test is the determinism contract: an estimate served
over HTTP is *bit-identical* to the same call made directly against the
library API, for both engines, cache-cold and cache-warm.  The rest
exercises the failure surface the issue pins down: malformed JSON,
unknown schema version, oversized payloads, queue-full rejection and
mid-request shutdown must all come back as typed errors while the
server keeps serving.
"""

from __future__ import annotations

import concurrent.futures
import http.client
import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cache import EstimateCache
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.io import instance_to_dict
from repro.service import (
    BackgroundServer,
    ServerConfig,
    ServiceClient,
    ServiceError,
    mechanism_spec,
)
from repro.service.protocol import PROTOCOL_VERSION, build_mechanism
from repro.voting.montecarlo import (
    estimate_ballot_probability,
    estimate_correct_probability,
    estimate_gain,
)

MECH_SPEC = mechanism_spec("approval_threshold", threshold=2)


def _instance(n: int = 24, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


def _post_raw(port: int, path: str, body: bytes, headers=None):
    """A raw HTTP POST, bypassing the client's validation."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", path, body=body,
            headers=headers or {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServerConfig(port=0, workers=2)) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


class TestDeterminism:
    """Served == direct, bitwise, both engines, cold and warm."""

    def test_estimate_batch_engine(self, client):
        served = client.estimate(_instance(), MECH_SPEC, rounds=60, seed=7)
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=60, seed=7, engine="batch", n_jobs=1,
        )
        assert served == direct

    def test_estimate_serial_engine(self, client):
        served = client.estimate(
            _instance(), MECH_SPEC, rounds=60, seed=7, engine="serial"
        )
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=60, seed=7, engine="serial",
        )
        assert served == direct

    def test_gain(self, client):
        served = client.gain(_instance(), MECH_SPEC, rounds=40, seed=3)
        direct = estimate_gain(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=40, seed=3, engine="batch", n_jobs=1,
        )
        assert served == direct

    def test_ballot(self, client):
        served = client.ballot(_instance(), MECH_SPEC, rounds=40, seed=3)
        direct = estimate_ballot_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=40, seed=3, engine="batch", n_jobs=1,
        )
        assert served == direct

    def test_adaptive_estimate(self, client):
        served = client.estimate(
            _instance(), MECH_SPEC, rounds=200, seed=5, target_se=0.02
        )
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=200, seed=5, engine="batch", n_jobs=1, target_se=0.02,
        )
        assert served == direct

    def test_repeat_requests_identical(self, client):
        # The second call hits warm interned objects and a warm
        # estimator; the contract says that must not change a bit.
        first = client.estimate(_instance(), MECH_SPEC, rounds=50, seed=11)
        second = client.estimate(_instance(), MECH_SPEC, rounds=50, seed=11)
        assert first == second

    def test_concurrent_duplicates_identical(self, client):
        instance_dict = instance_to_dict(_instance())
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=80, seed=13, engine="batch", n_jobs=1,
        )
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(
                pool.map(
                    lambda _: client.estimate(
                        instance_dict, MECH_SPEC, rounds=80, seed=13
                    ),
                    range(16),
                )
            )
        assert all(result == direct for result in results)

    def test_served_and_direct_share_cache_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        direct_cache = EstimateCache(cache_dir)
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=50, seed=21, engine="batch", n_jobs=1, cache=direct_cache,
        )
        assert direct_cache.misses == 1
        config = ServerConfig(port=0, workers=1, cache_dir=str(cache_dir))
        with BackgroundServer(config) as bg:
            served = ServiceClient(port=bg.port).estimate(
                _instance(), MECH_SPEC, rounds=50, seed=21
            )
            stats = ServiceClient(port=bg.port).metrics()["estimate_cache"]
        assert served == direct
        assert stats["hits"] == 1 and stats["misses"] == 0


class TestHealthAndMetrics:
    def test_healthz(self, server):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/healthz", timeout=10
        ) as response:
            data = json.loads(response.read().decode())
        assert data == {"v": PROTOCOL_VERSION, "ok": True, "status": "serving"}

    def test_metrics_shape(self, client):
        client.estimate(_instance(), MECH_SPEC, rounds=20, seed=1)
        metrics = client.metrics()
        for key in ("requests", "completed", "errors", "batches", "latency",
                    "queue", "pools", "coalesced_total", "estimate_cache"):
            assert key in metrics
        assert metrics["requests"]["estimate"] >= 1
        assert metrics["batches"]["count"] >= 1
        assert metrics["latency"]["p95_ms"] >= metrics["latency"]["p50_ms"] >= 0
        assert metrics["queue"]["high_water"] == 512
        assert metrics["estimate_cache"] is None  # no cache configured

    def test_coalescing_visible_in_metrics(self):
        # A wide window plus concurrent identical requests forces the
        # batcher to share one in-flight computation.
        config = ServerConfig(port=0, workers=2, max_delay=0.05)
        with BackgroundServer(config) as bg:
            client = ServiceClient(port=bg.port)
            instance_dict = instance_to_dict(_instance())
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                results = list(
                    pool.map(
                        lambda _: client.estimate(
                            instance_dict, MECH_SPEC, rounds=400, seed=2
                        ),
                        range(8),
                    )
                )
            metrics = client.metrics()
        assert len(set(results)) == 1
        assert metrics["coalesced_total"] > 0
        assert metrics["requests"]["estimate"] == 8


class TestErrorPaths:
    """Typed errors out, server still serving afterwards."""

    def test_malformed_json(self, server, client):
        status, data = _post_raw(server.port, "/v1/estimate", b'{"v": 1, ')
        assert status == 400
        assert data["ok"] is False and data["error"]["code"] == "bad_json"
        client.healthz()  # still serving

    def test_unknown_schema_version(self, server):
        body = json.dumps({"v": 99, "op": "estimate"}).encode()
        status, data = _post_raw(server.port, "/v1/estimate", body)
        assert status == 400
        assert data["error"]["code"] == "unsupported_version"

    def test_unknown_route(self, server):
        status, data = _post_raw(server.port, "/v2/estimate", b"{}")
        assert status == 404
        assert data["error"]["code"] == "not_found"

    def test_route_op_mismatch(self, server):
        body = json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "op": "gain",
                "instance": instance_to_dict(_instance()),
                "mechanism": MECH_SPEC,
            }
        ).encode()
        status, data = _post_raw(server.port, "/v1/estimate", body)
        assert status == 400
        assert data["error"]["code"] == "bad_request"

    def test_unknown_experiment_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.experiment("NOPE", scale="smoke")
        assert excinfo.value.code == "not_found"

    def test_oversized_payload(self):
        config = ServerConfig(port=0, workers=1, max_payload=2048)
        with BackgroundServer(config) as bg:
            status, data = _post_raw(
                bg.port, "/v1/estimate", b"x" * 4096
            )
            assert status == 413
            assert data["error"]["code"] == "payload_too_large"
            # Oversized bodies close the connection, but the server
            # itself keeps serving new ones.
            ServiceClient(port=bg.port).healthz()

    def test_queue_full_rejection(self):
        # max_queue=1 with a wide-open batching window: the first
        # request is admitted and sits in the window; the second must be
        # rejected with a typed 429 regardless of timing.
        config = ServerConfig(
            port=0, workers=1, max_queue=1, max_delay=30.0, coalesce=False
        )
        with BackgroundServer(config) as bg:
            client = ServiceClient(port=bg.port)
            instance_dict = instance_to_dict(_instance())
            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                first = pool.submit(
                    client.estimate, instance_dict, MECH_SPEC,
                    rounds=10, seed=1,
                )
                time.sleep(0.3)  # let the first request enter the window
                with pytest.raises(ServiceError) as excinfo:
                    client.estimate(instance_dict, MECH_SPEC, rounds=10, seed=2)
                assert excinfo.value.code == "queue_full"
                assert excinfo.value.http_status == 429
                metrics = client.metrics()
                assert metrics["queue"]["rejected_total"] >= 1
                bg.server.config  # server alive
                bg.request_shutdown()  # flushes the window; first completes
                result = first.result(timeout=30)
            assert result.rounds == 10

    def test_request_timeout(self):
        config = ServerConfig(
            port=0, workers=1, request_timeout=0.05, max_delay=0.5
        )
        with BackgroundServer(config) as bg:
            client = ServiceClient(port=bg.port)
            with pytest.raises(ServiceError) as excinfo:
                client.estimate(_instance(), MECH_SPEC, rounds=10, seed=1)
            assert excinfo.value.code == "timeout"
            assert excinfo.value.http_status == 504
            client.healthz()  # still serving

    def test_mid_request_shutdown(self):
        # Park a request in a wide batching window, then shut down with
        # a zero drain budget: the parked request must fail with a typed
        # shutting_down error, not hang or reset the connection.
        config = ServerConfig(
            port=0, workers=1, max_delay=30.0, shutdown_timeout=0.0
        )
        bg = BackgroundServer(config).start()
        client = ServiceClient(port=bg.port)
        instance_dict = instance_to_dict(_instance())
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            parked = pool.submit(
                client.estimate, instance_dict, MECH_SPEC, rounds=10, seed=1
            )
            time.sleep(0.3)
            bg.stop()
            with pytest.raises(ServiceError) as excinfo:
                parked.result(timeout=30)
        # Drain flushes the window before failing leftovers, so the
        # parked request either completed first or got the typed error.
        assert excinfo.value.code in ("shutting_down", "internal")


class TestValidationOverHttp:
    def test_bad_mechanism_spec(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(
                _instance(), {"name": "mind_reader", "params": {}}, rounds=10
            )
        assert excinfo.value.code == "bad_request"
        assert "mind_reader" in excinfo.value.message

    def test_bad_rounds(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(_instance(), MECH_SPEC, rounds=0)
        assert excinfo.value.code == "bad_request"

    def test_experiment_round_trip(self, client):
        result = client.experiment("F1", scale="smoke", seed=0)
        assert result["experiment_id"] == "F1"
        assert result["rows"]


class TestSweepStreaming:
    """Single-server NDJSON sweeps: determinism, ordering, keep-alive."""

    def test_sweep_matches_direct_per_seed(self, client):
        seeds = [0, 1, 2, 3]
        served = client.sweep(_instance(), MECH_SPEC, seeds=seeds, rounds=60)
        direct = [
            estimate_correct_probability(
                _instance(), build_mechanism(MECH_SPEC),
                rounds=60, seed=seed, engine="batch", n_jobs=1,
            )
            for seed in seeds
        ]
        assert served == direct

    def test_gain_sweep(self, client):
        served = client.sweep(
            _instance(), MECH_SPEC, seeds=[3, 5], rounds=40, point_op="gain"
        )
        direct = [
            estimate_gain(
                _instance(), build_mechanism(MECH_SPEC),
                rounds=40, seed=seed, engine="batch", n_jobs=1,
            )
            for seed in (3, 5)
        ]
        assert served == direct

    def test_duplicate_seeds_coalesce(self):
        config = ServerConfig(port=0, workers=1, max_delay=0.05)
        with BackgroundServer(config) as bg:
            client = ServiceClient(port=bg.port)
            results = client.sweep(
                _instance(), MECH_SPEC, seeds=[9, 9, 9, 9], rounds=300
            )
            metrics = client.metrics()
        assert len(set(results)) == 1
        assert metrics["coalesced_total"] > 0

    def test_indices_filter_limits_computation(self, client):
        seeds = [0, 1, 2, 3, 4]
        seen = dict(
            client.iter_sweep(
                _instance(), MECH_SPEC, seeds=seeds, rounds=40,
                indices=[1, 3],
            )
        )
        assert sorted(seen) == [1, 3]

    def test_connection_reusable_after_sweep(self, client):
        # The stream's terminal chunk must be drained, or the next
        # request on the kept-alive socket reads garbage.
        client.sweep(_instance(), MECH_SPEC, seeds=[2, 4], rounds=40)
        follow_up = client.estimate(_instance(), MECH_SPEC, rounds=40, seed=2)
        direct = estimate_correct_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=40, seed=2, engine="batch", n_jobs=1,
        )
        assert follow_up == direct

    def test_sweep_validation_is_a_typed_error(self, server):
        body = json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "op": "sweep",
                "instance": instance_to_dict(_instance()),
                "mechanism": MECH_SPEC,
                "seeds": [],
            }
        ).encode()
        status, data = _post_raw(server.port, "/v1/sweep", body)
        assert status == 400
        assert data["error"]["code"] == "bad_request"


class TestClientReconnect:
    """The client retries once on a stale keep-alive socket."""

    def test_survives_server_restart_on_same_port(self):
        first = BackgroundServer(ServerConfig(port=0, workers=1)).start()
        port = first.port
        client = ServiceClient(port=port, timeout=60)
        first_stopped = False
        try:
            before = client.estimate(_instance(), MECH_SPEC, rounds=40, seed=5)
            first.stop()
            first_stopped = True
            # Same port, fresh process-level state: the client's pooled
            # connection is now stale and must be replaced transparently.
            second = BackgroundServer(ServerConfig(port=port, workers=1)).start()
            try:
                after = client.estimate(
                    _instance(), MECH_SPEC, rounds=40, seed=5
                )
            finally:
                second.stop()
            assert after == before
        finally:
            client.close()
            if not first_stopped:
                first.stop()

    def test_dead_server_is_a_typed_error_not_a_hang(self):
        bg = BackgroundServer(ServerConfig(port=0, workers=1)).start()
        port = bg.port
        client = ServiceClient(port=port, timeout=5)
        client.healthz()
        bg.stop()
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(_instance(), MECH_SPEC, rounds=10, seed=1)
        assert excinfo.value.code in ("unavailable", "internal")
        client.close()


class TestServeCli:
    def test_serve_boots_answers_and_stops(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line
            port = int(line.split("listening on http://")[1].split()[0]
                       .rsplit(":", 1)[1])
            client = ServiceClient(port=port, timeout=60)
            estimate = client.estimate(_instance(), MECH_SPEC, rounds=30, seed=4)
            direct = estimate_correct_probability(
                _instance(), build_mechanism(MECH_SPEC),
                rounds=30, seed=4, engine="batch", n_jobs=1,
            )
            assert estimate == direct
            client.close()
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
