"""Persistent estimate cache (:mod:`repro.cache`) tests.

Covers the digest schema (every component must flip the key), corrupt
and stale entries (recompute, replace), generator fast-forwarding (warm
sweeps leave downstream streams bit-identical), and mid-grid resume.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.random import SeedSequence

import repro.cache as cache_mod
from repro.cache import EstimateCache, estimate_digest, seed_token
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.delegation.graph import DelegationGraph
from repro.experiments import ExperimentConfig, get_experiment
from repro.graphs.generators import complete_graph
from repro.mechanisms.base import DelegationMechanism
from repro.mechanisms.threshold import ApprovalThreshold
from repro.voting.montecarlo import estimate_correct_probability


def _instance(n: int = 24, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


MECH = ApprovalThreshold(2)
PARAMS = {
    "fn": "estimate_correct_probability",
    "rounds": 40,
    "tie_policy": "INCORRECT",
    "exact_conditional": True,
    "engine": "batch",
    "target_se": None,
    "max_rounds": None,
}


def _estimate(cache, seed=1, **kwargs):
    return estimate_correct_probability(
        _instance(), MECH, rounds=40, seed=SeedSequence(seed),
        engine="batch", cache=cache, **kwargs,
    )


class TestDigest:
    def test_stable_for_equal_inputs(self):
        a = estimate_digest(_instance(), MECH, SeedSequence(1), PARAMS)
        b = estimate_digest(_instance(), MECH, SeedSequence(1), PARAMS)
        assert a is not None and a == b

    def test_each_component_flips_the_key(self):
        base = estimate_digest(_instance(), MECH, SeedSequence(1), PARAMS)
        variants = [
            estimate_digest(  # competency array
                _instance(seed=1), MECH, SeedSequence(1), PARAMS
            ),
            estimate_digest(  # mechanism parameters
                _instance(), ApprovalThreshold(3), SeedSequence(1), PARAMS
            ),
            estimate_digest(  # seed
                _instance(), MECH, SeedSequence(2), PARAMS
            ),
            estimate_digest(  # tie policy
                _instance(), MECH, SeedSequence(1),
                dict(PARAMS, tie_policy="COIN_FLIP"),
            ),
            estimate_digest(  # estimator params
                _instance(), MECH, SeedSequence(1), dict(PARAMS, rounds=80)
            ),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_schema_version_flips_the_key(self, monkeypatch):
        base = estimate_digest(_instance(), MECH, SeedSequence(1), PARAMS)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", 999)
        bumped = estimate_digest(_instance(), MECH, SeedSequence(1), PARAMS)
        assert base != bumped

    def test_equivalent_threshold_callables_share_a_key(self):
        a = estimate_digest(
            _instance(), ApprovalThreshold(lambda d: 2.0), SeedSequence(1),
            PARAMS,
        )
        b = estimate_digest(
            _instance(), ApprovalThreshold(2.0), SeedSequence(1), PARAMS
        )
        assert a == b

    def test_fresh_entropy_seed_is_uncacheable(self):
        assert seed_token(None) is None
        assert estimate_digest(_instance(), MECH, None, PARAMS) is None

    def test_untokenisable_mechanism_is_uncacheable(self):
        class Opaque(DelegationMechanism):
            def __init__(self):
                self._fn = lambda n: n  # unpicklable, no token override

            @property
            def name(self):
                return "opaque"

            def sample_delegations(self, instance, rng=None):
                return DelegationGraph([-1] * instance.num_voters)

        assert estimate_digest(_instance(), Opaque(), SeedSequence(1), PARAMS) is None


class TestEstimateCache:
    def test_hit_returns_equal_estimate(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        cold = _estimate(cache)
        warm = _estimate(cache)
        assert cold == warm
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_uncacheable_inputs_fall_through(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        est = estimate_correct_probability(
            _instance(), MECH, rounds=40, seed=None, engine="batch",
            cache=cache,
        )
        assert est.rounds == 40
        assert len(cache) == 0

    def test_corrupt_entry_recomputed_and_replaced(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        cold = _estimate(cache)
        digest = estimate_digest(
            _instance(), MECH, SeedSequence(1), PARAMS
        )
        path = cache.path_for(digest)
        assert path.is_file()
        path.write_text("not json {")
        warm = _estimate(cache)
        assert warm == cold
        # The corrupt file was discarded and rewritten valid.
        assert cache.get(digest) is not None

    def test_wrong_schema_entry_is_a_miss(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        _estimate(cache)
        digest = estimate_digest(
            _instance(), MECH, SeedSequence(1), PARAMS
        )
        entry = cache.get(digest)
        entry["schema"] = -1
        cache.path_for(digest).write_text(
            cache_mod._canonical_json(entry)
        )
        assert cache.get(digest) is None
        assert not cache.path_for(digest).exists()

    def test_clear(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        _estimate(cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_generator_fast_forwarded_on_hit(self, tmp_path):
        """Warm runs leave a live generator bit-identical to cold runs."""
        cache = EstimateCache(tmp_path / "store")

        def run():
            gen = np.random.default_rng(123)
            est = estimate_correct_probability(
                _instance(), MECH, rounds=40, seed=gen, engine="serial",
                cache=cache,
            )
            return est, gen.random(4)

        cold_est, cold_tail = run()
        warm_est, warm_tail = run()
        assert cache.hits == 1
        assert warm_est == cold_est
        np.testing.assert_array_equal(cold_tail, warm_tail)


class TestSweepResume:
    def test_killed_sweep_resumes_from_cache(self, tmp_path):
        store = tmp_path / "store"
        grid = [(n_seed, s_seed) for n_seed in range(3) for s_seed in range(2)]

        def sweep(cache, die_after=None):
            results = []
            for i, (n_seed, s_seed) in enumerate(grid):
                if die_after is not None and i >= die_after:
                    raise KeyboardInterrupt  # simulated mid-grid kill
                results.append(
                    estimate_correct_probability(
                        _instance(seed=n_seed), MECH, rounds=40,
                        seed=SeedSequence(s_seed), engine="batch",
                        cache=cache,
                    )
                )
            return results

        with pytest.raises(KeyboardInterrupt):
            sweep(EstimateCache(store), die_after=4)
        assert len(EstimateCache(store)) == 4

        resumed_cache = EstimateCache(store)
        resumed = sweep(resumed_cache)
        assert resumed_cache.hits == 4  # first four points came from disk
        assert resumed_cache.misses == 2
        assert resumed == sweep(EstimateCache(tmp_path / "fresh"))

    def test_experiment_rerun_with_cache_is_identical(self, tmp_path):
        cfg = ExperimentConfig(
            seed=3, scale="smoke", engine="batch",
            cache_dir=str(tmp_path / "store"),
        )
        uncached = get_experiment("T2")(
            ExperimentConfig(seed=3, scale="smoke", engine="batch")
        )
        cold = get_experiment("T2")(cfg)
        warm = get_experiment("T2")(cfg)
        assert cold.rows == warm.rows == uncached.rows
        assert len(EstimateCache(cfg.cache_dir)) > 0


class TestBoundedCacheAndStats:
    """``max_entries`` pruning and the ``stats()`` report."""

    def _fill(self, cache, count):
        for index in range(count):
            entry = {field: float(index) for field in
                     ("probability", "std_error", "ci_low", "ci_high")}
            entry.update(rounds=40, converged=True)
            cache.put(f"{index:064d}", entry)

    def test_invalid_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EstimateCache(tmp_path, max_entries=0)

    def test_prunes_oldest_first(self, tmp_path):
        cache = EstimateCache(tmp_path / "store", max_entries=3)
        now = 1_700_000_000
        for index in range(5):
            self._fill_one(cache, index)
            # Deterministic ordering regardless of filesystem timestamp
            # granularity: stamp each entry one second apart.
            path = cache.path_for(f"{index:064d}")
            import os as _os

            _os.utime(path, ns=((now + index) * 10**9, (now + index) * 10**9))
        cache._prune()
        assert len(cache) == 3
        survivors = sorted(p.name for p in cache._entries())
        assert survivors == [f"{i:064d}.json" for i in (2, 3, 4)]

    def _fill_one(self, cache, index):
        entry = {field: float(index) for field in
                 ("probability", "std_error", "ci_low", "ci_high")}
        entry.update(rounds=40, converged=True)
        cache.put(f"{index:064d}", entry)

    def test_unbounded_by_default(self, tmp_path):
        cache = EstimateCache(tmp_path / "store")
        self._fill(cache, 5)
        assert len(cache) == 5
        assert cache.stats()["max_entries"] is None

    def test_put_keeps_store_at_bound(self, tmp_path):
        cache = EstimateCache(tmp_path / "store", max_entries=2)
        self._fill(cache, 6)
        assert len(cache) <= 2

    def test_stats_counts_entries_bytes_hits_misses(self, tmp_path):
        store = tmp_path / "store"
        cache = EstimateCache(store, max_entries=10)
        self._fill(cache, 3)
        cache.get("f" * 64)  # miss (not a digest we wrote)
        cache.get(f"{1:064d}")  # hit
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] == sum(
            p.stat().st_size for p in store.glob("*.json")
        )
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["max_entries"] == 10

    def test_stats_on_missing_directory(self, tmp_path):
        stats = EstimateCache(tmp_path / "never-created").stats()
        assert stats == {
            "entries": 0, "bytes": 0, "hits": 0, "misses": 0,
            "max_entries": None, "by_op": {},
        }

    def test_inflight_tmp_files_excluded(self, tmp_path):
        store = tmp_path / "store"
        cache = EstimateCache(store, max_entries=10)
        self._fill(cache, 2)
        (store / ".tmp-torn.json").write_text("{")
        assert len(cache) == 2
        assert cache.stats()["entries"] == 2

    def test_pruned_entry_becomes_a_miss_not_an_error(self, tmp_path):
        store = tmp_path / "store"
        cache = EstimateCache(store, max_entries=1)
        estimate = _estimate(cache, seed=1)
        _estimate(cache, seed=2)  # evicts seed=1's entry
        again = _estimate(cache, seed=1)  # recomputed, not corrupted
        assert again == estimate
