"""Tests for repro._util.rng."""

import numpy as np
import pytest

from repro._util.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = as_generator(7).random(5)
        b = as_generator(8).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(42)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_deterministic_under_same_seed(self):
        a = [g.random() for g in spawn_generators(3, 4)]
        b = [g.random() for g in spawn_generators(3, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(9)
        gens = spawn_generators(gen, 3)
        assert len(gens) == 3


class TestDeriveSeed:
    def test_none_passthrough(self):
        assert derive_seed(None, 3) is None

    def test_deterministic(self):
        assert derive_seed(5, 2) == derive_seed(5, 2)

    def test_index_changes_seed(self):
        assert derive_seed(5, 1) != derive_seed(5, 2)

    def test_generator_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(np.random.default_rng(0), 0)


class TestSeedArithmeticRegression:
    """Regression for reprolint R103 (seed arithmetic outside _util/rng).

    X3 used to build its secondary generator pool from ``seed + 1``,
    which is exactly the *family* pool of the ``seed + 1`` run — two
    nominally independent experiment runs shared streams.  The pools
    must come from :func:`derive_seed`, whose mixing is not additive.
    """

    def test_mixing_is_not_additive(self):
        for seed in (0, 1, 5, 1234):
            for index in (1, 2, 7):
                assert derive_seed(seed, index) != seed + index

    def test_derived_pool_disjoint_from_adjacent_run(self):
        # Run `s`'s derived pool vs run `s + 1`'s base pool: the exact
        # collision the X3 fix removes.
        derived = spawn_generators(derive_seed(3, 1), 4)
        adjacent = spawn_generators(3 + 1, 4)
        a = np.array([g.random(8) for g in derived])
        b = np.array([g.random(8) for g in adjacent])
        assert not np.array_equal(a, b)
