"""`/v1/attack` service tests: served searches equal direct searches, bitwise.

An attack search is a pure function of ``(base instance, mechanism,
scenario, budget, rounds, seed, engine, tie policy, min_harm, margin)``,
so the served result — including every history row and the certificate —
must be bit-identical to a local :class:`~repro.attacks.search.AttackSearch`
run, at any shard count.  The suite also pins the protocol surface:
request validation with typed errors, base-digest-only routing (one
electorate's budget ladder lands on one shard), coalesce keys that *do*
include the search knobs, and the per-scenario metrics counters.
"""

import pytest

from repro.attacks import AttackResult, AttackSearch, benign_star_instance, verify_certificate
from repro.io import instance_to_dict
from repro.service import (
    BackgroundServer,
    ServerConfig,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import PROTOCOL_VERSION, parse_request
from repro.service.sharding import BackgroundShardedServer

MECH = {"name": "random_approved"}
SCENARIO = {"name": "misreport"}


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServerConfig(port=0, workers=2)) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


def _direct(instance, **kwargs):
    return AttackSearch(instance, MECH, SCENARIO, **kwargs).run()


class TestServedEqualsDirect:
    def test_star_violation_served_bitwise(self, client):
        instance = benign_star_instance(25)
        served = client.attack(
            instance, MECH, SCENARIO, budget=4, rounds=64, seed=7,
            engine="exact",
        )
        direct = _direct(
            instance, budget=4, rounds=64, seed=7, engine="exact"
        )
        assert served == direct.to_dict()
        assert served["found"]
        assert verify_certificate(served["certificate"]).ok

    def test_mc_engine_served_bitwise(self, client):
        instance = benign_star_instance(25)
        served = client.attack(
            instance, MECH, SCENARIO, budget=3, rounds=128, seed=3,
            min_harm=0.9,
        )
        direct = _direct(
            instance, budget=3, rounds=128, seed=3, min_harm=0.9
        )
        assert served == direct.to_dict()
        assert not served["found"]

    def test_remote_attack_search_handle(self, client):
        instance = benign_star_instance(25)
        remote = client.attack_search(
            instance, MECH, SCENARIO, rounds=64, seed=7, engine="exact"
        )
        result = remote.run(budget=4)
        assert isinstance(result, AttackResult)
        assert result.found
        assert remote.last_result == result.to_dict()
        direct = _direct(
            instance, budget=4, rounds=64, seed=7, engine="exact"
        )
        assert result.to_dict() == direct.to_dict()

    def test_sharded_served_equals_direct(self):
        instance = benign_star_instance(25)
        direct = _direct(
            instance, budget=4, rounds=64, seed=7, engine="exact"
        )
        with BackgroundShardedServer(
            ServerConfig(port=0, workers=2), shards=2
        ) as bg:
            served = ServiceClient(port=bg.port).attack(
                instance, MECH, SCENARIO, budget=4, rounds=64, seed=7,
                engine="exact",
            )
        assert served == direct.to_dict()
        assert served["found"]


class TestMetrics:
    def test_attack_counters(self, server, client):
        before = client.metrics()["attacks"]
        client.attack(
            benign_star_instance(15), MECH, SCENARIO, budget=2, rounds=32,
            seed=1, engine="exact", min_harm=0.9,
        )
        after = client.metrics()["attacks"]
        assert (
            after["searches"].get("misreport", 0)
            == before["searches"].get("misreport", 0) + 1
        )
        # min_harm=0.9 is unreachable, so the violations counter must
        # not move for this search.
        assert after["violations"].get("misreport", 0) == before[
            "violations"
        ].get("misreport", 0)


class TestValidation:
    def _post(self, client, body):
        return client._request("POST", "/v1/attack", body)

    def _body(self, **overrides):
        body = {
            "v": PROTOCOL_VERSION,
            "op": "attack",
            "instance": instance_to_dict(benign_star_instance(9)),
            "mechanism": MECH,
            "scenario": SCENARIO,
        }
        body.update(overrides)
        return body

    def test_non_local_mechanism_is_typed_bad_request(self, client):
        with pytest.raises(ServiceError) as err:
            self._post(client, self._body(mechanism={"name": "greedy_best"}))
        assert err.value.code == "bad_request"
        assert "batch kernel" in str(err.value)

    def test_unknown_scenario_is_typed_bad_request(self, client):
        with pytest.raises(ServiceError) as err:
            self._post(client, self._body(scenario={"name": "nope"}))
        assert err.value.code == "bad_request"

    def test_scenario_must_be_object(self, client):
        with pytest.raises(ServiceError) as err:
            self._post(client, self._body(scenario="misreport"))
        assert err.value.code == "bad_request"

    def test_unknown_key_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            self._post(client, self._body(target_se=0.01))
        assert err.value.code == "bad_request"

    def test_bad_min_harm_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            self._post(client, self._body(min_harm=2.0))
        assert err.value.code == "bad_request"


class TestRoutingAndCoalescing:
    def _parse(self, **overrides):
        body = {
            "v": PROTOCOL_VERSION,
            "op": "attack",
            "instance": instance_to_dict(benign_star_instance(9)),
            "mechanism": MECH,
            "scenario": SCENARIO,
        }
        body.update(overrides)
        return parse_request(body)

    def test_routing_key_is_pure_and_base_only(self):
        a = self._parse(budget=2)
        b = self._parse(budget=9)
        # A budget ladder over one electorate routes to ONE shard: the
        # routing key derives from the base state only...
        assert a.routing_key() == b.routing_key()
        assert a.routing_key() == self._parse(budget=2).routing_key()
        # ...while the coalesce key distinguishes the searches.
        assert a.coalesce_key() != b.coalesce_key()
        assert a.coalesce_key() == self._parse(budget=2).coalesce_key()

    def test_routing_key_varies_with_base_state(self):
        a = self._parse()
        b = self._parse(instance=instance_to_dict(benign_star_instance(11)))
        c = self._parse(seed=5)
        assert a.routing_key() != b.routing_key()
        assert a.routing_key() != c.routing_key()

    def test_coalesce_key_varies_with_scenario(self):
        a = self._parse()
        b = self._parse(
            scenario={"name": "misreport", "params": {"targets": 1}}
        )
        c = self._parse(scenario={"name": "sybil_flood"})
        assert len({a.coalesce_key(), b.coalesce_key(), c.coalesce_key()}) == 3
