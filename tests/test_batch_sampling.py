"""Batched forest sampling: kernels, compiled instances, batch resolution.

The determinism contract under test: given the same per-voter uniforms,
``sample_delegations_batch`` must produce forests *bit-identical* to the
per-voter reference path (``_reference_sample_delegations_batch``), and
the batched evaluation pipeline (``resolve_forests_batch`` +
``weighted_tails_batch`` via ``_batch_values``) must agree with the
per-forest oracle (``DelegationGraph`` + ``forest_correct_probability``)
to 1e-12.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.mathx import LRUCache
from repro._util.rng import as_seed_sequence, child_seed_sequence
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.delegation.graph import (
    SELF,
    DelegationCycleError,
    DelegationGraph,
    resolve_forests_batch,
)
from repro.graphs import generators as G
from repro.graphs.graph import Graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.greedy import CappedRandomApproved, GreedyBest
from repro.mechanisms.sampled import SampledNeighbourhood, _hypergeom_cdf
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved
from repro.voting.exact import (
    forest_correct_probability,
    weighted_bernoulli_pmf,
    weighted_tails_batch,
)
from repro.voting.montecarlo import BatchEstimator, _batch_values
from repro.voting.outcome import TiePolicy


def _er_graph(n: int, p: float, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < p
    return Graph(n, np.column_stack((iu[keep], ju[keep])))


def _cases():
    rng = np.random.default_rng(0)
    er = _er_graph(40, 0.15, 1)
    isolated = Graph(10, [(0, 1), (2, 3), (2, 4)])
    star = Graph(8, [(0, i) for i in range(1, 8)])
    star_p = np.full(8, 0.3)
    star_p[0] = 0.9
    return [
        ("er", ProblemInstance(er, rng.random(40), alpha=0.05)),
        ("isolated", ProblemInstance(isolated, rng.random(10), alpha=0.05)),
        # alpha close to 1 empties every approval set
        ("empty-approval", ProblemInstance(er, rng.random(40), alpha=0.999)),
        (
            "complete",
            ProblemInstance(
                G.complete_graph(12), np.linspace(0.1, 0.9, 12), alpha=0.01
            ),
        ),
        ("star", ProblemInstance(star, star_p, alpha=0.1)),
    ]


def _kernel_mechanisms():
    return [
        ApprovalThreshold(1),
        ApprovalThreshold(lambda d: max(1.0, d ** (1 / 3))),
        RandomApproved(),
        FractionApproved(0.5),
        FractionApproved(0.25),
        DirectVoting(),
        SampledNeighbourhood(1),
        SampledNeighbourhood(2, d=3),
        SampledNeighbourhood(lambda s: s / 2, d=5),
    ]


class TestBatchSamplingKernels:
    @pytest.mark.parametrize("case_name,instance", _cases())
    def test_kernels_match_reference_bit_for_bit(self, case_name, instance):
        for mech in _kernel_mechanisms():
            assert mech.supports_batch_sampling
            for seed in (0, 7):
                batch = mech.sample_delegations_batch(instance, 25, seed=seed)
                ref = mech._reference_sample_delegations_batch(
                    instance, 25, seed=seed
                )
                assert np.array_equal(batch, ref), (case_name, mech.name, seed)

    @pytest.mark.parametrize("case_name,instance", _cases())
    def test_greedy_batch_is_tiled_deterministic_forest(
        self, case_name, instance
    ):
        gb = GreedyBest()
        batch = gb.sample_delegations_batch(instance, 5, seed=3)
        single = gb.sample_delegations(instance).delegates
        for row in batch:
            assert np.array_equal(row, single)

    def test_partition_invariance(self):
        _, instance = _cases()[0]
        for mech in _kernel_mechanisms():
            whole = mech.sample_delegations_batch(instance, 20, seed=42)
            head = mech.sample_delegations_batch(
                instance, 8, seed=42, first_round=0
            )
            tail = mech.sample_delegations_batch(
                instance, 12, seed=42, first_round=8
            )
            assert np.array_equal(whole, np.vstack([head, tail])), mech.name

    def test_fallback_mechanism_matches_per_round_child_seeds(self):
        _, instance = _cases()[0]
        mech = CappedRandomApproved(4)
        assert not mech.supports_batch_sampling
        batch = mech.sample_delegations_batch(instance, 6, seed=9)
        root = as_seed_sequence(9)
        for i in range(6):
            rng = np.random.default_rng(child_seed_sequence(root, i))
            expected = mech.sample_delegations(instance, rng).delegates
            assert np.array_equal(batch[i], expected), i

    def test_batch_shape_and_dtype(self):
        _, instance = _cases()[0]
        out = ApprovalThreshold(2).sample_delegations_batch(
            instance, 7, seed=0
        )
        assert out.shape == (7, instance.num_voters)
        # Delegate matrices use the instance's CSR index dtype: int32
        # below 2^31 voters, halving the per-round footprint.
        assert out.dtype == instance.compiled().index_dtype
        assert out.dtype == np.int32
        assert ((out == SELF) | (out >= 0)).all()


class TestSampledNeighbourhoodKernel:
    def test_hypergeom_cdf_is_exact(self):
        from math import comb

        for good, bad, size in [(3, 5, 4), (6, 0, 3), (2, 9, 7), (5, 5, 10)]:
            cdf = _hypergeom_cdf(good, bad, size)
            kmax = min(size, good)
            assert len(cdf) == kmax + 1
            denom = comb(good + bad, size)
            acc = 0.0
            for k in range(kmax + 1):
                acc += comb(good, k) * comb(bad, size - k) / denom
                assert cdf[k] == pytest.approx(acc, abs=1e-12)
            assert cdf[-1] == pytest.approx(1.0, abs=1e-12)

    def test_delegation_rate_matches_distribution(self):
        # Statistical: the batched kernel's per-voter delegation
        # frequency must track the closed-form delegation probability.
        instance = ProblemInstance(
            G.complete_graph(30),
            bounded_uniform_competencies(30, 0.35, seed=3),
            alpha=0.05,
        )
        mech = SampledNeighbourhood(2, d=6)
        rounds = 600
        batch = mech.sample_delegations_batch(instance, rounds, seed=1)
        rate = (batch != SELF).mean(axis=0)
        for voter in range(0, 30, 7):
            dist = mech.distribution(instance.local_view(voter))
            expected = 1.0 - dist.get(None, 0.0)
            sigma = np.sqrt(max(expected * (1 - expected), 1e-12) / rounds)
            assert abs(rate[voter] - expected) < 5 * sigma + 1e-9


class TestCompiledInstance:
    def test_arrays_match_structure(self):
        _, instance = _cases()[0]
        compiled = instance.compiled()
        assert compiled.num_voters == instance.num_voters
        assert np.array_equal(compiled.degrees, instance.graph.degrees())
        for v in range(instance.num_voters):
            view = instance.local_view(v)
            assert compiled.approved_counts[v] == view.approval_count

    def test_memoised_per_instance(self):
        _, instance = _cases()[0]
        assert instance.compiled() is instance.compiled()

    def test_resolve_approved_offsets_orders_by_competency(self):
        _, instance = _cases()[0]
        compiled = instance.compiled()
        for v in range(instance.num_voters):
            approved = instance.local_view(v).approved
            if not approved:
                continue
            offsets = np.arange(len(approved))
            got = compiled.resolve_approved_offsets(
                np.full(len(approved), v), offsets
            )
            assert list(got) == list(approved)

    def test_greedy_targets_pick_best_approved(self):
        _, instance = _cases()[0]
        compiled = instance.compiled()
        comp = instance.competencies
        for v in range(instance.num_voters):
            approved = instance.local_view(v).approved
            if not approved:
                assert compiled.greedy_targets[v] == SELF
            else:
                best = max(approved, key=lambda u: (comp[u], -u))
                assert compiled.greedy_targets[v] == best

    def test_approved_csr_consistent(self):
        _, instance = _cases()[0]
        compiled = instance.compiled()
        indptr, indices = compiled.approved_csr()
        assert indptr[-1] == compiled.approved_counts.sum()
        for v in range(instance.num_voters):
            seg = indices[indptr[v] : indptr[v + 1]]
            assert sorted(seg) == sorted(instance.local_view(v).approved)


class TestResolveForestsBatch:
    def test_matches_per_round_resolution(self):
        rng = np.random.default_rng(5)
        n = 60
        delegates = np.full((12, n), SELF, dtype=np.int64)
        for r in range(12):
            for i in range(1, n):
                if rng.random() < 0.6:
                    delegates[r, i] = int(rng.integers(0, i))
        sink_of, weights = resolve_forests_batch(delegates)
        for r in range(12):
            forest = DelegationGraph(delegates[r])
            assert np.array_equal(sink_of[r], forest._sink_of)
            assert np.array_equal(
                weights[r], [forest.weight(v) for v in range(n)]
            )

    def test_even_cycle_detected(self):
        # 2-cycles make pointer doubling converge onto moving cells —
        # the resolved-iff-lands-on-sink check must still catch them.
        delegates = np.array([[1, 0, SELF, 2]], dtype=np.int64)
        with pytest.raises(DelegationCycleError):
            resolve_forests_batch(delegates)

    def test_odd_cycle_detected(self):
        delegates = np.array([[1, 2, 0, SELF]], dtype=np.int64)
        with pytest.raises(DelegationCycleError):
            resolve_forests_batch(delegates)

    def test_cycle_in_later_round_only(self):
        delegates = np.array(
            [[SELF, 0, 1], [2, SELF, 0]], dtype=np.int64
        )
        with pytest.raises(DelegationCycleError):
            resolve_forests_batch(delegates)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            resolve_forests_batch(np.array([[5, SELF]], dtype=np.int64))

    def test_self_delegation_normalised(self):
        sink_of, weights = resolve_forests_batch(
            np.array([[0, 0, SELF]], dtype=np.int64)
        )
        assert np.array_equal(sink_of, [[0, 0, 2]])
        assert np.array_equal(weights, [[2, 0, 1]])

    def test_empty(self):
        sink_of, weights = resolve_forests_batch(
            np.empty((0, 4), dtype=np.int64)
        )
        assert sink_of.shape == (0, 4)
        assert weights.shape == (0, 4)


def _tails_oracle(W, P, total):
    Pb = np.broadcast_to(P, W.shape)
    half = total // 2
    strict = np.empty(W.shape[0])
    atom = np.empty(W.shape[0])
    for r in range(W.shape[0]):
        mask = W[r] > 0
        pmf = weighted_bernoulli_pmf(W[r][mask], Pb[r][mask])
        strict[r] = pmf[half + 1 :].sum() if len(pmf) > half + 1 else 0.0
        atom[r] = (
            pmf[half] if total % 2 == 0 and len(pmf) > half else 0.0
        )
    return np.minimum(strict, 1.0), atom


def _balanced_profiles(rng, rounds, S, n_const, total, wmax=5):
    """Rows of positive weights all summing to ``total`` with a block of
    ``n_const`` columns held constant across rounds."""
    W = np.zeros((rounds, S), dtype=np.int64)
    const = rng.integers(1, wmax, n_const)
    W[:, :n_const] = const
    rem = total - int(const.sum())
    assert rem > 0
    for r in range(rounds):
        left = rem
        col = n_const
        while left > 0:
            w = int(rng.integers(1, min(wmax, left) + 1))
            W[r, col] = w
            left -= w
            col += 1
        assert col <= S
    return W


class TestWeightedTailsBatch:
    @pytest.mark.parametrize("total", [160, 161])
    def test_const_column_factoring_matches_oracle(self, total):
        rng = np.random.default_rng(42)
        W = _balanced_profiles(rng, 30, 260, 40, total)
        P = rng.uniform(0.2, 0.8, 260)
        win, atom = weighted_tails_batch(W, P, total)
        want_win, want_atom = _tails_oracle(W, P, total)
        assert np.abs(win - want_win).max() < 1e-12
        assert np.abs(atom - want_atom).max() < 1e-12

    def test_per_round_probs_matrix(self):
        rng = np.random.default_rng(7)
        total = 120
        W = _balanced_profiles(rng, 20, 200, 30, total)
        P = np.tile(rng.uniform(0.2, 0.8, 200), (20, 1))
        P[3, 150:] = rng.uniform(0.2, 0.8, 50)
        win, atom = weighted_tails_batch(W, P, total)
        want_win, want_atom = _tails_oracle(W, P, total)
        assert np.abs(win - want_win).max() < 1e-12
        assert np.abs(atom - want_atom).max() < 1e-12

    @pytest.mark.parametrize("odd", [False, True])
    def test_wide_bucket_chunk_splitting(self, odd):
        # Buckets wider than one ladder piece (513+ sinks of one weight)
        # exercise the chunk-splitting path.
        rng = np.random.default_rng(3)
        rounds, S = 6, 1500
        W = np.ones((rounds, S), dtype=np.int64)
        W[:, 1300:1400] = rng.integers(1, 6, (rounds, 100))
        W[:, 1400:] = 0
        target = int(W.sum(axis=1).max()) + (1 if odd else 0)
        for r in range(rounds):
            need = target - int(W[r].sum())
            W[r, 1400 : 1400 + need] = 1
        total = int(W[0].sum())
        assert (W.sum(axis=1) == total).all()
        P = rng.uniform(0.3, 0.7, S)
        win, atom = weighted_tails_batch(W, P, total)
        want_win, want_atom = _tails_oracle(W, P, total)
        assert np.abs(win - want_win).max() < 1e-12
        assert np.abs(atom - want_atom).max() < 1e-12

    def test_all_rounds_identical_profile(self):
        rng = np.random.default_rng(11)
        row = rng.integers(1, 4, 90)
        W = np.tile(row, (8, 1))
        total = int(row.sum())
        P = rng.uniform(0.2, 0.8, 90)
        win, atom = weighted_tails_batch(W, P, total)
        want_win, want_atom = _tails_oracle(W, P, total)
        assert np.abs(win - want_win).max() < 1e-12
        assert np.abs(atom - want_atom).max() < 1e-12
        assert (win == win[0]).all()

    def test_round_without_positive_weight_rejected(self):
        W = np.array([[1, 2], [0, 0]], dtype=np.int64)
        with pytest.raises(ValueError):
            weighted_tails_batch(W, np.array([0.5, 0.5]), 3)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            weighted_tails_batch(np.ones(4), np.full(4, 0.5), 4)
        with pytest.raises(ValueError):
            weighted_tails_batch(
                np.ones((2, 4), dtype=np.int64), np.full(4, 0.5), 0
            )


class TestBatchValues:
    @pytest.mark.parametrize(
        "n,make_graph",
        [
            (30, lambda: G.complete_graph(30)),  # below DP cutoff
            (121, lambda: G.complete_graph(121)),  # odd total
            (200, lambda: G.barabasi_albert_graph(200, 3, seed=2)),
        ],
    )
    def test_matches_forest_oracle(self, n, make_graph):
        instance = ProblemInstance(
            make_graph(),
            bounded_uniform_competencies(n, 0.35, seed=0),
            alpha=0.05,
        )
        for mech in [
            ApprovalThreshold(3),
            FractionApproved(0.4),
            SampledNeighbourhood(1, d=4),
        ]:
            delegates = mech.sample_delegations_batch(instance, 30, seed=11)
            _, weights = resolve_forests_batch(delegates)
            for tie_policy in (TiePolicy.INCORRECT, TiePolicy.COIN_FLIP):
                values = _batch_values(
                    instance, weights, tie_policy, LRUCache(256)
                )
                for r in range(30):
                    forest = DelegationGraph(delegates[r])
                    want = forest_correct_probability(
                        forest, instance.competencies, tie_policy
                    )
                    assert abs(values[r] - want) <= 1e-12, (
                        n,
                        mech.name,
                        tie_policy,
                        r,
                    )

    def test_cache_shared_across_tie_policies(self):
        # The cache stores (strict, atom) pairs, so a COIN_FLIP pass
        # after an INCORRECT pass costs zero extra kernel evaluations.
        instance = ProblemInstance(
            G.complete_graph(80),
            bounded_uniform_competencies(80, 0.35, seed=1),
            alpha=0.05,
        )
        mech = ApprovalThreshold(4)
        delegates = mech.sample_delegations_batch(instance, 16, seed=2)
        _, weights = resolve_forests_batch(delegates)
        cache = LRUCache(256)
        _batch_values(instance, weights, TiePolicy.INCORRECT, cache)
        misses = cache.misses
        _batch_values(instance, weights, TiePolicy.COIN_FLIP, cache)
        assert cache.misses == misses


class TestEngineEquivalence:
    def test_new_engine_statistically_agrees_with_reference(self):
        instance = ProblemInstance(
            G.complete_graph(120),
            bounded_uniform_competencies(120, 0.35, seed=0),
            alpha=0.05,
        )
        mech = ApprovalThreshold(5)
        ref = BatchEstimator(use_reference=True).estimate(
            instance, mech, rounds=300, seed=3
        )
        new = BatchEstimator().estimate(instance, mech, rounds=300, seed=3)
        gap = abs(ref.probability - new.probability)
        assert gap < 6 * (ref.std_error + new.std_error) + 1e-9

    def test_n_jobs_invariance_with_kernels(self):
        instance = ProblemInstance(
            G.complete_graph(90),
            bounded_uniform_competencies(90, 0.35, seed=0),
            alpha=0.05,
        )
        mech = FractionApproved(0.5)
        probs = {
            jobs: BatchEstimator(n_jobs=jobs)
            .estimate(instance, mech, rounds=24, seed=3)
            .probability
            for jobs in (1, 2, 3)
        }
        assert probs[1] == probs[2] == probs[3]
