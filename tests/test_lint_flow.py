"""Tests for the flow-sensitive lint engine (call graph + dataflow).

Covers the project call graph (module naming, call resolution through
aliases / methods / local bindings, file-dependency edges), genuinely
cross-file taint flows for every flow-rule family, the pragma contract
when the finding's anchor line sits in a *different file* than the
cause, and the sanctioned ``repro.cache`` seed-tokenisation boundary
that F601 must never flag.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import ProjectContext, lint_paths, parse_file
from repro.lint.callgraph import CallGraph, module_name


def _write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _package(root: Path, name: str, modules: dict) -> Path:
    pkg = root / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, source in modules.items():
        _write(root, f"{name}/{mod}.py", source)
    return pkg


def _graph(*paths: Path) -> CallGraph:
    project = ProjectContext(files=[parse_file(p) for p in sorted(paths)])
    return project.callgraph()


def _rules(findings):
    return {f.rule for f in findings}


class TestModuleName:
    def test_package_walk(self, tmp_path):
        pkg = _package(tmp_path, "pkg", {})
        sub = pkg / "sub"
        sub.mkdir()
        (sub / "__init__.py").write_text("")
        mod = _write(tmp_path, "pkg/sub/mod.py", "")
        assert module_name(mod) == "pkg.sub.mod"
        assert module_name(pkg / "__init__.py") == "pkg"

    def test_bare_script_maps_to_stem(self, tmp_path):
        script = _write(tmp_path, "snippet.py", "")
        assert module_name(script) == "snippet"


class TestCallResolution:
    def test_module_function_and_method_calls(self, tmp_path):
        path = _write(
            tmp_path,
            "app.py",
            """
            class Worker:
                def __init__(self):
                    self.count = 0

                def step(self):
                    return helper()

            def helper():
                return 1

            def run():
                w = Worker()
                return w.step()
            """,
        )
        graph = _graph(path)
        by_name = {fi.name: fi for fi in graph.functions_in_order()}
        assert set(by_name) == {"__init__", "step", "helper", "run"}
        step_targets = set(graph.call_targets(by_name["step"]).values())
        assert step_targets == {"app.helper"}
        # run() resolves both the constructor and the local-binding
        # method call w.step().
        run_targets = set(graph.call_targets(by_name["run"]).values())
        assert run_targets == {"app.Worker.__init__", "app.Worker.step"}

    def test_cross_module_alias_resolution(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "gen": """
                def make():
                    return 1
                """,
                "use": """
                from pkg.gen import make

                def caller():
                    return make()
                """,
            },
        )
        graph = _graph(*tmp_path.rglob("*.py"))
        caller = next(
            fi for fi in graph.functions_in_order() if fi.name == "caller"
        )
        assert set(graph.call_targets(caller).values()) == {"pkg.gen.make"}
        assert graph.callers()["pkg.gen.make"] == ("pkg.use.caller",)

    def test_file_dependencies_follow_call_edges(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "a": """
                from pkg.b import middle

                def top():
                    return middle()
                """,
                "b": """
                from pkg.c import bottom

                def middle():
                    return bottom()
                """,
                "c": """
                def bottom():
                    return 1
                """,
            },
        )
        graph = _graph(*tmp_path.rglob("*.py"))
        deps = graph.transitive_dependencies()
        a = str(tmp_path / "pkg" / "a.py")
        b = str(tmp_path / "pkg" / "b.py")
        c = str(tmp_path / "pkg" / "c.py")
        assert b in deps[a] and c in deps[a]
        assert c in deps[b]
        assert deps[c] <= {c}


class TestCrossFileFlows:
    """One genuinely cross-file taint flow per flow-rule family."""

    def test_f601_rng_made_in_one_file_hashed_in_another(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "gen": """
                import numpy as np

                def make_generator():
                    return np.random.default_rng(0)
                """,
                "use": """
                import hashlib

                from pkg.gen import make_generator

                def fingerprint():
                    gen = make_generator()
                    draw = gen.standard_normal(4)
                    return hashlib.sha256(draw.tobytes()).hexdigest()
                """,
            },
        )
        findings = lint_paths([tmp_path])
        assert _rules(findings) == {"F601"}
        # The anchor is the sink file, not the file that made the rng.
        assert all(f.path.endswith("use.py") for f in findings)

    def test_d203_clock_crosses_a_module_boundary(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "clock": """
                import time

                def stamp():
                    return time.time()
                """,
                "keys": """
                import hashlib

                from pkg.clock import stamp

                def payload_sha():
                    return hashlib.sha256(str(stamp()).encode()).hexdigest()
                """,
            },
        )
        findings = lint_paths([tmp_path])
        assert _rules(findings) == {"D203"}
        assert all(f.path.endswith("keys.py") for f in findings)

    def test_s501_blocking_callee_lives_in_another_file(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "worker": """
                import time

                def warm():
                    time.sleep(1.0)
                """,
                "service": """
                from pkg.worker import warm

                async def refresh():
                    warm()
                """,
            },
        )
        findings = lint_paths([tmp_path])
        assert _rules(findings) == {"S501"}
        (finding,) = findings
        assert finding.path.endswith("worker.py")
        assert "refresh" in finding.message and "warm" in finding.message


class TestCrossFilePragmas:
    """Satellite: pragma interaction with project-wide rules — the
    suppression must act at the finding's anchor line even when the
    *cause* (the taint source) is in a different file."""

    GEN = """
    import numpy as np

    def make_generator():
        return np.random.default_rng(0)
    """

    def test_pragma_at_sink_silences_cross_file_finding(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "gen": self.GEN,
                "use": """
                import hashlib

                from pkg.gen import make_generator

                def fingerprint():
                    gen = make_generator()
                    # reprolint: disable=F601
                    return hashlib.sha256(gen.standard_normal(4).tobytes()).hexdigest()
                """,
            },
        )
        assert lint_paths([tmp_path]) == []

    def test_pragma_in_cause_file_does_not_silence_sink(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "gen": """
                import numpy as np

                def make_generator():
                    # reprolint: disable=F601
                    return np.random.default_rng(0)
                """,
                "use": """
                import hashlib

                from pkg.gen import make_generator

                def fingerprint():
                    gen = make_generator()
                    return hashlib.sha256(gen.standard_normal(4).tobytes()).hexdigest()
                """,
            },
        )
        findings = lint_paths([tmp_path])
        # Suppressing at the source does nothing: the finding anchors
        # at the sink, and X001 flags the pragma as unused?  No — the
        # pragma names a real rule, so it is simply inert.
        assert _rules(findings) == {"F601"}
        assert all(f.path.endswith("use.py") for f in findings)

    def test_unknown_id_in_multi_rule_disable_is_x001(self, tmp_path):
        _package(
            tmp_path,
            "pkg",
            {
                "gen": self.GEN,
                "use": """
                import hashlib

                from pkg.gen import make_generator

                def fingerprint():
                    gen = make_generator()
                    # reprolint: disable=F601, R999
                    return hashlib.sha256(gen.standard_normal(4).tobytes()).hexdigest()
                """,
            },
        )
        findings = lint_paths([tmp_path])
        # The known id still suppresses its finding; the unknown one is
        # its own X001 finding rather than a silent no-op.
        assert _rules(findings) == {"X001"}
        assert "R999" in findings[0].message


class TestSanctionedTokeniserBoundary:
    """Regression pin for the audited ``repro.cache`` boundary.

    ``seed_token`` identifies a live Generator by its bit-generator
    state on purpose (the estimate cache fast-forwards the generator on
    a hit), so generators flowing into ``seed_token``/``estimate_digest``
    are the sanctioned key path — F601 must stay quiet there, while the
    same flow into any *other* key-suffixed call is still flagged.
    """

    def test_generator_into_estimate_digest_is_clean(self, tmp_path):
        path = _write(
            tmp_path,
            "sanctioned.py",
            """
            import numpy as np

            from repro.cache import estimate_digest, seed_token

            def describe(instance, mechanism, params):
                gen = np.random.default_rng(instance)
                token = seed_token(gen)
                return estimate_digest(instance, mechanism, seed=gen, params=params)
            """,
        )
        assert lint_paths([path]) == []

    def test_same_flow_into_other_key_call_still_fires(self, tmp_path):
        path = _write(
            tmp_path,
            "unsanctioned.py",
            """
            import numpy as np

            def payload_digest(value):
                return str(value)

            def describe(instance):
                gen = np.random.default_rng(instance)
                return payload_digest(gen)
            """,
        )
        findings = lint_paths([path])
        assert _rules(findings) == {"F601"}
        assert "payload_digest" in findings[0].message
