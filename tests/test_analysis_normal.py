"""Tests for the normal approximation and Lemma 3's bound."""

import math

import numpy as np
import pytest

from repro.analysis.normal import (
    direct_vote_stats,
    lemma3_loss_probability_bound,
    normal_band_probability,
    normal_tail_probability,
    worst_case_loss_bound,
)
from repro.voting.exact import poisson_binomial_pmf


class TestDirectVoteStats:
    def test_mean_variance(self):
        stats = direct_vote_stats([0.5, 0.5])
        assert stats.mean == pytest.approx(1.0)
        assert stats.variance == pytest.approx(0.5)
        assert stats.std == pytest.approx(math.sqrt(0.5))

    def test_normalized_std_bounded_below(self):
        # p in (beta, 1-beta) implies sigma/sqrt(n) >= sqrt(beta(1-beta))
        beta = 0.3
        rng = np.random.default_rng(0)
        p = rng.uniform(beta, 1 - beta, size=500)
        stats = direct_vote_stats(p)
        assert stats.normalized_std >= math.sqrt(beta * (1 - beta)) - 1e-9

    def test_degenerate(self):
        stats = direct_vote_stats([1.0, 0.0])
        assert stats.variance == 0.0


class TestNormalHelpers:
    def test_tail_at_zero(self):
        assert normal_tail_probability(0.0) == pytest.approx(0.5)

    def test_tail_symmetric(self):
        assert normal_tail_probability(1.5) == pytest.approx(
            1 - normal_tail_probability(-1.5)
        )

    def test_band_total(self):
        assert normal_band_probability(0, 1, -50, 50) == pytest.approx(1.0)

    def test_band_zero_std(self):
        assert normal_band_probability(0, 0, -1, 1) == 1.0
        assert normal_band_probability(5, 0, -1, 1) == 0.0

    def test_band_rejects_empty(self):
        with pytest.raises(ValueError):
            normal_band_probability(0, 1, 2, 1)

    def test_band_matches_poisson_binomial(self):
        # Normal band mass approximates the exact PMF band for large n.
        n = 2000
        p = [0.5] * n
        pmf = poisson_binomial_pmf(p)
        lo, hi = n // 2 - 40, n // 2 + 40
        exact = pmf[lo : hi + 1].sum()
        approx = normal_band_probability(n / 2, math.sqrt(n / 4), lo, hi)
        assert approx == pytest.approx(exact, abs=0.03)


class TestLemma3Bound:
    def test_decays_in_n(self):
        b1 = lemma3_loss_probability_bound(100, 0.1, 0.3)
        b2 = lemma3_loss_probability_bound(100000, 0.1, 0.3)
        assert b2 < b1

    def test_decays_in_epsilon(self):
        assert lemma3_loss_probability_bound(
            10000, 0.2, 0.3
        ) < lemma3_loss_probability_bound(10000, 0.05, 0.3)

    def test_in_unit_interval(self):
        for n in (10, 1000, 100000):
            b = lemma3_loss_probability_bound(n, 0.1, 0.25)
            assert 0 <= b <= 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lemma3_loss_probability_bound(0, 0.1, 0.3)
        with pytest.raises(ValueError):
            lemma3_loss_probability_bound(10, 0.0, 0.3)
        with pytest.raises(ValueError):
            lemma3_loss_probability_bound(10, 0.1, 0.6)


class TestWorstCaseLoss:
    def test_two_votes_per_delegation(self):
        assert worst_case_loss_bound(100, 10) == 20.0

    def test_capped_at_n(self):
        assert worst_case_loss_bound(100, 80) == 100.0

    def test_zero_delegations(self):
        assert worst_case_loss_bound(100, 0) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            worst_case_loss_bound(0, 1)
        with pytest.raises(ValueError):
            worst_case_loss_bound(10, -1)
