"""Tests for graph restrictions (Definition 1)."""

import pytest

from repro.core.instance import ProblemInstance
from repro.core.restrictions import (
    BoundedCompetency,
    CompleteGraph,
    MaxDegreeAtMost,
    MinDegreeAtLeast,
    PlausibleChangeability,
    RandomRegular,
    RestrictionSet,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    star_graph,
)


def make(graph, p, alpha=0.05):
    return ProblemInstance(graph, p, alpha=alpha)


class TestCompleteGraphRestriction:
    def test_satisfied(self):
        assert CompleteGraph().is_satisfied(make(complete_graph(4), [0.5] * 4))

    def test_violated(self):
        assert not CompleteGraph().is_satisfied(make(star_graph(4), [0.5] * 4))

    def test_describe(self):
        assert CompleteGraph().describe() == "K_n"


class TestRandomRegular:
    def test_satisfied(self):
        g = random_regular_graph(10, 3, seed=0)
        assert RandomRegular(3).is_satisfied(make(g, [0.5] * 10))

    def test_wrong_degree(self):
        g = random_regular_graph(10, 3, seed=0)
        assert not RandomRegular(4).is_satisfied(make(g, [0.5] * 10))

    def test_irregular(self):
        assert not RandomRegular(1).is_satisfied(make(star_graph(4), [0.5] * 4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RandomRegular(-1)


class TestDegreeRestrictions:
    def test_max_degree(self):
        inst = make(cycle_graph(5), [0.5] * 5)
        assert MaxDegreeAtMost(2).is_satisfied(inst)
        assert not MaxDegreeAtMost(1).is_satisfied(inst)

    def test_min_degree(self):
        inst = make(cycle_graph(5), [0.5] * 5)
        assert MinDegreeAtLeast(2).is_satisfied(inst)
        assert not MinDegreeAtLeast(3).is_satisfied(inst)

    def test_describe(self):
        assert "≤ 3" in MaxDegreeAtMost(3).describe()
        assert "≥ 3" in MinDegreeAtLeast(3).describe()


class TestPlausibleChangeability:
    def test_satisfied(self):
        inst = make(complete_graph(2), [0.45, 0.55])
        assert PlausibleChangeability(0.01).is_satisfied(inst)

    def test_violated(self):
        inst = make(complete_graph(2), [0.9, 0.9])
        assert not PlausibleChangeability(0.1).is_satisfied(inst)

    def test_boundary(self):
        inst = make(complete_graph(2), [0.6, 0.6])
        assert PlausibleChangeability(0.1).is_satisfied(inst)


class TestBoundedCompetency:
    def test_satisfied(self):
        inst = make(complete_graph(2), [0.4, 0.6])
        assert BoundedCompetency(0.3).is_satisfied(inst)

    def test_boundary_excluded(self):
        inst = make(complete_graph(2), [0.3, 0.6])
        assert not BoundedCompetency(0.3).is_satisfied(inst)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            BoundedCompetency(0.5)
        with pytest.raises(ValueError):
            BoundedCompetency(0.0)


class TestRestrictionSet:
    def test_conjunction(self):
        rs = RestrictionSet([CompleteGraph(), BoundedCompetency(0.2)])
        good = make(complete_graph(3), [0.4, 0.5, 0.6])
        bad_comp = make(complete_graph(3), [0.1, 0.5, 0.6])
        assert rs.is_satisfied(good)
        assert not rs.is_satisfied(bad_comp)

    def test_violations_listed(self):
        rs = RestrictionSet([CompleteGraph(), BoundedCompetency(0.2)])
        bad = make(star_graph(3), [0.1, 0.5, 0.6])
        assert len(rs.violations(bad)) == 2

    def test_require_raises(self):
        rs = RestrictionSet([CompleteGraph()])
        with pytest.raises(ValueError):
            rs.require(make(star_graph(3), [0.5] * 3))

    def test_require_passthrough(self):
        rs = RestrictionSet([CompleteGraph()])
        inst = make(complete_graph(3), [0.5] * 3)
        assert rs.require(inst) is inst

    def test_and_composition(self):
        a = RestrictionSet([CompleteGraph()])
        b = RestrictionSet([BoundedCompetency(0.2)])
        combined = a & b
        assert len(combined) == 2

    def test_describe(self):
        rs = RestrictionSet([CompleteGraph(), MaxDegreeAtMost(5)])
        assert rs.describe() == "{K_n, Δ ≤ 5}"

    def test_iteration(self):
        rs = RestrictionSet([CompleteGraph()])
        assert [r.describe() for r in rs] == ["K_n"]

    def test_empty_set_always_satisfied(self):
        rs = RestrictionSet()
        assert rs.is_satisfied(make(star_graph(3), [0.5] * 3))
