"""Tests for the Algorithm 2 mechanism (SampledNeighbourhood)."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.generators import random_regular_graph, star_graph
from repro.mechanisms.sampled import SampledNeighbourhood


@pytest.fixture
def regular_instance():
    g = random_regular_graph(60, 8, seed=0)
    rng = np.random.default_rng(1)
    return ProblemInstance(g, rng.uniform(0.2, 0.8, 60), alpha=0.05)


class TestDecide:
    def test_full_neighbourhood_equivalent_to_threshold(self, regular_instance):
        # d=None polls the whole neighbourhood: condition is deterministic.
        mech = SampledNeighbourhood(threshold=2, d=None)
        forest = mech.sample_delegations(regular_instance, 0)
        inst = regular_instance
        for v in range(inst.num_voters):
            count = inst.local_view(v).approval_count
            if count >= 2:
                assert forest.delegates[v] != SELF
            else:
                assert forest.delegates[v] == SELF

    def test_delegates_only_to_approved(self, regular_instance):
        mech = SampledNeighbourhood(threshold=1, d=4)
        forest = mech.sample_delegations(regular_instance, 0)
        for v in range(regular_instance.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert regular_instance.approves(v, t)

    def test_subsample_delegates_less_than_full(self, regular_instance):
        # with a threshold of 2, sampling fewer neighbours can only reduce
        # the expected number of delegators.
        full = SampledNeighbourhood(threshold=2, d=None)
        sub = SampledNeighbourhood(threshold=2, d=3)
        rng = np.random.default_rng(2)
        full_count = np.mean(
            [full.sample_delegations(regular_instance, rng).num_delegators
             for _ in range(20)]
        )
        sub_count = np.mean(
            [sub.sample_delegations(regular_instance, rng).num_delegators
             for _ in range(20)]
        )
        assert sub_count <= full_count + 1e-9

    def test_isolated_voter_votes(self):
        from repro.graphs.graph import Graph

        inst = ProblemInstance(Graph(3), [0.2, 0.5, 0.8], alpha=0.05)
        forest = SampledNeighbourhood(threshold=1, d=2).sample_delegations(inst, 0)
        assert forest.num_delegators == 0

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            SampledNeighbourhood(threshold=1, d=0)


class TestDistribution:
    def test_full_neighbourhood_distribution(self):
        inst = ProblemInstance(
            star_graph(4), [0.1, 0.5, 0.6, 0.7], alpha=0.05
        )
        mech = SampledNeighbourhood(threshold=2, d=None)
        dist = mech.distribution(inst.local_view(0))
        assert dist.get(None, 0.0) == 0.0 or None not in dist
        assert len([k for k in dist if k is not None]) == 3

    def test_distribution_sums_to_one(self, regular_instance):
        mech = SampledNeighbourhood(threshold=2, d=4)
        for v in range(0, 60, 7):
            dist = mech.distribution(regular_instance.local_view(v))
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_distribution_matches_empirical(self, regular_instance):
        mech = SampledNeighbourhood(threshold=2, d=4)
        v = min(
            range(60),
            key=lambda u: regular_instance.competencies[u],
        )
        view = regular_instance.local_view(v)
        dist = mech.distribution(view)
        delegate_mass = 1.0 - dist.get(None, 0.0)
        rng = np.random.default_rng(3)
        trials = 3000
        delegated = sum(
            1 for _ in range(trials) if mech.decide(view, rng) is not None
        )
        assert delegated / trials == pytest.approx(delegate_mass, abs=0.03)

    def test_no_approved_always_votes(self, regular_instance):
        mech = SampledNeighbourhood(threshold=1, d=4)
        best = int(np.argmax(regular_instance.competencies))
        assert mech.distribution(regular_instance.local_view(best)) == {None: 1.0}

    def test_threshold_zero_with_empty_sample(self):
        # threshold 0 must still not "delegate to nobody".
        inst = ProblemInstance(
            star_graph(3), [0.9, 0.1, 0.2], alpha=0.05
        )
        mech = SampledNeighbourhood(threshold=0, d=1)
        rng = np.random.default_rng(0)
        # hub approves nobody: must always vote
        for _ in range(10):
            assert mech.decide(inst.local_view(0), rng) is None

    def test_name(self):
        assert "d=4" in SampledNeighbourhood(threshold=1, d=4).name
        assert "deg" in SampledNeighbourhood(threshold=1).name
