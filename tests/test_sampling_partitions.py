"""Tests for competency partitions and partition complexity helpers."""

import pytest

from repro.sampling.partitions import (
    competency_partitions,
    max_partition_complexity,
    partition_complexity,
)
from repro.sampling.recycle import RecycleSamplingGraph


class TestCompetencyPartitions:
    def test_basic_banding(self):
        p = [0.05, 0.15, 0.95]
        bands = competency_partitions(p, alpha=0.1)
        # highest band first
        assert bands[0] == [2]
        assert [0] in bands and [1] in bands

    def test_no_intra_band_approval(self):
        # within a band, no voter is alpha above another
        p = [0.50, 0.52, 0.54, 0.71, 0.73]
        alpha = 0.1
        bands = competency_partitions(p, alpha)
        for band in bands:
            for a in band:
                for b in band:
                    assert not (p[a] + alpha <= p[b])

    def test_all_voters_assigned(self):
        p = [0.1, 0.5, 0.5, 0.9, 0.3]
        bands = competency_partitions(p, 0.25)
        flat = sorted(v for band in bands for v in band)
        assert flat == [0, 1, 2, 3, 4]

    def test_band_count_bounded(self):
        import numpy as np

        rng = np.random.default_rng(0)
        p = rng.random(100)
        bands = competency_partitions(p, 0.2)
        assert len(bands) <= max_partition_complexity(0.2)

    def test_competency_one_in_top_band(self):
        bands = competency_partitions([1.0, 0.0], 0.3)
        assert bands[0] == [0]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            competency_partitions([0.5], 0.0)

    def test_rejects_bad_competency(self):
        with pytest.raises(ValueError):
            competency_partitions([1.5], 0.1)

    def test_empty_bands_dropped(self):
        bands = competency_partitions([0.05, 0.95], 0.1)
        assert len(bands) == 2


class TestMaxPartitionComplexity:
    def test_values(self):
        assert max_partition_complexity(0.5) == 2
        assert max_partition_complexity(0.1) == 10
        assert max_partition_complexity(0.3) == 4  # ceil(1/0.3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            max_partition_complexity(0)


class TestPartitionComplexityAlias:
    def test_alias(self):
        g = RecycleSamplingGraph.layered([[0.5] * 2, [0.5] * 2], 0.5)
        assert partition_complexity(g) == g.partition_complexity() == 2
