"""Property-based tests for recycle sampling and graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    barabasi_albert_graph,
    random_bounded_degree_graph,
    random_min_degree_graph,
    random_regular_graph,
)
from repro.sampling.recycle import RecycleSamplingGraph


@st.composite
def layered_graphs(draw):
    num_layers = draw(st.integers(1, 4))
    layers = []
    for _ in range(num_layers):
        size = draw(st.integers(1, 8))
        layers.append(
            [draw(st.floats(0.0, 1.0, allow_nan=False)) for _ in range(size)]
        )
    fresh = draw(st.floats(0.0, 1.0, allow_nan=False))
    return RecycleSamplingGraph.layered(layers, fresh), num_layers


class TestRecycleProperties:
    @settings(deadline=None)
    @given(layered_graphs())
    def test_partition_complexity_is_layer_count(self, built):
        graph, num_layers = built
        assert graph.partition_complexity() == num_layers

    @settings(deadline=None)
    @given(layered_graphs())
    def test_expectations_in_unit_interval(self, built):
        graph, _ = built
        exp = graph.expectations()
        assert np.all(exp >= -1e-12)
        assert np.all(exp <= 1 + 1e-12)

    @settings(deadline=None)
    @given(layered_graphs(), st.integers(0, 10**6))
    def test_sample_values_binary(self, built, seed):
        graph, _ = built
        values = graph.sample(seed)
        assert set(np.unique(values)) <= {0, 1}

    @settings(deadline=None)
    @given(layered_graphs(), st.integers(0, 10**6))
    def test_sum_bounded(self, built, seed):
        graph, _ = built
        total = graph.sample_sum(seed)
        assert 0 <= total <= graph.num_nodes

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=15))
    def test_independent_graph_expectations(self, params):
        graph = RecycleSamplingGraph.independent(params)
        assert graph.expectations().tolist() == pytest.approx(params)
        assert graph.independent_prefix == len(params)


class TestGeneratorProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(4, 40), st.integers(1, 5), st.integers(0, 10**6))
    def test_regular_graphs_regular(self, n, d, seed):
        if (n * d) % 2 == 1 or d >= n:
            return
        g = random_regular_graph(n, d, seed=seed)
        assert all(deg == d for deg in g.degrees())

    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 50), st.integers(1, 8), st.integers(0, 10**6))
    def test_bounded_degree_respected(self, n, delta, seed):
        g = random_bounded_degree_graph(n, delta, seed=seed)
        assert g.max_degree() <= delta

    @settings(deadline=None, max_examples=25)
    @given(st.integers(5, 40), st.integers(0, 4), st.integers(0, 10**6))
    def test_min_degree_respected(self, n, delta, seed):
        g = random_min_degree_graph(n, delta, seed=seed)
        assert g.min_degree() >= delta

    @settings(deadline=None, max_examples=20)
    @given(st.integers(5, 60), st.integers(1, 4), st.integers(0, 10**6))
    def test_ba_edge_count(self, n, m, seed):
        if n < m + 1:
            return
        g = barabasi_albert_graph(n, m, seed=seed)
        assert g.num_vertices == n
        assert g.num_edges == m + (n - m - 1) * m
