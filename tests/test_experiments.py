"""Tests for the experiment harness and the registered experiments."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    get_experiment,
    list_experiments,
)
from repro.experiments.base import register_experiment

SMOKE = ExperimentConfig(seed=3, scale="smoke")

ALL_IDS = [eid for eid, _ in list_experiments()]


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="huge")

    def test_pick(self):
        cfg = ExperimentConfig(scale="smoke")
        assert cfg.pick(1, 2, 3) == 1
        assert ExperimentConfig(scale="full").pick(1, 2, 3) == 3


def _triple(x):
    """Module-level so the process ``map_engine`` can pickle it."""
    return 3 * x


class TestParallelMap:
    def test_map_engine_validation(self):
        with pytest.raises(ValueError, match="map_engine"):
            ExperimentConfig(map_engine="fibers")

    def test_target_se_validation(self):
        with pytest.raises(ValueError, match="target_se"):
            ExperimentConfig(target_se=-0.1)

    def test_process_engine_matches_serial(self):
        items = list(range(10))
        serial = ExperimentConfig(n_jobs=1).parallel_map(_triple, items)
        procs = ExperimentConfig(
            n_jobs=2, map_engine="process"
        ).parallel_map(_triple, items)
        assert procs == serial == [3 * x for x in items]

    def test_process_engine_falls_back_on_unpicklable(self):
        seen = []
        cfg = ExperimentConfig(n_jobs=2, map_engine="process")
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            out = cfg.parallel_map(lambda x: seen.append(x) or -x, [1, 2, 3])
        assert out == [-1, -2, -3]
        assert sorted(seen) == [1, 2, 3]

    def test_estimator_kwargs_bundle(self, tmp_path):
        plain = ExperimentConfig(engine="batch").estimator_kwargs()
        assert plain == {"engine": "batch"}
        full = ExperimentConfig(
            engine="batch", target_se=0.01, cache_dir=str(tmp_path)
        ).estimator_kwargs()
        assert full["target_se"] == 0.01
        assert full["cache"] is not None
        assert ExperimentConfig().estimate_cache() is None


class TestRegistry:
    def test_expected_experiments_registered(self):
        assert set(ALL_IDS) == {
            "F1", "F2", "I0", "L1L2", "L3", "L5",
            "T2", "T3", "T4", "T5",
            "X1", "X2", "X3", "X4", "X5", "X6", "A1", "A2", "A3", "A4",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("NOPE")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("F1", "dup")(lambda cfg: None)


class TestResultType:
    def test_to_table_contains_parts(self):
        res = ExperimentResult(
            experiment_id="T0",
            title="demo",
            claim="something holds",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            observations=["seen it"],
        )
        table = res.to_table()
        assert "[T0] demo" in table
        assert "something holds" in table
        assert "observed: seen it" in table

    def test_column_extraction(self):
        res = ExperimentResult("T0", "t", "c", ["a", "b"], [[1, 2], [3, 4]])
        assert res.column("b") == [2, 4]

    def test_column_missing(self):
        res = ExperimentResult("T0", "t", "c", ["a"], [[1]])
        with pytest.raises(KeyError):
            res.column("zzz")


@pytest.mark.parametrize("eid", ALL_IDS)
class TestAllExperimentsSmoke:
    def test_runs_and_renders(self, eid):
        result = get_experiment(eid)(SMOKE)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == eid
        assert result.rows, f"{eid} produced no rows"
        assert result.observations, f"{eid} recorded no observations"
        table = result.to_table()
        assert eid in table


class TestPaperShapes:
    """The headline quantitative shapes, checked at smoke scale."""

    def test_f1_star_gain_goes_to_minus_three_eighths(self):
        result = get_experiment("F1")(SMOKE)
        gains = result.column("gain")
        directs = result.column("P_direct")
        delegs = result.column("P_delegation")
        assert all(p == pytest.approx(0.625) for p in delegs)
        assert directs[-1] > directs[0]
        assert gains[-1] < gains[0] < 0

    def test_f2_acyclic_and_upward(self):
        result = get_experiment("F2")(SMOKE)
        assert any("upward" in obs for obs in result.observations)
        assert not any("VIOLATED" in obs for obs in result.observations)

    def test_l3_bound_dominates_exact(self):
        result = get_experiment("L3")(SMOKE)
        flips = result.column("flip_exact")
        bounds = result.column("erf_bound")
        assert all(b >= f - 1e-9 for f, b in zip(flips, bounds))

    def test_l5_correctness_degrades_with_weight(self):
        result = get_experiment("L5")(SMOKE)
        probs = result.column("P_correct")
        assert probs[0] > probs[-1]
        assert probs == sorted(probs, reverse=True)

    def test_t2_spg_positive(self):
        result = get_experiment("T2")(SMOKE)
        spg_gains = [row[6] for row in result.rows if row[0] == "spg"]
        assert all(g > 0.05 for g in spg_gains)

    def test_t2_dnh_losses_small(self):
        result = get_experiment("T2")(SMOKE)
        dnh_gains = [row[6] for row in result.rows if row[0] == "dnh"]
        assert all(g > -0.05 for g in dnh_gains)

    def test_t3_spg_positive(self):
        result = get_experiment("T3")(SMOKE)
        spg_gains = [row[6] for row in result.rows if row[0] == "spg"]
        assert all(g > 0.0 for g in spg_gains)

    def test_x3_fig1_star_fails(self):
        result = get_experiment("X3")(SMOKE)
        fig1_rows = [r for r in result.rows if r[0] == "star(fig1-p)"]
        assert len(fig1_rows) == 1
        assert fig1_rows[0][5] is False or fig1_rows[0][5] == False  # noqa: E712
        # At smoke scale P_direct has not fully converged to 1 yet; the
        # loss approaches 3/8 from below as n grows.
        assert fig1_rows[0][6] < -0.3

    def test_a2_delegation_volume_monotone_in_threshold(self):
        result = get_experiment("A2")(SMOKE)
        delegators = result.column("delegators")
        assert delegators == sorted(delegators, reverse=True)
        assert delegators[-1] < delegators[0]
