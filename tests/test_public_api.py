"""Public API surface tests.

A downstream user's contract is ``repro.__all__``: everything listed
must resolve, be importable from the top level, and carry a docstring.
These tests keep the public surface from silently rotting.
"""

import inspect

import pytest

import repro


class TestAllExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_no_private_names_exported(self):
        for name in repro.__all__:
            assert not name.startswith("_") or name == "__version__"

    def test_exports_have_docstrings(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"exports without docstrings: {missing}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestMechanismContracts:
    MECHANISM_NAMES = [
        "DirectVoting",
        "ApprovalThreshold",
        "RandomApproved",
        "SampledNeighbourhood",
        "FractionApproved",
        "GreedyBest",
        "CappedRandomApproved",
        "AbstentionMechanism",
        "MultiDelegateWeighted",
        "AdversarialConcentrator",
        "LeastCompetentApproved",
    ]

    @pytest.mark.parametrize("name", MECHANISM_NAMES)
    def test_mechanism_classes_exported_and_abstract_methods_met(self, name):
        cls = getattr(repro, name)
        assert not inspect.isabstract(cls), f"{name} left abstract methods"

    def test_every_mechanism_has_stable_name(self):
        instances = [
            repro.DirectVoting(),
            repro.ApprovalThreshold(2),
            repro.RandomApproved(),
            repro.SampledNeighbourhood(threshold=1, d=3),
            repro.FractionApproved(0.5),
            repro.GreedyBest(),
            repro.CappedRandomApproved(3),
            repro.AbstentionMechanism(repro.RandomApproved(), 0.2),
            repro.MultiDelegateWeighted(2),
            repro.AdversarialConcentrator(5),
            repro.LeastCompetentApproved(),
        ]
        names = [m.name for m in instances]
        assert len(names) == len(set(names)), "mechanism names collide"
        assert all(isinstance(n, str) and n for n in names)

    def test_locality_flags(self):
        assert repro.DirectVoting().is_local
        assert repro.ApprovalThreshold(1).is_local
        assert repro.FractionApproved(0.5).is_local
        assert not repro.GreedyBest().is_local
        assert not repro.CappedRandomApproved(2).is_local
        assert not repro.AdversarialConcentrator().is_local


class TestEndToEndThroughPublicApi:
    def test_minimal_workflow_only_top_level_imports(self):
        instance = repro.ProblemInstance(
            repro.complete_graph(30),
            repro.bounded_uniform_competencies(30, 0.35, seed=0),
            alpha=0.05,
        )
        mechanism = repro.ApprovalThreshold(2)
        estimate = repro.monte_carlo_gain(instance, mechanism, rounds=30, seed=0)
        assert estimate.gain > 0
        forest = mechanism.sample_delegations(instance, 0)
        profile = repro.weight_profile(forest)
        assert profile.num_voters == 30
        certs = repro.certify(instance, mechanism)
        assert any(c.applies for c in certs)
