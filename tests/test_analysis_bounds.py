"""Tests for classical bounds and Lemma 5/6 instantiations."""

import math

import pytest

from repro.analysis.bounds import (
    chernoff_lower_tail_bound,
    hoeffding_tail_bound,
    hoeffding_weighted_deviation_bound,
    lemma5_deviation,
    lemma5_failure_probability,
    lemma6_min_sinks,
)


class TestHoeffding:
    def test_formula(self):
        # n fair coins: P[|S - n/2| >= t] <= 2 exp(-2t^2 / n)
        assert hoeffding_tail_bound(100, 10) == pytest.approx(
            2 * math.exp(-2 * 100 / 100)
        )

    def test_capped_at_one(self):
        assert hoeffding_tail_bound(100, 0) == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            hoeffding_tail_bound(0, 1)
        with pytest.raises(ValueError):
            hoeffding_tail_bound(1, -1)

    def test_weighted_version(self):
        assert hoeffding_weighted_deviation_bound([1, 1], 1) == pytest.approx(
            hoeffding_tail_bound(2, 1)
        )

    def test_weighted_zero_weights(self):
        assert hoeffding_weighted_deviation_bound([], 1) == 0.0
        assert hoeffding_weighted_deviation_bound([], 0) == 1.0

    def test_heavier_weights_loosen_bound(self):
        light = hoeffding_weighted_deviation_bound([1] * 100, 20)
        heavy = hoeffding_weighted_deviation_bound([10] * 10, 20)
        assert heavy > light


class TestChernoff:
    def test_monotone_in_mu(self):
        assert chernoff_lower_tail_bound(200, 0.1) < chernoff_lower_tail_bound(
            20, 0.1
        )

    def test_capped(self):
        assert chernoff_lower_tail_bound(0.0, 0.01) == 1.0
        assert chernoff_lower_tail_bound(0.1, 0.01) <= 1.0


class TestLemma5:
    def test_min_sinks(self):
        assert lemma6_min_sinks(100, 10) == 10.0

    def test_min_sinks_rejects(self):
        with pytest.raises(ValueError):
            lemma6_min_sinks(10, 0)

    def test_deviation_grows_with_weight(self):
        assert lemma5_deviation(1000, 0.1, 10) > lemma5_deviation(1000, 0.1, 1)

    def test_deviation_formula(self):
        assert lemma5_deviation(100, 0.0, 2) == pytest.approx(
            math.sqrt(100) * 2
        )

    def test_deviation_scaled_by_c(self):
        assert lemma5_deviation(100, 0.0, 2, c=2.0) == pytest.approx(
            math.sqrt(100)
        )

    def test_failure_probability_decays(self):
        assert lemma5_failure_probability(10000, 0.5) < lemma5_failure_probability(
            100, 0.5
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lemma5_deviation(-1, 0.1, 1)
        with pytest.raises(ValueError):
            lemma5_deviation(10, 0.1, 0)
        with pytest.raises(ValueError):
            lemma5_failure_probability(10, -0.1)
