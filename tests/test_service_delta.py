"""`/v1/delta` service tests: served sessions equal direct sessions, bitwise.

The serving contract mirrors the engine's: a delta session is a pure
function of ``(base instance, mechanism, rounds, seed, engine, edit
chain)``, so a served estimate — cold, warm, or re-routed through a
sharded front — must be bit-identical to a local
:class:`~repro.incremental.session.DeltaSession` replaying the same
chain.  The suite also pins the operational surface: warm-session
longest-prefix reuse, pool metrics, request validation, and the
shard-routing identity (base digest only, so one session's whole chain
lands on one shard while each estimate still coalesces on its own key).
"""

import numpy as np
import pytest

from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import random_regular_graph
from repro.incremental import DeltaSession, Rewire, SetCompetency
from repro.io import instance_to_dict
from repro.mechanisms.threshold import ApprovalThreshold
from repro.service import (
    BackgroundServer,
    ServerConfig,
    ServiceClient,
    ServiceError,
    mechanism_spec,
)
from repro.service.protocol import PROTOCOL_VERSION, parse_request
from repro.service.sharding import BackgroundShardedServer

MECH_SPEC = mechanism_spec("approval_threshold", threshold=2)


def _instance(n: int = 48, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(random_regular_graph(n, 6, seed=seed), comp, alpha=0.05)


def _schedule(instance, batches=3, per_batch=4, seed=9):
    """Valid rewire/competency batches against the evolving adjacency."""
    rng = np.random.default_rng(seed)
    indptr, indices = instance.graph.adjacency_csr()
    n = instance.num_voters
    adj = [
        set(int(w) for w in indices[indptr[v]:indptr[v + 1]])
        for v in range(n)
    ]
    chain = []
    for _ in range(batches):
        batch = []
        for v in (int(v) for v in rng.choice(n, size=per_batch, replace=False)):
            if not adj[v] or len(adj[v]) >= n - 1:
                batch.append(
                    SetCompetency(voter=v, competency=float(rng.uniform(0.2, 0.8)))
                )
                continue
            old = sorted(adj[v])[rng.integers(len(adj[v]))]
            new = int(rng.integers(n))
            while new == v or new in adj[v]:
                new = int(rng.integers(n))
            adj[v].discard(old)
            adj[old].discard(v)
            adj[v].add(new)
            adj[new].add(v)
            batch.append(Rewire(voter=v, add=(new,), remove=(old,)))
        chain.append(batch)
    return chain


def _direct_estimates(instance, chain, *, rounds, engine):
    session = DeltaSession(
        instance, ApprovalThreshold(2), rounds=rounds, seed=0, engine=engine
    )
    out = []
    for batch in chain:
        session.apply(batch)
        out.append(session.estimate())
    return out


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServerConfig(port=0, workers=2)) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


@pytest.mark.parametrize("engine", ["mc", "exact"])
def test_served_equals_direct(client, engine):
    """Chained served estimates are bitwise the direct session's."""
    instance = _instance()
    chain = _schedule(instance)
    rounds = 8 if engine == "mc" else 4
    remote = client.delta_session(
        instance, MECH_SPEC, rounds=rounds, seed=0, engine=engine
    )
    direct = _direct_estimates(instance, chain, rounds=rounds, engine=engine)
    for batch, expected in zip(chain, direct):
        served = remote.apply(batch).estimate()
        assert served.probability == expected.probability
        assert served.std_error == expected.std_error
        assert served.rounds == expected.rounds


def test_sharded_served_equals_direct():
    """The same contract through a 2-shard consistent-hash front."""
    instance = _instance(seed=3)
    chain = _schedule(instance, seed=5)
    direct = _direct_estimates(instance, chain, rounds=8, engine="mc")
    with BackgroundShardedServer(
        ServerConfig(port=0, workers=2), shards=2
    ) as bg:
        remote = ServiceClient(port=bg.port).delta_session(
            instance, MECH_SPEC, rounds=8, seed=0, engine="mc"
        )
        for batch, expected in zip(chain, direct):
            served = remote.apply(batch).estimate()
            assert served.probability == expected.probability
            assert served.std_error == expected.std_error
            assert served.rounds == expected.rounds
        assert remote.last_delta["edit_batches"] == len(chain)


def test_warm_session_patches_only_new_batches(client):
    """Longest-prefix reuse: a resent chain patches just the suffix."""
    instance = _instance(seed=7)
    chain = _schedule(instance, seed=11)
    remote = client.delta_session(
        instance, MECH_SPEC, rounds=8, seed=1, engine="mc"
    )
    remote.apply(chain[0]).estimate()
    first = remote.last_delta
    assert first["edit_batches"] == 1
    remote.apply(chain[1]).estimate()
    second = remote.last_delta
    assert second["edit_batches"] == 2
    assert second["patched_batches"] == 1
    assert second["session"] == first["session"]
    assert second["patch_stats"]["full_rebuilds"] == 0


def test_metrics_report_warm_delta_pool(client):
    instance = _instance(seed=13)
    remote = client.delta_session(
        instance, MECH_SPEC, rounds=4, seed=0, engine="mc"
    )
    remote.apply(_schedule(instance, batches=1, seed=17)[0]).estimate()
    pools = client.metrics()["pools"]
    assert pools["warm_delta_sessions"] >= 1


def test_bad_requests_are_typed_errors(client):
    instance = _instance(seed=19)
    with pytest.raises(ServiceError) as excinfo:
        client.delta(instance, MECH_SPEC, rounds=0)
    assert excinfo.value.code == "bad_request"
    with pytest.raises(ServiceError) as excinfo:
        client.delta(instance, MECH_SPEC, rounds=1 << 20)
    assert excinfo.value.code == "bad_request"
    # an invalid edit against the instance state (edge does not exist)
    with pytest.raises(ServiceError) as excinfo:
        client.delta(
            instance, MECH_SPEC, rounds=4,
            edits=[[{"kind": "rewire", "voter": 0, "add": [], "remove": [1]}]],
        )
    assert excinfo.value.code == "bad_request"


def test_routing_key_ignores_edits_coalesce_key_does_not():
    """All of one session's requests shard together; estimates coalesce
    per exact (base, chain) identity."""
    instance = _instance(seed=23)
    chain = _schedule(instance, batches=2, seed=29)
    wire = instance_to_dict(instance)

    def request(edits):
        from repro.incremental.edits import canonical_batch

        return parse_request(
            {
                "v": PROTOCOL_VERSION,
                "op": "delta",
                "instance": wire,
                "mechanism": dict(MECH_SPEC),
                "rounds": 8,
                "seed": 0,
                "engine": "mc",
                "edits": [canonical_batch(batch) for batch in edits],
            }
        )

    short = request(chain[:1])
    long = request(chain)
    assert short.routing_key() == long.routing_key()
    assert short.group_key() == long.group_key()
    assert short.coalesce_key() != long.coalesce_key()
    assert short.session_token() == long.session_token()
