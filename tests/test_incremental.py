"""Property suite for the incremental delta engine.

The package-wide contract: every patched quantity is **bitwise** the
from-scratch rebuild on the final instance.  The suite drives random
edit chains (rewires, competency updates, joins, leaves) over four
topologies under both value engines, comparing the session's retained
state and estimates against a fresh session after every batch; kernels
are fuzzed directly against their ``_reference`` oracles; and the
even-length-cycle regression (pointer doubling collapses ``x→y→x`` to a
spurious fixed point) is pinned for both delta resolvers.
"""

import numpy as np
import pytest

from repro.cache import EstimateCache
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.core.structure import ApprovalStructure
from repro.delegation.graph import SELF, DelegationCycleError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    random_regular_graph,
)
from repro.incremental import DeltaSession, Join, Leave, Rewire, SetCompetency
from repro.incremental.forest import (
    _reference_patch_forests_delta,
    _reference_resolve_sinks_delta,
    _reference_sink_weight_delta,
    patch_forests_delta,
    resolve_sinks_delta,
    sink_weight_delta,
    sink_weight_deltas,
)
from repro.incremental.session import ENGINES
from repro.incremental.structure import (
    _reference_approved_csr_delta,
    approved_csr_delta,
    patched_instance,
)
from repro.incremental.tails import tree_root
from repro.mechanisms.threshold import ApprovalThreshold
from repro.voting.exact import weighted_bernoulli_pmf

TOPOLOGIES = {
    "complete": lambda: complete_graph(20),
    "regular": lambda: random_regular_graph(40, 6, seed=1),
    "erdos_renyi": lambda: erdos_renyi_graph(50, 0.12, seed=2),
    "cycle": lambda: cycle_graph(36),
}


def _adjacency_sets(graph):
    indptr, indices = graph.adjacency_csr()
    return [
        set(int(w) for w in indices[indptr[v]:indptr[v + 1]])
        for v in range(graph.num_vertices)
    ]


def _random_edit(rng, instance, *, structural):
    """One valid random edit against ``instance``'s current state."""
    n = instance.num_voters
    adj = _adjacency_sets(instance.graph)
    kinds = ["rewire", "competency"]
    if structural:
        kinds += ["join"] + (["leave"] if n > 8 else [])
    kind = kinds[rng.integers(len(kinds))]
    if kind == "rewire":
        candidates = [v for v in range(n) if adj[v] and len(adj[v]) < n - 1]
        if not candidates:
            kind = "competency"
        else:
            v = candidates[rng.integers(len(candidates))]
            old = sorted(adj[v])[rng.integers(len(adj[v]))]
            free = [w for w in range(n) if w != v and w not in adj[v]]
            new = free[rng.integers(len(free))]
            return Rewire(voter=v, add=(new,), remove=(old,))
    if kind == "competency":
        return SetCompetency(
            voter=int(rng.integers(n)),
            competency=float(rng.uniform(0.1, 0.9)),
        )
    if kind == "join":
        size = int(rng.integers(1, min(5, n)))
        nbrs = tuple(int(v) for v in rng.choice(n, size=size, replace=False))
        return Join(neighbors=nbrs, competency=float(rng.uniform(0.2, 0.8)))
    return Leave(voter=int(rng.integers(n)))


def _fresh_session(instance, mechanism, *, rounds, engine):
    rebuilt = ProblemInstance(
        instance.graph, instance.competencies, alpha=instance.alpha
    )
    return DeltaSession(
        rebuilt, mechanism, rounds=rounds, seed=3, engine=engine
    )


def _assert_state_bitwise(session, fresh, engine):
    assert np.array_equal(session._sinks_flat, fresh._sinks_flat)
    assert np.array_equal(session._weights, fresh._weights)
    assert np.array_equal(session.per_round_values(), fresh.per_round_values())
    if engine == "mc":
        assert np.array_equal(session._votes, fresh._votes)
        assert np.array_equal(session._correct, fresh._correct)
    a, b = session.estimate(), fresh.estimate()
    assert a.probability == b.probability
    assert a.std_error == b.std_error
    assert a.rounds == b.rounds


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_random_edit_chain_bitwise(topology, engine):
    """Random chains (incl. joins/leaves) stay bitwise a fresh session."""
    graph = TOPOLOGIES[topology]()
    n = graph.num_vertices
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(n, 0.35, seed=7), alpha=0.05
    )
    mechanism = ApprovalThreshold(2)
    rounds = 12 if engine == "mc" else 6
    session = DeltaSession(
        instance, mechanism, rounds=rounds, seed=3, engine=engine
    )
    rng = np.random.default_rng(
        sum(map(ord, topology)) * 1009 + sum(map(ord, engine))
    )
    for step in range(6):
        structural = step in (2, 4)
        batch = []
        mirror = session.instance
        for _ in range(int(rng.integers(1, 4))):
            edit = _random_edit(rng, mirror, structural=structural)
            mirror, _ = patched_instance(mirror, [edit])
            batch.append(edit)
        session.apply(batch)
        fresh = _fresh_session(
            session.instance, mechanism, rounds=rounds, engine=engine
        )
        _assert_state_bitwise(session, fresh, engine)
    assert session.patch_stats["edit_batches"] == 6
    assert session.patch_stats["full_rebuilds"] >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_patch_stats_pure_churn(engine):
    """Pure rewire/competency chains never trigger a rebuild."""
    graph = random_regular_graph(40, 6, seed=1)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(40, 0.35, seed=7), alpha=0.05
    )
    session = DeltaSession(
        instance, ApprovalThreshold(2), rounds=8, seed=3, engine=engine
    )
    rng = np.random.default_rng(5)
    for _ in range(4):
        edit = _random_edit(rng, session.instance, structural=False)
        session.apply([edit])
    assert session.patch_stats["full_rebuilds"] == 0
    assert session.patch_stats["edit_batches"] == 4


def test_spliced_structure_matches_rebuilt():
    """The spliced approved CSR is bitwise the global builder's, dtype too."""
    graph = erdos_renyi_graph(50, 0.12, seed=2)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(50, 0.35, seed=7), alpha=0.05
    )
    session = DeltaSession(
        instance, ApprovalThreshold(2), rounds=4, seed=3, engine="mc"
    )
    rng = np.random.default_rng(11)
    for _ in range(5):
        session.apply([_random_edit(rng, session.instance, structural=False)])
    current = session.instance
    structure = current.approval_structure()
    got_ptr, got_idx = structure._indptr, structure._indices
    ref_ptr, ref_idx = ApprovalStructure._general_csr(
        current.graph, current.competencies, current.alpha
    )
    assert np.array_equal(got_ptr, ref_ptr)
    assert np.array_equal(got_idx, ref_idx)
    assert got_idx.dtype == ref_idx.dtype


# -- kernel fuzz vs oracles -----------------------------------------------


def _random_forest(rng, rounds, n):
    deleg = np.full((rounds, n), SELF, dtype=np.int64)
    for r in range(rounds):
        order = rng.permutation(n)
        for i, v in enumerate(order[1:], 1):
            if rng.random() < 0.6:
                deleg[r, v] = order[rng.integers(0, i)]
    return deleg


def _perturb(rng, deleg):
    """Random delegate changes; returns (new_deleg, rows, cols)."""
    rounds, n = deleg.shape
    new_deleg = deleg.copy()
    rows, cols = [], []
    for _ in range(int(rng.integers(1, max(2, n // 2)))):
        r, v = int(rng.integers(rounds)), int(rng.integers(n))
        others = np.flatnonzero(np.arange(n) != v)
        new_deleg[r, v] = (
            SELF if rng.random() < 0.3 else int(rng.choice(others))
        )
        rows.append(r)
        cols.append(v)
    return new_deleg, np.array(rows), np.array(cols)


def test_resolve_sinks_delta_matches_oracle():
    rng = np.random.default_rng(21)
    checked = 0
    for _ in range(40):
        deleg = _random_forest(rng, 1, int(rng.integers(4, 40)))
        old_sink, _ = _reference_resolve_sinks_delta(deleg[0])
        new_deleg, _, cols = _perturb(rng, deleg)
        try:
            ref_sink, _ = _reference_resolve_sinks_delta(new_deleg[0])
        except DelegationCycleError:
            with pytest.raises(DelegationCycleError):
                resolve_sinks_delta(new_deleg[0], old_sink, np.unique(cols))
            continue
        got, affected = resolve_sinks_delta(
            new_deleg[0], old_sink, np.unique(cols)
        )
        assert np.array_equal(got, ref_sink)
        unchanged = np.setdiff1d(np.arange(deleg.shape[1]), affected)
        assert np.array_equal(got[unchanged], old_sink[unchanged])
        checked += 1
    assert checked >= 10


def test_sink_weight_delta_matches_oracle():
    rng = np.random.default_rng(22)
    for _ in range(30):
        n = int(rng.integers(4, 40))
        old_sink = rng.integers(n, size=n)
        new_sink = old_sink.copy()
        affected = rng.choice(n, size=int(rng.integers(1, n)), replace=False)
        new_sink[affected] = rng.integers(n, size=affected.size)
        cols, deltas = sink_weight_delta(old_sink, new_sink, affected)
        ref_cols, ref_deltas = _reference_sink_weight_delta(
            old_sink, new_sink, affected, n
        )
        assert np.array_equal(cols, ref_cols)
        assert np.array_equal(deltas, ref_deltas)


@pytest.mark.parametrize("use_scratch", [False, True])
def test_patch_forests_delta_matches_oracle(use_scratch):
    rng = np.random.default_rng(23)
    checked = 0
    for _ in range(40):
        rounds, n = int(rng.integers(1, 5)), int(rng.integers(4, 40))
        deleg = _random_forest(rng, rounds, n)
        sinks_flat, _ = _reference_patch_forests_delta(deleg)
        new_deleg, rows, cols = _perturb(rng, deleg)
        scratch = None
        if use_scratch:
            scratch = np.full(rounds * n, -99, dtype=np.int32)
        try:
            ref_flat, ref_weights = _reference_patch_forests_delta(new_deleg)
        except DelegationCycleError:
            with pytest.raises(DelegationCycleError):
                patch_forests_delta(
                    new_deleg, sinks_flat.copy(), rows, cols,
                    pos_scratch=scratch,
                )
            continue
        got = sinks_flat.copy()
        got, affected, old_s, new_s, patched = patch_forests_delta(
            new_deleg, got, rows, cols, pos_scratch=scratch
        )
        assert np.array_equal(got, ref_flat)
        assert patched == np.unique(rows).size
        assert np.array_equal(old_s, sinks_flat[affected])
        assert np.array_equal(new_s, got[affected])
        # the sparse weight deltas reproduce the dense weight diff
        keys, deltas, bounds = sink_weight_deltas(old_s, new_s, rounds, n)
        dense = np.zeros(rounds * n, dtype=np.int64)
        dense[keys] = deltas
        base_weights = _reference_patch_forests_delta(deleg)[1]
        assert np.array_equal(
            base_weights.reshape(-1) + dense, ref_weights.reshape(-1)
        )
        for r in range(rounds):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            assert np.all(keys[lo:hi] >= r * n)
            assert np.all(keys[lo:hi] < (r + 1) * n)
        checked += 1
    assert checked >= 10


def test_patch_forests_delta_rejects_non_flat_state():
    deleg = np.array([[SELF, 0]], dtype=np.int64)
    with pytest.raises(ValueError, match="flat int64"):
        patch_forests_delta(
            deleg,
            np.zeros((1, 2), dtype=np.int64),
            np.array([0]),
            np.array([1]),
        )


def test_approved_csr_delta_matches_oracle():
    rng = np.random.default_rng(24)
    graph = erdos_renyi_graph(40, 0.15, seed=5)
    comp = bounded_uniform_competencies(40, 0.35, seed=6)
    instance = ProblemInstance(graph, comp, alpha=0.05)
    structure = instance.approval_structure()
    new_comp = comp.copy()
    dirty = rng.choice(40, size=9, replace=False)
    new_comp[dirty] = rng.uniform(0.1, 0.9, size=9)
    # every voter approving a changed voter is dirty too
    indptr, indices = graph.adjacency_csr()
    dirty_mask = np.zeros(40, dtype=bool)
    dirty_mask[dirty] = True
    sources = np.flatnonzero(
        np.bincount(
            np.repeat(np.arange(40), np.diff(indptr)),
            weights=dirty_mask[indices],
            minlength=40,
        )
    )
    all_dirty = np.union1d(dirty, sources)
    got_ptr, got_idx = approved_csr_delta(
        structure, graph, new_comp, 0.05, all_dirty
    )
    ref_ptr, ref_idx = _reference_approved_csr_delta(graph, new_comp, 0.05)
    assert np.array_equal(got_ptr, ref_ptr)
    assert np.array_equal(got_idx, ref_idx)
    assert got_idx.dtype == ref_idx.dtype


# -- even-length cycle regression -----------------------------------------


def test_resolve_sinks_delta_two_cycle_raises():
    """Doubling collapses x→y→x to x→x; root validity must still raise."""
    old_sink = np.array([0, 1, 2], dtype=np.int64)
    delegates = np.array([1, 0, SELF], dtype=np.int64)
    with pytest.raises(DelegationCycleError):
        resolve_sinks_delta(delegates, old_sink, np.array([0, 1]))


def test_resolve_sinks_delta_three_cycle_raises():
    old_sink = np.array([0, 1, 2, 3], dtype=np.int64)
    delegates = np.array([1, 2, 0, SELF], dtype=np.int64)
    with pytest.raises(DelegationCycleError):
        resolve_sinks_delta(delegates, old_sink, np.array([0, 1, 2]))


@pytest.mark.parametrize(
    "delegates, changed",
    [
        ([1, 0, SELF], [0, 1]),  # 2-cycle
        ([1, 2, 0, SELF], [0, 1, 2]),  # 3-cycle
        ([2, SELF, 3, 2], [2, 3]),  # 2-cycle at the end of a chain
    ],
)
def test_patch_forests_delta_cycles_raise(delegates, changed):
    row = np.asarray(delegates, dtype=np.int64)
    n = row.size
    base = np.full(n, SELF, dtype=np.int64)
    sinks_flat, _ = _reference_patch_forests_delta(base[None, :])
    state = sinks_flat.copy()
    with pytest.raises(DelegationCycleError):
        patch_forests_delta(
            row[None, :],
            state,
            np.zeros(len(changed), dtype=np.int64),
            np.asarray(changed, dtype=np.int64),
        )
    # a failed patch must not corrupt the retained state
    assert np.array_equal(state, sinks_flat)


# -- exact engine ----------------------------------------------------------


def test_exact_trees_match_pmf_oracle():
    """Patched merge-tree roots equal the direct Poisson-binomial PMF."""
    graph = random_regular_graph(32, 6, seed=4)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(32, 0.35, seed=7), alpha=0.05
    )
    session = DeltaSession(
        instance, ApprovalThreshold(2), rounds=4, seed=3, engine="exact"
    )
    rng = np.random.default_rng(31)
    for _ in range(3):
        session.apply(
            [_random_edit(rng, session.instance, structural=False)]
        )
    comp = session.instance.competencies
    weights = session._weights
    for r in range(session.rounds):
        root = tree_root(session._trees[r])
        ref = weighted_bernoulli_pmf(weights[r], comp)
        assert root.shape == ref.shape
        np.testing.assert_allclose(root, ref, rtol=0, atol=1e-12)


# -- estimates, cache, adaptive -------------------------------------------


def test_cache_warm_replay(tmp_path):
    """Replaying an edit chain against a shared cache hits warm entries."""
    graph = random_regular_graph(40, 6, seed=1)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(40, 0.35, seed=7), alpha=0.05
    )
    mechanism = ApprovalThreshold(2)
    adj = _adjacency_sets(graph)
    old = sorted(adj[0])[0]
    new = next(w for w in range(1, 40) if w not in adj[0] and w != 0)
    batch = [Rewire(voter=0, add=(new,), remove=(old,)),
             SetCompetency(voter=3, competency=0.5)]
    cache = EstimateCache(tmp_path)
    first = DeltaSession(
        instance, mechanism, rounds=8, seed=3, engine="mc", cache=cache
    )
    cold = first.apply(batch).estimate()
    replay = DeltaSession(
        instance, mechanism, rounds=8, seed=3, engine="mc", cache=cache
    )
    warm = replay.apply(batch).estimate()
    assert warm.probability == cold.probability
    assert warm.std_error == cold.std_error
    stats = cache.stats()
    assert stats["by_op"]["delta"]["hits"] >= 1
    assert first.chain_digest() == replay.chain_digest()


def test_adaptive_estimate_replays_stopping_rule():
    """Warm-start adaptive estimates equal a fresh session's, bitwise."""
    graph = erdos_renyi_graph(50, 0.12, seed=2)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(50, 0.35, seed=7), alpha=0.05
    )
    mechanism = ApprovalThreshold(2)
    session = DeltaSession(
        instance, mechanism, rounds=16, seed=3, engine="mc"
    )
    rng = np.random.default_rng(41)
    session.apply([_random_edit(rng, session.instance, structural=False)])
    session.apply([SetCompetency(voter=5, competency=0.7)])
    fresh = _fresh_session(
        session.instance, mechanism, rounds=16, engine="mc"
    )
    a = session.estimate(rounds=4, target_se=0.05, max_rounds=16)
    b = fresh.estimate(rounds=4, target_se=0.05, max_rounds=16)
    assert a.probability == b.probability
    assert a.std_error == b.std_error
    assert a.rounds == b.rounds


def test_estimate_beyond_retained_rounds_raises():
    graph = random_regular_graph(40, 6, seed=1)
    instance = ProblemInstance(
        graph, bounded_uniform_competencies(40, 0.35, seed=7), alpha=0.05
    )
    session = DeltaSession(
        instance, ApprovalThreshold(2), rounds=4, seed=3, engine="mc"
    )
    with pytest.raises(ValueError, match="retains 4 rounds"):
        session.estimate(rounds=5)
    with pytest.raises(ValueError, match="retains 4 rounds"):
        session.estimate(target_se=0.001, max_rounds=64)
