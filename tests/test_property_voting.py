"""Property-based tests for exact voting computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.voting.exact import (
    direct_voting_probability,
    poisson_binomial_pmf,
    tail_from_pmf,
    weighted_bernoulli_pmf,
)
from repro.voting.outcome import TiePolicy

probabilities = st.floats(0.0, 1.0, allow_nan=False)
prob_vectors = st.lists(probabilities, min_size=1, max_size=30)


class TestPoissonBinomialProperties:
    @given(prob_vectors)
    def test_pmf_is_distribution(self, probs):
        pmf = poisson_binomial_pmf(probs)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0)

    @given(prob_vectors)
    def test_mean_matches(self, probs):
        pmf = poisson_binomial_pmf(probs)
        mean = float(np.arange(len(pmf)) @ pmf)
        assert mean == pytest.approx(sum(probs), abs=1e-9)

    @given(prob_vectors)
    def test_complement_symmetry(self, probs):
        # P[X = k] with probs p equals P[X = n-k] with probs 1-p.
        pmf = poisson_binomial_pmf(probs)
        flipped = poisson_binomial_pmf([1 - p for p in probs])
        assert np.allclose(pmf, flipped[::-1], atol=1e-9)

    @given(prob_vectors, probabilities)
    def test_appending_voter_preserves_distribution(self, probs, extra):
        base = poisson_binomial_pmf(probs)
        extended = poisson_binomial_pmf(probs + [extra])
        manual = np.zeros(len(base) + 1)
        manual[: len(base)] += base * (1 - extra)
        manual[1:] += base * extra
        assert np.allclose(extended, manual, atol=1e-9)


class TestWeightedPmfProperties:
    weighted_cases = st.lists(
        st.tuples(st.integers(0, 6), probabilities), min_size=1, max_size=12
    )

    @given(weighted_cases)
    def test_distribution(self, pairs):
        weights = [w for w, _ in pairs]
        probs = [p for _, p in pairs]
        pmf = weighted_bernoulli_pmf(weights, probs)
        assert len(pmf) == sum(weights) + 1
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= -1e-12)

    @given(weighted_cases)
    def test_mean(self, pairs):
        weights = [w for w, _ in pairs]
        probs = [p for _, p in pairs]
        pmf = weighted_bernoulli_pmf(weights, probs)
        mean = float(np.arange(len(pmf)) @ pmf)
        assert mean == pytest.approx(
            sum(w * p for w, p in pairs), abs=1e-9
        )

    @given(weighted_cases)
    def test_order_invariance(self, pairs):
        weights = [w for w, _ in pairs]
        probs = [p for _, p in pairs]
        forward = weighted_bernoulli_pmf(weights, probs)
        backward = weighted_bernoulli_pmf(weights[::-1], probs[::-1])
        assert np.allclose(forward, backward, atol=1e-9)


class TestTailProperties:
    @given(prob_vectors)
    def test_coin_flip_at_least_strict(self, probs):
        pmf = poisson_binomial_pmf(probs)
        n = len(probs)
        strict = tail_from_pmf(pmf, n)
        coin = tail_from_pmf(pmf, n, TiePolicy.COIN_FLIP)
        assert coin >= strict - 1e-12

    @given(prob_vectors)
    def test_probability_in_unit_interval(self, probs):
        p = direct_voting_probability(probs)
        assert 0.0 <= p <= 1.0

    @given(st.lists(st.floats(0.5, 1.0), min_size=1, max_size=25))
    def test_symmetric_improvement(self, probs):
        # with all p >= 1/2, adding a perfectly correct voter cannot hurt
        base = direct_voting_probability(probs, TiePolicy.COIN_FLIP)
        more = direct_voting_probability(probs + [1.0, 1.0], TiePolicy.COIN_FLIP)
        assert more >= base - 1e-9

    @settings(max_examples=30)
    @given(st.integers(1, 9), st.floats(0.01, 0.99))
    def test_iid_monotone_in_p(self, n, p):
        lo = direct_voting_probability([p * 0.9] * n)
        hi = direct_voting_probability([min(1.0, p * 1.1)] * n)
        assert hi >= lo - 1e-12
