"""Tests for exact probability computation (Poisson binomial DPs)."""

import itertools
import math

import numpy as np
import pytest

from repro.delegation.graph import SELF, DelegationGraph
from repro.voting.exact import (
    direct_voting_probability,
    forest_correct_probability,
    normal_approx_probability,
    poisson_binomial_pmf,
    tail_from_pmf,
    weighted_bernoulli_pmf,
)
from repro.voting.outcome import TiePolicy


def brute_force_pmf(weights, probs):
    """Enumerate all outcomes; reference for small cases."""
    total = sum(weights)
    pmf = np.zeros(total + 1)
    for outcome in itertools.product([0, 1], repeat=len(probs)):
        prob = 1.0
        value = 0
        for x, w, p in zip(outcome, weights, probs):
            prob *= p if x else (1 - p)
            value += w * x
        pmf[value] += prob
    return pmf


class TestPoissonBinomialPmf:
    def test_matches_binomial(self):
        p = [0.3] * 6
        pmf = poisson_binomial_pmf(p)
        for k in range(7):
            expected = math.comb(6, k) * 0.3**k * 0.7 ** (6 - k)
            assert pmf[k] == pytest.approx(expected)

    def test_matches_bruteforce_heterogeneous(self):
        p = [0.1, 0.5, 0.9, 0.3]
        pmf = poisson_binomial_pmf(p)
        ref = brute_force_pmf([1] * 4, p)
        assert np.allclose(pmf, ref)

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        p = rng.random(50)
        assert poisson_binomial_pmf(p).sum() == pytest.approx(1.0)

    def test_empty(self):
        pmf = poisson_binomial_pmf([])
        assert pmf.tolist() == [1.0]

    def test_deterministic_voters(self):
        pmf = poisson_binomial_pmf([1.0, 0.0, 1.0])
        assert pmf[2] == pytest.approx(1.0)


class TestWeightedBernoulliPmf:
    def test_matches_bruteforce(self):
        weights = [3, 1, 2]
        probs = [0.6, 0.5, 0.2]
        pmf = weighted_bernoulli_pmf(weights, probs)
        ref = brute_force_pmf(weights, probs)
        assert np.allclose(pmf, ref)

    def test_reduces_to_poisson_binomial(self):
        probs = [0.3, 0.7, 0.5]
        assert np.allclose(
            weighted_bernoulli_pmf([1, 1, 1], probs),
            poisson_binomial_pmf(probs),
        )

    def test_zero_weights_ignored(self):
        pmf = weighted_bernoulli_pmf([0, 2], [0.9, 0.5])
        ref = weighted_bernoulli_pmf([2], [0.5])
        assert np.allclose(pmf, ref)

    def test_single_heavy_sink(self):
        pmf = weighted_bernoulli_pmf([5], [0.7])
        assert pmf[0] == pytest.approx(0.3)
        assert pmf[5] == pytest.approx(0.7)
        assert pmf[1:5].sum() == pytest.approx(0.0)

    def test_sums_to_one(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(1, 10, size=20).tolist()
        probs = rng.random(20).tolist()
        assert weighted_bernoulli_pmf(weights, probs).sum() == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_bernoulli_pmf([1, 2], [0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_bernoulli_pmf([-1], [0.5])


class TestTailFromPmf:
    def test_strict_majority_odd(self):
        pmf = poisson_binomial_pmf([0.5] * 3)
        # P[X >= 2] for Binomial(3, 1/2) = 1/2
        assert tail_from_pmf(pmf, 3) == pytest.approx(0.5)

    def test_tie_handling_even(self):
        pmf = poisson_binomial_pmf([0.5] * 2)
        # strict: P[X = 2] = 1/4; coin flip adds half of P[X = 1] = 1/2
        assert tail_from_pmf(pmf, 2) == pytest.approx(0.25)
        assert tail_from_pmf(pmf, 2, TiePolicy.COIN_FLIP) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tail_from_pmf(np.array([1.0]), 3)


class TestDirectVotingProbability:
    def test_unanimous_competent(self):
        assert direct_voting_probability([1.0, 1.0, 1.0]) == 1.0

    def test_single_voter(self):
        assert direct_voting_probability([0.7]) == pytest.approx(0.7)

    def test_symmetric_coin_flip_voters_odd(self):
        assert direct_voting_probability([0.5] * 5) == pytest.approx(0.5)

    def test_condorcet_improvement(self):
        # Condorcet jury: p > 1/2 means larger groups do better.
        small = direct_voting_probability([0.6] * 3)
        large = direct_voting_probability([0.6] * 51)
        assert large > small > 0.6

    def test_condorcet_decay_below_half(self):
        small = direct_voting_probability([0.4] * 3)
        large = direct_voting_probability([0.4] * 51)
        assert large < small < 0.4 + 1e-9


class TestForestCorrectProbability:
    def test_direct_forest_matches_direct(self):
        p = [0.3, 0.6, 0.8]
        forest = DelegationGraph.direct(3)
        assert forest_correct_probability(forest, p) == pytest.approx(
            direct_voting_probability(p)
        )

    def test_dictatorship_equals_dictator_competency(self):
        forest = DelegationGraph([SELF, 0, 0, 0, 0])
        p = [0.625, 0.5, 0.5, 0.5, 0.5]
        assert forest_correct_probability(forest, p) == pytest.approx(0.625)

    def test_two_sinks_majority(self):
        # weights 3 and 2: sink 0 alone decides
        forest = DelegationGraph([SELF, 0, 0, SELF, 3])
        p = [0.9, 0.1, 0.1, 0.2, 0.1]
        assert forest_correct_probability(forest, p) == pytest.approx(0.9)

    def test_tie_weights_strict(self):
        # two sinks of weight 2: correct needs both
        forest = DelegationGraph([SELF, 0, SELF, 2])
        p = [0.5, 0.5, 0.5, 0.5]
        assert forest_correct_probability(forest, p) == pytest.approx(0.25)
        assert forest_correct_probability(
            forest, p, TiePolicy.COIN_FLIP
        ) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            forest_correct_probability(DelegationGraph.direct(2), [0.5])


class TestNormalApproximation:
    def test_matches_exact_for_large_n(self):
        n = 2001
        p = [0.55] * n
        exact = direct_voting_probability(p)
        approx = normal_approx_probability([1] * n, p)
        assert approx == pytest.approx(exact, abs=0.01)

    def test_degenerate_variance(self):
        assert normal_approx_probability([3], [1.0]) == 1.0
        assert normal_approx_probability([3], [0.0]) == 0.0

    def test_degenerate_tie(self):
        # mean exactly at threshold with zero variance
        assert normal_approx_probability([2, 2], [1.0, 0.0]) == 0.0
        assert normal_approx_probability(
            [2, 2], [1.0, 0.0], TiePolicy.COIN_FLIP
        ) == 0.5
