"""Known-good: a registry where every wire name resolves (C302-clean)."""


class DelegationMechanism:
    pass


class DirectMech(DelegationMechanism):
    pass


def _build_direct(params):
    return DirectMech()


MECHANISM_BUILDERS = {
    "direct": _build_direct,
}
