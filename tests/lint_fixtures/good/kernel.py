"""Known-good kernel pairings: named oracle, pragma, suppression."""

import numpy as np


def double_batch(values):
    return np.asarray(values) * 2


def _reference_double_batch(values):
    return [v * 2 for v in values]


# reprolint: reference=_slow_increment
def increment_batch(values):
    return np.asarray(values) + 1


def _slow_increment(values):
    return [v + 1 for v in values]


# reprolint: disable=K401
def record_batch(size):
    # A counter, not a numeric kernel.
    return size
