"""Known-good kernel pairings: named oracle, pragma, suppression."""

import numpy as np


def double_batch(values):
    return np.asarray(values) * 2


def _reference_double_batch(values):
    return [v * 2 for v in values]


# reprolint: reference=_slow_increment
def increment_batch(values):
    return np.asarray(values) + 1


def _slow_increment(values):
    return [v + 1 for v in values]


# reprolint: disable=K401
def record_batch(size):
    # A counter, not a numeric kernel.
    return size


def patch_totals_delta(totals, changed):
    out = np.asarray(totals).copy()
    out[changed] += 1
    return out


def _reference_patch_totals_delta(totals):
    return [t + 1 for t in totals]


# reprolint: reference=_rebuild_counts
def recount_incremental(counts, dirty):
    out = np.asarray(counts).copy()
    out[dirty] = 0
    return out


def _rebuild_counts(counts):
    return [0 for _ in counts]


# reprolint: disable=K403
def time_delta(start, stop):
    # A duration helper, not an incremental kernel.
    return stop - start
