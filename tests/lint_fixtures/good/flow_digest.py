"""Known-good digest flows: clocks measured, never hashed (D203)."""

import hashlib
import time


def timed(fn):
    # Wall-clock readings are fine when they feed a measurement, not a
    # key: the tainted value never reaches a hash or *_key call.
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def options_fingerprint(options):
    # sorted() launders set-iteration order before the digest.
    joined = ",".join(sorted({o.lower() for o in options}))
    return hashlib.sha256(joined.encode()).hexdigest()
