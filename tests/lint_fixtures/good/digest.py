"""Known-good digest hygiene: sorted json, clocks outside key paths."""

import hashlib
import json
import time


def digest(payload):
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def log_line(message):
    # Wall clock is fine in a function that produces no key.
    return f"{time.time():.3f} {message}"


def pretty(payload):
    # Unsorted dumps is fine when nothing hashes it.
    return json.dumps(payload, indent=2)
