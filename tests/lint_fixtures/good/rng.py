"""Known-good RNG usage: seeded constructors, derived seeds, pragmas."""

import numpy as np
from numpy.random import SeedSequence


def seeded(seed):
    rng = np.random.default_rng(seed)
    root = SeedSequence(seed)
    return rng, root


def explicit_entropy():
    # Fresh entropy is wanted here; say so instead of hiding it.
    return np.random.default_rng(None)


def sanctioned_mixing(seed):
    # reprolint: disable=R103
    return seed + 1
