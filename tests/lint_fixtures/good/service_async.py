"""Known-good async code: blocking work offloaded (S501)."""

import asyncio
import time


def _warm_worker():
    time.sleep(0.5)
    return True


async def refresh(loop):
    # Passing the function (not calling it) creates no call edge, so
    # executor offload is exempt automatically.
    return await loop.run_in_executor(None, _warm_worker)


async def refresh_to_thread():
    return await asyncio.to_thread(_warm_worker)
