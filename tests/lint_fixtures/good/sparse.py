"""Known-good sparse-safe module: flat CSR and chunk-budgeted grids."""
# reprolint: sparse-safe

import numpy as np


def flat_segments(n, nnz):
    # 1-D O(E) arrays are the whole point of the sparse backend.
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = np.empty(nnz, dtype=np.int64)
    return indptr, indices


def chunked_uniforms(rows, n):
    # One instance-scaled axis; the chunker bounds the other.
    return np.empty((rows, n))


def suppressed_scratch(n, num_vertices):
    # An audited exception opts out explicitly.
    return np.zeros((n, num_vertices))  # reprolint: disable=K402


def unmarked_shapes(rounds, chunk):
    # No instance-scaled axis at all.
    return np.ones((rounds, chunk))
