"""Known-good rng flows: seeds key digests, draws stay out (F601)."""

import hashlib

import numpy as np


def make_generator(seed):
    return np.random.default_rng(seed)


def seed_key(seed):
    # Plain integer seeds are legitimate cache-key material — the
    # estimate digest is *supposed* to include the seed.
    return hashlib.sha256(str(seed).encode()).hexdigest()


def draw_mean(seed):
    gen = make_generator(seed)
    return float(gen.standard_normal(8).mean())
