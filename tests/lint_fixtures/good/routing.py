"""Known-good shard routing: content-addressed, sha256-based."""

import bisect
import hashlib


def _point(label):
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


def shard_for(routing_key, points, shards):
    # Same key -> same shard, on every run, host and worker.
    position = bisect.bisect_right(points, _point(routing_key))
    return shards[position % len(shards)]


def route_request(request, ring):
    # Routing from the request's digest only is the contract.
    return shard_for(request["digest"], ring.points, ring.shards)
