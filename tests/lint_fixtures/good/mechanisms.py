"""Known-good mechanisms: behavioural token present, or no params."""

from repro.mechanisms.base import DelegationMechanism


class TokenedMechanism(DelegationMechanism):
    def __init__(self, knob):
        self._knob = knob

    @property
    def name(self):
        return f"tokened({self._knob})"

    def cache_token(self, instance):
        return (type(self).__qualname__, self._knob)

    def sample_delegations(self, instance, rng=None):
        raise NotImplementedError


class ParameterlessMechanism(DelegationMechanism):
    @property
    def name(self):
        return "parameterless"

    def sample_delegations(self, instance, rng=None):
        raise NotImplementedError
