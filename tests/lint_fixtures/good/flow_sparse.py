"""Known-good CSR index arithmetic: promoted before reducing (K404)."""

import numpy as np


def edge_offsets(graph):
    return graph.indptr


def total_edge_span(graph):
    # Explicit int64 promotion clears the width taint before cumsum.
    return edge_offsets(graph).astype(np.int64).cumsum()


def degree_mass(graph):
    degrees = np.diff(graph.indptr.astype(np.int64))
    return degrees.sum(dtype=np.int64)
