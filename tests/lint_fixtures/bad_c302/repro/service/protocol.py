"""Known-bad: protocol registry out of sync with mechanisms (C302)."""


class DelegationMechanism:
    pass


class GoodMech(DelegationMechanism):
    pass


def _build_good(params):
    return GoodMech()


def _build_orphan(params):
    # Constructs a mechanism but is never registered below.
    return GoodMech()


def _build_phantom(params):
    # PhantomMech exists nowhere in this project.
    return PhantomMech()


MECHANISM_BUILDERS = {
    "good": _build_good,
    "phantom": _build_phantom,
    "ghost": _build_missing,
}
