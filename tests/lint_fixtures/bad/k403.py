"""Known-bad: incremental kernels without from-scratch oracles (K403)."""

import numpy as np


def resink_delta(weights, dirty):
    weights = np.asarray(weights).copy()
    weights[dirty] += 1
    return weights


# reprolint: reference=_reference_missing_rebuild
def retally_incremental(totals, changed):
    totals = np.asarray(totals).copy()
    totals[changed] *= 2
    return totals
