"""Known-bad: unsorted json feeding a hash (D202)."""

import hashlib
import json


def digest(payload):
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
