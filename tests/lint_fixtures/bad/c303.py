"""Known-bad: nondeterministic shard routing (C303).

Every function here routes by something other than request content —
the salted builtin ``hash()``, the process id, a wall clock, an
entropy draw — so the same request lands on different shards across
runs (or across workers).
"""

import os
import secrets
import time
import uuid


def pick_shard(payload, n_shards):
    # str hash() is salted per process: two front-ends disagree.
    return hash(payload) % n_shards


def shard_for(request, n_shards):
    return (os.getpid() + request) % n_shards


def route_request(n_shards):
    return int(time.monotonic()) % n_shards


def spread_routing(n_shards):
    return secrets.randbelow(n_shards)


def route_id():
    return uuid.uuid4().int
