"""Known-bad: wall clock and id() inside key-path functions (D201)."""

import time


def coalesce_key(payload):
    return f"{payload}:{time.time()}"


def cache_token(obj):
    return id(obj)
