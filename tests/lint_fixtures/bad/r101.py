"""Known-bad: unseeded generator construction (R101)."""

import numpy as np
from numpy.random import SeedSequence

rng = np.random.default_rng()
root = SeedSequence()
