"""Known-bad: file that does not parse (X000)."""


def broken(:
    return None
