"""Known-bad: suppression naming an unknown rule id (X001)."""

import numpy as np

rng = np.random.default_rng(0)  # reprolint: disable=R999
