"""Known-bad: legacy global-state RNG calls (R102)."""

import random

import numpy as np


def noisy(n):
    np.random.seed(0)
    values = np.random.rand(n)
    return values, random.random()
