"""Known-bad: blocking calls reachable from async defs (S501)."""

import subprocess
import time


def _warm_worker():
    # Blocking in a sync helper is only a finding because an async def
    # reaches it through the call graph.
    time.sleep(0.5)
    return True


async def refresh():
    return _warm_worker()  # interprocedural


async def spawn_probe(cmd):
    return subprocess.run(cmd)  # direct blocking call in the async def
