"""Known-bad: int32 CSR index arithmetic without promotion (K404)."""


def edge_offsets(graph):
    # Helper returning the raw (possibly int32) indptr: callers are
    # tainted through the summary.
    return graph.indptr


def total_edge_span(graph):
    offsets = edge_offsets(graph)  # interprocedural
    return offsets.cumsum()  # accumulates in int32 and wraps at 2^31


def weighted_degree_mass(graph):
    degrees = graph.indptr[1:] - graph.indptr[:-1]
    return (degrees * graph.indices).sum()
