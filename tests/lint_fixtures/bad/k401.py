"""Known-bad: batch kernels without reference oracles (K401)."""

import numpy as np


def frobnicate_batch(values):
    return np.asarray(values) * 2


# reprolint: reference=_reference_missing_oracle
def transmogrify_batch(values):
    return np.asarray(values) + 1
