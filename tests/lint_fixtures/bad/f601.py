"""Known-bad: rng-derived values reaching digest/key paths (F601)."""

import hashlib

import numpy as np

_LAST_DRAW = {}


def make_generator():
    # The generator is constructed here; callers are tainted through
    # the function summary, not the visible call site.
    return np.random.default_rng(0)


def draw_fingerprint():
    gen = make_generator()  # interprocedural: taint arrives via summary
    draw = gen.integers(0, 1 << 30)
    return hashlib.sha256(str(draw).encode()).hexdigest()


def remember_draw(label):
    gen = make_generator()
    # Draws stashed in module-level mutable state outlive the call and
    # make later behaviour depend on draw order.
    _LAST_DRAW[label] = gen.integers(0, 10)
