"""Known-bad: nondeterministic attack scenarios (A501).

One scenario forgets its behavioural ``cache_token``; the other
declares one but mints its own (even constant-seeded!) generator
instead of drawing from the stream the attack search passes in — so
served searches and certificate replays fork away from local runs.
"""

import numpy as np

from repro.attacks.scenarios import AttackScenario


class TokenlessScenario(AttackScenario):
    @property
    def name(self):
        return "tokenless"

    def _params(self):
        return {}

    def propose(self, instance, mechanism, rng):
        return []


class SelfSeedingScenario(AttackScenario):
    @property
    def name(self):
        return "self_seeding"

    def cache_token(self):
        return (type(self).__qualname__,)

    def _params(self):
        return {}

    def propose(self, instance, mechanism, rng):
        # Seeded, so R101 stays quiet — but it is still a private
        # stream the search knows nothing about.
        private = np.random.default_rng(7)
        return list(private.permutation(instance.num_voters))
