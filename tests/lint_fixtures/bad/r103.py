"""Known-bad: ad-hoc seed arithmetic (R103)."""


def derived_streams(config, workers):
    return [config.seed + i for i in range(workers)]


def shifted(base_seed):
    return base_seed * 31
