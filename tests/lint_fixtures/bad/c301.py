"""Known-bad: parameterised mechanism without cache_token (C301)."""

from repro.mechanisms.base import DelegationMechanism


class ShinyMechanism(DelegationMechanism):
    def __init__(self, knob):
        self._knob = knob

    @property
    def name(self):
        return f"shiny({self._knob})"

    def sample_delegations(self, instance, rng=None):
        raise NotImplementedError
