"""Known-bad: nondeterministic values flowing into digests (D203)."""

import hashlib
import os
import time


def stamp():
    # The clock reading happens here; the hash is in the caller, so
    # only a flow-sensitive rule connects the two.
    return time.time()


def stamped_payload_sha():
    reading = stamp()  # interprocedural: taint arrives via summary
    return hashlib.sha256(str(reading).encode()).hexdigest()


def request_token(request):
    return hashlib.blake2s(f"{os.getpid()}:{request}".encode()).hexdigest()


def options_fingerprint(options):
    # Set iteration order varies across processes under hash
    # randomisation; joining it bakes that order into the digest.
    joined = ",".join({o.lower() for o in options})
    return hashlib.sha256(joined.encode()).hexdigest()
