"""Known-bad: dense per-voter grids in a sparse-safe module (K402)."""
# reprolint: sparse-safe

import numpy as np


def dense_offsets(n, max_degree):
    # (n, max_degree): both axes grow with the instance.
    return np.zeros((n, max_degree), dtype=np.int64)


def dense_matrix(num_voters):
    # Voter-by-voter grid via keyword shape.
    return np.full(shape=(num_voters, num_voters), fill_value=-1)


def scaled_expression(n, degrees):
    # Instance scaling hides inside arithmetic on both axes.
    return np.empty((2 * n, int(degrees.max()) + 1))
