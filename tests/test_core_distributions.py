"""Tests for competency distributions (probabilistic-competency model)."""

import numpy as np
import pytest

from repro.core.distributions import (
    BetaCompetency,
    MixtureCompetency,
    PointMass,
    TruncatedNormalCompetency,
    UniformCompetency,
)


def empirical_moments(dist, n=40000, seed=0):
    values = dist.sample_vector(n, seed=seed)
    return float(values.mean()), float(values.var())


class TestPointMass:
    def test_moments(self):
        d = PointMass(0.7)
        assert d.mean() == 0.7
        assert d.variance() == 0.0
        assert d.support() == (0.7, 0.7)

    def test_sampling(self):
        assert set(PointMass(0.3).sample_vector(5, seed=0)) == {0.3}

    def test_bounded_margin(self):
        assert PointMass(0.7).bounded_margin() == pytest.approx(0.3)
        assert PointMass(1.0).bounded_margin() == 0.0

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            PointMass(1.5)


class TestUniform:
    def test_exact_moments(self):
        d = UniformCompetency(0.2, 0.8)
        assert d.mean() == pytest.approx(0.5)
        assert d.variance() == pytest.approx(0.36 / 12)

    def test_empirical_moments_match(self):
        d = UniformCompetency(0.3, 0.7)
        mean, var = empirical_moments(d)
        assert mean == pytest.approx(d.mean(), abs=0.01)
        assert var == pytest.approx(d.variance(), abs=0.005)

    def test_support_and_margin(self):
        d = UniformCompetency(0.35, 0.65)
        assert d.support() == (0.35, 0.65)
        assert d.bounded_margin() == pytest.approx(0.35)

    def test_plausible_changeability(self):
        assert UniformCompetency(0.4, 0.8).plausible_changeability() == pytest.approx(0.1)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            UniformCompetency(0.8, 0.2)


class TestBeta:
    def test_exact_moments_unscaled(self):
        d = BetaCompetency(2, 2)
        assert d.mean() == pytest.approx(0.5)
        assert d.variance() == pytest.approx(0.05)

    def test_scaled_moments(self):
        d = BetaCompetency(2, 2, low=0.4, high=0.6)
        assert d.mean() == pytest.approx(0.5)
        assert d.variance() == pytest.approx(0.05 * 0.2**2)

    def test_empirical_match(self):
        d = BetaCompetency(3, 5, low=0.2, high=0.9)
        mean, var = empirical_moments(d)
        assert mean == pytest.approx(d.mean(), abs=0.01)
        assert var == pytest.approx(d.variance(), abs=0.005)

    def test_samples_in_support(self):
        d = BetaCompetency(1, 3, low=0.25, high=0.75)
        values = d.sample_vector(1000, seed=1)
        lo, hi = d.support()
        assert np.all(values >= lo) and np.all(values <= hi)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BetaCompetency(0, 1)


class TestTruncatedNormal:
    def test_symmetric_mean(self):
        d = TruncatedNormalCompetency(0.5, 0.1, low=0.3, high=0.7)
        assert d.mean() == pytest.approx(0.5)

    def test_empirical_match(self):
        d = TruncatedNormalCompetency(0.6, 0.15, low=0.3, high=0.9)
        mean, var = empirical_moments(d)
        assert mean == pytest.approx(d.mean(), abs=0.01)
        assert var == pytest.approx(d.variance(), abs=0.005)

    def test_variance_below_untruncated(self):
        d = TruncatedNormalCompetency(0.5, 0.2, low=0.3, high=0.7)
        assert d.variance() < 0.2**2

    def test_samples_in_support(self):
        d = TruncatedNormalCompetency(0.9, 0.3, low=0.4, high=0.6)
        values = d.sample_vector(500, seed=2)
        assert np.all((values >= 0.4) & (values <= 0.6))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            TruncatedNormalCompetency(0.5, 0.0)


class TestMixture:
    @pytest.fixture
    def mixture(self):
        return MixtureCompetency(
            [UniformCompetency(0.3, 0.5), PointMass(0.8)], weights=[0.75, 0.25]
        )

    def test_mean(self, mixture):
        assert mixture.mean() == pytest.approx(0.75 * 0.4 + 0.25 * 0.8)

    def test_variance_law_of_total_variance(self, mixture):
        mean = mixture.mean()
        expected = (
            0.75 * (UniformCompetency(0.3, 0.5).variance() + 0.4**2)
            + 0.25 * (0.0 + 0.8**2)
            - mean**2
        )
        assert mixture.variance() == pytest.approx(expected)

    def test_empirical_match(self, mixture):
        mean, var = empirical_moments(mixture)
        assert mean == pytest.approx(mixture.mean(), abs=0.01)
        assert var == pytest.approx(mixture.variance(), abs=0.005)

    def test_support_union(self, mixture):
        assert mixture.support() == (0.3, 0.8)

    def test_weights_normalised(self):
        m = MixtureCompetency([PointMass(0.2), PointMass(0.8)], weights=[2, 2])
        assert m.mean() == pytest.approx(0.5)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            MixtureCompetency([PointMass(0.5)], weights=[0.5, 0.5])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            MixtureCompetency([PointMass(0.5)], weights=[-1])
