"""Tests for weighted-majority delegation DAGs."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.mechanisms.weighted_majority import WeightedMajorityDelegation
from repro.voting.dag import DelegateWeights, WeightedDelegationDag


class TestDelegateWeights:
    def test_basic(self):
        dw = DelegateWeights((1, 2), (1.0, 2.0))
        assert dw.delegates == (1, 2)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            DelegateWeights((1,), (1.0, 2.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DelegateWeights((), ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            DelegateWeights((1, 1), (1.0, 1.0))

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            DelegateWeights((1,), (0.0,))


class TestDagConstruction:
    def test_all_direct(self):
        dag = WeightedDelegationDag(3, {})
        assert dag.direct_voters == (0, 1, 2)
        assert dag.num_delegators == 0
        assert dag.max_fan_in() == 0

    def test_simple_dag(self):
        dag = WeightedDelegationDag(
            3, {0: DelegateWeights((1, 2), (1.0, 1.0))}
        )
        assert dag.num_delegators == 1
        assert dag.direct_voters == (1, 2)
        assert dag.max_fan_in() == 1

    def test_rejects_self_delegation(self):
        with pytest.raises(ValueError, match="itself"):
            WeightedDelegationDag(2, {0: DelegateWeights((0,), (1.0,))})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out-of-range"):
            WeightedDelegationDag(2, {0: DelegateWeights((5,), (1.0,))})

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            WeightedDelegationDag(
                2,
                {
                    0: DelegateWeights((1,), (1.0,)),
                    1: DelegateWeights((0,), (1.0,)),
                },
            )

    def test_rejects_longer_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            WeightedDelegationDag(
                3,
                {
                    0: DelegateWeights((1,), (1.0,)),
                    1: DelegateWeights((2,), (1.0,)),
                    2: DelegateWeights((0,), (1.0,)),
                },
            )

    def test_fan_in(self):
        dag = WeightedDelegationDag(
            4,
            {
                0: DelegateWeights((3,), (1.0,)),
                1: DelegateWeights((3,), (1.0,)),
                2: DelegateWeights((3,), (1.0,)),
            },
        )
        assert dag.max_fan_in() == 3


class TestEffectiveVotes:
    def test_deterministic_majority(self):
        # voters 1, 2 certain-correct; 3 certain-wrong; 0 takes majority
        dag = WeightedDelegationDag(
            4, {0: DelegateWeights((1, 2, 3), (1.0, 1.0, 1.0))}
        )
        votes = dag.sample_effective_votes([0.0, 1.0, 1.0, 0.0], rng=0)
        assert votes[0] == 1  # 2-of-3 correct advisors

    def test_weights_flip_majority(self):
        # wrong advisor has weight 3 vs two correct with weight 1 each
        dag = WeightedDelegationDag(
            4, {0: DelegateWeights((1, 2, 3), (1.0, 1.0, 3.0))}
        )
        votes = dag.sample_effective_votes([1.0, 1.0, 1.0, 0.0], rng=0)
        assert votes[0] == 0

    def test_tie_falls_back_to_own_competency(self):
        # one correct, one wrong advisor, equal weights; own p = 1
        dag = WeightedDelegationDag(
            3, {0: DelegateWeights((1, 2), (1.0, 1.0))}
        )
        votes = dag.sample_effective_votes([1.0, 1.0, 0.0], rng=0)
        assert votes[0] == 1

    def test_tie_coin_flip_mode(self):
        dag = WeightedDelegationDag(
            3, {0: DelegateWeights((1, 2), (1.0, 1.0))}
        )
        rng = np.random.default_rng(0)
        outcomes = [
            dag.sample_effective_votes(
                [1.0, 1.0, 0.0], rng, tie_break_own_vote=False
            )[0]
            for _ in range(200)
        ]
        assert 0.3 < np.mean(outcomes) < 0.7

    def test_chained_resolution(self):
        # 0 follows 1; 1 follows 2; 2 is certain-correct.
        dag = WeightedDelegationDag(
            3,
            {
                0: DelegateWeights((1,), (1.0,)),
                1: DelegateWeights((2,), (1.0,)),
            },
        )
        votes = dag.sample_effective_votes([0.0, 0.0, 1.0], rng=0)
        assert votes.tolist() == [1, 1, 1]

    def test_length_mismatch_rejected(self):
        dag = WeightedDelegationDag(2, {})
        with pytest.raises(ValueError):
            dag.sample_effective_votes([0.5], rng=0)


class TestCorrectProbability:
    def test_certain_population(self):
        dag = WeightedDelegationDag(3, {})
        est, lo, hi = dag.estimate_correct_probability([1.0, 1.0, 1.0], rounds=20, seed=0)
        assert est == 1.0

    def test_strict_majority_needed(self):
        # 2 voters: a 1-1 split is a tie -> incorrect.
        dag = WeightedDelegationDag(2, {})
        est, _, _ = dag.estimate_correct_probability([1.0, 0.0], rounds=50, seed=0)
        assert est == 0.0

    def test_ci_brackets_estimate(self):
        dag = WeightedDelegationDag(5, {})
        est, lo, hi = dag.estimate_correct_probability(
            [0.6] * 5, rounds=300, seed=1
        )
        assert lo <= est <= hi

    def test_rejects_zero_rounds(self):
        dag = WeightedDelegationDag(2, {})
        with pytest.raises(ValueError):
            dag.estimate_correct_probability([0.5, 0.5], rounds=0)


class TestWeightedMajorityMechanism:
    @pytest.fixture
    def instance(self):
        rng = np.random.default_rng(4)
        return ProblemInstance(
            complete_graph(20), rng.uniform(0.25, 0.75, 20), alpha=0.05
        )

    def test_dag_targets_are_approved(self, instance):
        mech = WeightedMajorityDelegation(3, threshold=1)
        dag = mech.sample_dag(instance, 0)
        for voter in range(instance.num_voters):
            choice = dag.choice(voter)
            if choice is None:
                continue
            for d in choice.delegates:
                assert instance.approves(voter, d)

    def test_k_caps_delegate_count(self, instance):
        mech = WeightedMajorityDelegation(2, threshold=1)
        dag = mech.sample_dag(instance, 0)
        for voter in range(instance.num_voters):
            choice = dag.choice(voter)
            if choice is not None:
                assert len(choice.delegates) <= 2

    def test_threshold_respected(self, instance):
        mech = WeightedMajorityDelegation(3, threshold=10**9)
        dag = mech.sample_dag(instance, 0)
        assert dag.num_delegators == 0

    def test_rank_weights_ascending(self, instance):
        mech = WeightedMajorityDelegation(3, threshold=1, weighting="rank")
        dag = mech.sample_dag(instance, 0)
        p = instance.competencies
        for voter in range(instance.num_voters):
            choice = dag.choice(voter)
            if choice is None or len(choice.delegates) < 2:
                continue
            # weights increase with the delegate's competency rank
            comps = [p[d] for d in choice.delegates]
            assert list(choice.weights) == sorted(choice.weights)
            assert comps == sorted(comps)

    def test_estimate_probability_reasonable(self, instance):
        mech = WeightedMajorityDelegation(3, threshold=1)
        prob = mech.estimate_correct_probability(
            instance, dag_rounds=4, vote_rounds=100, seed=0
        )
        assert 0.0 <= prob <= 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            WeightedMajorityDelegation(0)
        with pytest.raises(ValueError):
            WeightedMajorityDelegation(2, weighting="magic")

    def test_name(self):
        assert "rank" in WeightedMajorityDelegation(2, weighting="rank").name
