"""Integration tests: the paper's end-to-end claims on real pipelines.

These tests exercise multiple modules together — instance construction,
mechanism execution, delegation resolution, exact evaluation, analysis —
asserting the quantitative shapes the paper proves.
"""

import numpy as np
import pytest

from repro import (
    ApprovalThreshold,
    CappedRandomApproved,
    DirectVoting,
    GreedyBest,
    ProblemInstance,
    RandomApproved,
    SampledNeighbourhood,
    bounded_uniform_competencies,
    complete_graph,
    exact_gain,
    lemma3_loss_probability_bound,
    monte_carlo_gain,
    random_regular_graph,
    star_graph,
    weight_profile,
)
from repro.delegation.metrics import normalized_outcome_std
from repro.sampling.builders import recycle_graph_from_mechanism_run
from repro.voting.exact import direct_voting_probability


class TestStarCounterexample:
    """Figure 1 / Kahng et al.'s impossibility engine, end to end."""

    @staticmethod
    def star_instance(n):
        p = np.full(n, 9 / 16)
        p[0] = 5 / 8
        return ProblemInstance(star_graph(n), p, alpha=0.01)

    def test_direct_probability_converges_to_one(self):
        probs = [
            direct_voting_probability(self.star_instance(n).competencies)
            for n in (9, 65, 513)
        ]
        assert probs == sorted(probs)
        assert probs[-1] > 0.95

    def test_delegation_stuck_at_hub_competency(self):
        for n in (9, 65, 513):
            inst = self.star_instance(n)
            est = exact_gain(inst, GreedyBest())
            assert est.mechanism_probability == pytest.approx(5 / 8)

    def test_loss_converges_to_three_eighths(self):
        inst = self.star_instance(2049)
        est = exact_gain(inst, GreedyBest())
        assert est.gain == pytest.approx(-3 / 8, abs=0.01)

    def test_variance_collapse_is_the_cause(self):
        # the paper's thesis: delegation destroys outcome variance.
        inst = self.star_instance(513)
        forest = GreedyBest().sample_delegations(inst, 0)
        direct_std = normalized_outcome_std(
            DirectVoting().sample_delegations(inst, 0), inst.competencies
        )
        deleg_std = normalized_outcome_std(forest, inst.competencies)
        # dictator: std scales like sqrt(n) * sqrt(p(1-p)) per normalised
        # unit; direct voting keeps it constant.
        assert direct_std < 1.0
        assert deleg_std > 10.0

    def test_weight_cap_restores_dnh(self):
        # Lemma 5 in action: cap the hub's weight and the loss vanishes.
        inst = self.star_instance(513)
        capped = CappedRandomApproved(4)
        est = monte_carlo_gain(inst, capped, rounds=40, seed=0)
        assert est.gain > -0.01


class TestCompleteGraphTheorem2:
    def test_gain_positive_across_sizes(self):
        for n in (64, 256, 1024):
            inst = ProblemInstance(
                complete_graph(n),
                bounded_uniform_competencies(n, 0.35, seed=n),
                alpha=0.05,
            )
            mech = ApprovalThreshold(lambda d: max(1.0, d ** (1 / 3)))
            est = monte_carlo_gain(inst, mech, rounds=60, seed=n)
            assert est.gain > 0.1, f"n={n}"

    def test_delegation_dominates_direct_in_expectation(self):
        n = 256
        inst = ProblemInstance(
            complete_graph(n),
            bounded_uniform_competencies(n, 0.35, seed=0),
            alpha=0.05,
        )
        mech = RandomApproved()
        graph, _ = recycle_graph_from_mechanism_run(inst, mech)
        num_delegators = sum(1 for node in graph.nodes if node.successors)
        # Lemma 7: mu(Y) >= mu(X) + (n - k) * alpha
        assert graph.mean_sum() >= (
            float(inst.competencies.sum()) + num_delegators * inst.alpha - 1e-9
        )

    def test_partition_complexity_at_most_one_over_alpha(self):
        inst = ProblemInstance(
            complete_graph(128),
            bounded_uniform_competencies(128, 0.35, seed=1),
            alpha=0.05,
        )
        graph, _ = recycle_graph_from_mechanism_run(inst, RandomApproved())
        assert graph.partition_complexity() <= 21  # 1/alpha + 1


class TestRandomRegularTheorem3:
    def test_gain_positive(self):
        n, d = 512, 16
        inst = ProblemInstance(
            random_regular_graph(n, d, seed=0),
            bounded_uniform_competencies(n, 0.35, seed=0),
            alpha=0.05,
        )
        mech = SampledNeighbourhood(threshold=lambda s: max(1.0, s ** (1 / 3)), d=d)
        est = monte_carlo_gain(inst, mech, rounds=60, seed=0)
        assert est.gain > 0.1

    def test_weights_stay_moderate(self):
        n, d = 512, 16
        inst = ProblemInstance(
            random_regular_graph(n, d, seed=1),
            bounded_uniform_competencies(n, 0.35, seed=1),
            alpha=0.05,
        )
        forest = SampledNeighbourhood(threshold=2, d=d).sample_delegations(inst, 0)
        profile = weight_profile(forest)
        assert profile.max_weight < n ** 0.75


class TestLemma3EndToEnd:
    def test_exact_flip_probability_below_erf_bound(self):
        beta, eps = 0.3, 0.1
        from repro.voting.exact import poisson_binomial_pmf

        for n in (100, 400, 1600):
            p = bounded_uniform_competencies(n, beta, seed=n)
            d = int(n ** (0.5 - eps))
            pmf = poisson_binomial_pmf(p)
            half = n // 2
            lo, hi = max(0, half - 2 * d), min(n, half + 2 * d)
            flip = float(pmf[lo : hi + 1].sum())
            assert flip <= lemma3_loss_probability_bound(n, eps, beta) + 1e-9

    def test_flip_probability_decreases_in_n(self):
        beta, eps = 0.3, 0.15
        from repro.voting.exact import poisson_binomial_pmf

        flips = []
        for n in (100, 1600, 6400):
            p = np.full(n, 0.5)  # worst case: mean exactly at the boundary
            d = int(n ** (0.5 - eps))
            pmf = poisson_binomial_pmf(p)
            half = n // 2
            flips.append(float(pmf[half - 2 * d : half + 2 * d + 1].sum()))
        assert flips == sorted(flips, reverse=True)


class TestDictatorshipFootnote:
    """Footnote 1: 'delegating all votes to a single dictator leads to
    worse outcomes' — verified as exact probabilities."""

    def test_dictator_vs_crowd(self):
        n = 201
        p = np.full(n, 0.55)
        p[-1] = 0.8  # the would-be dictator is genuinely better ...
        inst = ProblemInstance(complete_graph(n), p, alpha=0.1)
        dictator = GreedyBest()
        est = exact_gain(inst, dictator)
        # ... but the crowd of weaker voters still beats one strong voter.
        assert est.mechanism_probability == pytest.approx(0.8)
        assert est.direct_probability > 0.9
        assert est.gain < -0.1
