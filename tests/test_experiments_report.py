"""Tests for markdown report generation."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.report import (
    markdown_report,
    markdown_section,
    markdown_table,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="T0",
        title="demo experiment",
        claim="something should hold",
        headers=["n", "gain"],
        rows=[[10, 0.123456], [20, -0.5]],
        observations=["gain positive at n=10"],
        seed=1,
        scale="smoke",
    )


class TestMarkdownTable:
    def test_structure(self, result):
        table = markdown_table(result)
        lines = table.splitlines()
        assert lines[0] == "| n | gain |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_precision(self, result):
        assert "0.12" in markdown_table(result, precision=2)
        assert "0.1235" in markdown_table(result, precision=4)

    def test_empty_rows(self, result):
        result.rows = []
        assert markdown_table(result).count("\n") == 1


class TestMarkdownSection:
    def test_contains_parts(self, result):
        section = markdown_section(result)
        assert "## T0 — demo experiment" in section
        assert "**Paper claim:** something should hold" in section
        assert "* measured: gain positive at n=10" in section
        assert "seed=1" in section

    def test_no_observations(self, result):
        result.observations = []
        section = markdown_section(result)
        assert "measured" not in section


class TestMarkdownReport:
    def test_multiple_sections(self, result):
        other = ExperimentResult(
            "T1", "second", "also holds", ["x"], [[1]], [], 0, "smoke"
        )
        report = markdown_report([result, other], title="My report")
        assert report.startswith("# My report")
        assert "## T0" in report and "## T1" in report
        assert report.endswith("\n")

    def test_empty_report(self):
        report = markdown_report([], title="Nothing")
        assert report == "# Nothing\n"
