"""Runtime twin of reprolint's C302 protocol↔mechanism sync rule.

The static rule (:mod:`repro.lint.rules_cache`) checks that every wire
name in ``MECHANISM_BUILDERS`` resolves, *syntactically*, to a builder
constructing a real mechanism class.  These tests exercise the same
contract dynamically: every registered wire name must round-trip through
:func:`build_mechanism` to a constructible
:class:`~repro.mechanisms.base.DelegationMechanism` whose ``cache_token``
is present, deterministic across fresh constructions (so served and
direct estimates share persistent-cache entries), and sensitive to the
behavioural parameters the spec carries.
"""

from __future__ import annotations

import pytest

from repro.cache import estimate_digest
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.mechanisms.base import DelegationMechanism
from repro.service.protocol import MECHANISM_BUILDERS, build_mechanism

_BASE = {"name": "approval_threshold", "params": {"threshold": 2}}

CANONICAL_SPECS = {
    "direct": {},
    "approval_threshold": {"threshold": 2},
    "random_approved": {},
    "fraction_approved": {"fraction": 0.25},
    "sampled_neighbourhood": {"threshold": 2, "d": 3},
    "greedy_best": {},
    "capped_random_approved": {"max_weight": 4},
    "abstention": {"base": _BASE, "abstain_prob": 0.1},
}
"""One known-valid params dict per wire name.

Kept in sync with :data:`MECHANISM_BUILDERS` by
:func:`test_every_wire_name_has_a_canonical_spec` — registering a new
builder without teaching this suite (and the static C302 fixture set)
about it fails here first.
"""

VARIANT_SPECS = {
    "approval_threshold": {"threshold": 3},
    "fraction_approved": {"fraction": 0.75},
    "sampled_neighbourhood": {"threshold": 2, "d": 5},
    "capped_random_approved": {"max_weight": 2},
    "abstention": {"base": _BASE, "abstain_prob": 0.3},
}
"""A second, behaviourally different params dict per parameterised name."""


def _instance(n: int = 12, seed: int = 3) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.3, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


def _spec(name: str, params: dict) -> dict:
    return {"name": name, "params": params}


def test_every_wire_name_has_a_canonical_spec():
    assert set(CANONICAL_SPECS) == set(MECHANISM_BUILDERS)


@pytest.mark.parametrize("name", sorted(MECHANISM_BUILDERS))
def test_spec_round_trips_to_a_mechanism(name):
    mech = build_mechanism(_spec(name, CANONICAL_SPECS[name]))
    assert isinstance(mech, DelegationMechanism)


@pytest.mark.parametrize("name", sorted(MECHANISM_BUILDERS))
def test_cache_token_present_and_deterministic(name):
    spec = _spec(name, CANONICAL_SPECS[name])
    instance = _instance()
    first = build_mechanism(spec).cache_token(instance)
    second = build_mechanism(spec).cache_token(instance)
    assert first is not None
    assert first == second


@pytest.mark.parametrize("name", sorted(MECHANISM_BUILDERS))
def test_cache_digest_stable_across_constructions(name):
    """The full persistent-cache digest, not just the token, must agree."""
    spec = _spec(name, CANONICAL_SPECS[name])
    instance = _instance()
    params = {"fn": "estimate_correct_probability", "rounds": 16}
    a = estimate_digest(instance, build_mechanism(spec), 7, params)
    b = estimate_digest(instance, build_mechanism(spec), 7, params)
    assert a == b


@pytest.mark.parametrize("name", sorted(VARIANT_SPECS))
def test_cache_token_separates_behavioural_params(name):
    """Different wire params may never alias one cache entry."""
    instance = _instance()
    canonical = build_mechanism(_spec(name, CANONICAL_SPECS[name]))
    variant = build_mechanism(_spec(name, VARIANT_SPECS[name]))
    assert canonical.cache_token(instance) != variant.cache_token(instance)


def test_tokens_distinct_across_wire_names():
    """No two wire names at canonical params share a token."""
    instance = _instance()
    tokens = {
        name: build_mechanism(_spec(name, params)).cache_token(instance)
        for name, params in CANONICAL_SPECS.items()
    }
    values = list(tokens.values())
    assert len(set(values)) == len(values)


def test_static_registry_matches_runtime_registry():
    """The dict C302 parses out of protocol.py IS the runtime registry."""
    import ast
    from pathlib import Path

    from repro.lint.framework import parse_file
    from repro.lint.rules_cache import ProtocolMechanismSyncRule
    import repro.service.protocol as protocol_module

    ctx = parse_file(Path(protocol_module.__file__))
    registry = ProtocolMechanismSyncRule._find_registry(ctx)
    assert registry is not None
    static_names = {
        key.value
        for key in registry.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }
    assert static_names == set(MECHANISM_BUILDERS)
