"""Tests for graph structural statistics."""

import pytest

from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    connected_components,
    degree_statistics,
    gini_coefficient,
    is_connected,
    structural_asymmetry,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_single_holder_near_one(self):
        g = gini_coefficient([0] * 99 + [100])
        assert g > 0.95

    def test_empty_is_zero(self):
        assert gini_coefficient([]) == 0.0

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3])
        b = gini_coefficient([10, 20, 30])
        assert a == pytest.approx(b)


class TestDegreeStatistics:
    def test_complete(self):
        stats = degree_statistics(complete_graph(5))
        assert stats.min_degree == stats.max_degree == 4
        assert stats.is_regular()
        assert stats.degree_variance == 0.0

    def test_star(self):
        stats = degree_statistics(star_graph(10))
        assert stats.max_degree == 9
        assert stats.min_degree == 1
        assert not stats.is_regular()
        assert stats.degree_gini > 0.3

    def test_empty(self):
        stats = degree_statistics(Graph(0))
        assert stats.num_vertices == 0
        assert stats.mean_degree == 0.0

    def test_mean_degree(self):
        stats = degree_statistics(path_graph(4))
        assert stats.mean_degree == pytest.approx(2 * 3 / 4)


class TestStructuralAsymmetry:
    def test_regular_graphs_zero(self):
        assert structural_asymmetry(cycle_graph(10)) == pytest.approx(0.0)
        assert structural_asymmetry(complete_graph(10)) == pytest.approx(0.0)

    def test_star_high(self):
        assert structural_asymmetry(star_graph(100)) > 0.4

    def test_ba_between(self):
        ba = structural_asymmetry(barabasi_albert_graph(200, 2, seed=0))
        assert 0.05 < ba < 0.7


class TestConnectivity:
    def test_connected_cases(self):
        assert is_connected(path_graph(5))
        assert is_connected(complete_graph(4))
        assert is_connected(Graph(1))
        assert is_connected(Graph(0))

    def test_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not is_connected(g)

    def test_isolated_vertex(self):
        g = Graph(3, [(0, 1)])
        assert not is_connected(g)

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_components_single(self):
        assert connected_components(complete_graph(3)) == [[0, 1, 2]]
