"""Tests for the performance-trajectory emitter (``benchmarks/trajectory.py``).

The emitter folds every ``BENCH_*.json`` snapshot into one longitudinal
``BENCH_trajectory.json`` keyed by stable bench names.  The contract
under test: labels are stable per (suite, case, size); re-emitting at
one commit is idempotent while other commits' points survive; and
corrupt or foreign files degrade to "skipped", never to a crash —
trajectory emission runs unconditionally in CI after the benchmark jobs.
"""

import importlib.util
import json
import pathlib

TRAJECTORY_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "trajectory.py"
)

spec = importlib.util.spec_from_file_location("bench_trajectory", TRAJECTORY_PATH)
trajectory = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trajectory)


def _write(bench_dir, name, records):
    (bench_dir / name).write_text(json.dumps(records))


def test_bench_labels_are_stable(tmp_path):
    _write(tmp_path, "BENCH_incremental.json", [
        {"case": "mc_churn", "n": 100000, "seconds": 1.5, "peak_rss_mib": 64.0},
    ])
    _write(tmp_path, "BENCH_micro.json", [
        {"op": "resolve", "seconds": 0.25},
        {"suite": "tails", "seconds": 0.5, "n": 4096},
    ])
    entries = trajectory.collect_entries(tmp_path)
    assert entries == {
        "incremental/mc_churn/n=100000": {"wall_s": 1.5, "peak_rss_mib": 64.0},
        "micro/resolve": {"wall_s": 0.25},
        "micro/tails/n=4096": {"wall_s": 0.5},
    }


def test_schema2_folds_attack_throughput(tmp_path):
    """Records carrying ``moves_per_s`` keep the throughput headline."""
    _write(tmp_path, "BENCH_attacks.json", [
        {
            "scenario": "misreport",
            "n": 20000,
            "seconds": 0.8,
            "moves_per_s": 55.0,
            "peak_rss_mib": 128.0,
        },
        {"scenario": "bool_rate", "seconds": 1.0, "moves_per_s": True},
    ])
    entries = trajectory.collect_entries(tmp_path)
    assert entries == {
        "attacks/misreport/n=20000": {
            "wall_s": 0.8,
            "peak_rss_mib": 128.0,
            "moves_per_s": 55.0,
        },
        "attacks/bool_rate": {"wall_s": 1.0},
    }
    trajectory.emit_trajectory(tmp_path, commit="dddd444")
    payload = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    assert payload["schema"] == 2
    point = payload["benches"]["attacks/misreport/n=20000"][0]
    assert point["moves_per_s"] == 55.0


def test_schema2_folds_lint_throughput(tmp_path):
    """Records carrying ``files_per_s`` keep the lint headline."""
    _write(tmp_path, "BENCH_lint.json", [
        {
            "case": "cold",
            "files": 107,
            "seconds": 2.6,
            "files_per_s": 41.0,
            "peak_rss_mib": 100.0,
        },
        {"case": "warm", "seconds": 0.01, "files_per_s": 10700.0},
    ])
    entries = trajectory.collect_entries(tmp_path)
    assert entries == {
        "lint/cold": {
            "wall_s": 2.6,
            "peak_rss_mib": 100.0,
            "files_per_s": 41.0,
        },
        "lint/warm": {"wall_s": 0.01, "files_per_s": 10700.0},
    }
    trajectory.emit_trajectory(tmp_path, commit="eeee555")
    payload = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    assert payload["schema"] == 2
    point = payload["benches"]["lint/cold"][0]
    assert point["files_per_s"] == 41.0


def test_committed_trajectory_covers_lint_bench():
    """The checked-in trajectory tracks self-lint throughput."""
    bench_dir = TRAJECTORY_PATH.parent
    payload = json.loads((bench_dir / "BENCH_trajectory.json").read_text())
    lint_series = [
        series
        for name, series in payload["benches"].items()
        if name.startswith("lint/")
    ]
    assert lint_series, "no lint/* series in the trajectory"
    assert all(
        "files_per_s" in point for series in lint_series for point in series
    )


def test_records_without_seconds_are_skipped(tmp_path):
    _write(tmp_path, "BENCH_micro.json", [
        {"op": "no_timing"},
        {"op": "bool_timing", "seconds": True},
        {"op": "timed", "seconds": 2.0},
    ])
    assert trajectory.collect_entries(tmp_path) == {
        "micro/timed": {"wall_s": 2.0}
    }


def test_emit_is_idempotent_per_commit(tmp_path):
    _write(tmp_path, "BENCH_micro.json", [{"op": "x", "seconds": 1.0}])
    trajectory.emit_trajectory(tmp_path, commit="aaaa111")
    trajectory.emit_trajectory(tmp_path, commit="aaaa111")
    payload = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
    assert payload["schema"] == trajectory.TRAJECTORY_SCHEMA
    series = payload["benches"]["micro/x"]
    assert series == [{"commit": "aaaa111", "wall_s": 1.0}]


def test_other_commits_points_are_preserved(tmp_path):
    _write(tmp_path, "BENCH_micro.json", [{"op": "x", "seconds": 1.0}])
    trajectory.emit_trajectory(tmp_path, commit="aaaa111")
    _write(tmp_path, "BENCH_micro.json", [{"op": "x", "seconds": 0.5}])
    benches = trajectory.emit_trajectory(tmp_path, commit="bbbb222")
    series = benches["micro/x"]
    assert [p["commit"] for p in series] == ["aaaa111", "bbbb222"]
    assert [p["wall_s"] for p in series] == [1.0, 0.5]
    # replacing one commit's point leaves the other commit's alone
    _write(tmp_path, "BENCH_micro.json", [{"op": "x", "seconds": 0.4}])
    benches = trajectory.emit_trajectory(tmp_path, commit="bbbb222")
    assert [p["wall_s"] for p in benches["micro/x"]] == [1.0, 0.4]


def test_corrupt_snapshots_and_trajectory_are_tolerated(tmp_path):
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    _write(tmp_path, "BENCH_scalar.json", {"seconds": 3.0})
    _write(tmp_path, "BENCH_micro.json", [{"op": "x", "seconds": 1.0}, "junk"])
    (tmp_path / "BENCH_trajectory.json").write_text("[]")
    benches = trajectory.emit_trajectory(tmp_path, commit="cccc333")
    assert benches == {"micro/x": [{"commit": "cccc333", "wall_s": 1.0}]}


def test_current_commit_outside_git(tmp_path):
    assert trajectory.current_commit(tmp_path) == "unknown"


def test_committed_trajectory_covers_incremental_bench():
    """The checked-in trajectory has the churn bench's headline series."""
    bench_dir = TRAJECTORY_PATH.parent
    payload = json.loads((bench_dir / "BENCH_trajectory.json").read_text())
    assert payload["schema"] == trajectory.TRAJECTORY_SCHEMA
    names = set(payload["benches"])
    assert "incremental/mc_churn/n=100000" in names


def test_committed_trajectory_covers_attack_bench():
    """The checked-in trajectory tracks attack-search throughput."""
    bench_dir = TRAJECTORY_PATH.parent
    payload = json.loads((bench_dir / "BENCH_trajectory.json").read_text())
    attack_series = [
        series
        for name, series in payload["benches"].items()
        if name.startswith("attacks/misreport")
    ]
    assert attack_series, "no attacks/misreport series in the trajectory"
    assert all(
        "moves_per_s" in point for series in attack_series for point in series
    )
