"""Property-based tests for power indices and serialisation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io as repro_io
from repro.analysis.power import (
    banzhaf_indices,
    dictator_index,
    forest_banzhaf,
    normalized_banzhaf,
    shapley_shubik_indices,
)
from repro.delegation.graph import SELF, DelegationGraph
from repro.graphs.graph import Graph

weight_lists = st.lists(st.integers(0, 8), min_size=1, max_size=8)


def _brute_banzhaf(weights):
    """Banzhaf by explicit subset enumeration (reference oracle)."""
    m = len(weights)
    total = sum(weights)
    if m == 0 or total == 0:
        return [0.0] * m
    quota = total / 2.0
    out = []
    for i, wi in enumerate(weights):
        others = [w for j, w in enumerate(weights) if j != i]
        pivotal = 0
        for mask in itertools.product((0, 1), repeat=len(others)):
            s = sum(w for w, bit in zip(others, mask) if bit)
            if s <= quota < s + wi:
                pivotal += 1
        out.append(pivotal / 2 ** len(others))
    return out


def _brute_shapley(weights):
    """Shapley–Shubik by explicit permutation enumeration."""
    m = len(weights)
    total = sum(weights)
    if m == 0 or total == 0:
        return [0.0] * m
    quota = total / 2.0
    pivotal = [0] * m
    count = 0
    for order in itertools.permutations(range(m)):
        count += 1
        acc = 0
        for player in order:
            if acc <= quota < acc + weights[player]:
                pivotal[player] += 1
                break
            acc += weights[player]
    return [p / count for p in pivotal]


class TestPowerProperties:
    @settings(deadline=None)
    @given(weight_lists)
    def test_banzhaf_in_unit_interval(self, weights):
        values = banzhaf_indices(weights)
        assert np.all(values >= 0) and np.all(values <= 1)

    @settings(deadline=None)
    @given(weight_lists)
    def test_banzhaf_monotone_in_weight(self, weights):
        # a strictly heavier player is at least as powerful
        values = banzhaf_indices(weights)
        order = np.argsort(weights)
        sorted_values = values[order]
        assert np.all(np.diff(sorted_values) >= -1e-12)

    @settings(deadline=None)
    @given(weight_lists)
    def test_shapley_efficiency(self, weights):
        values = shapley_shubik_indices(weights)
        if sum(weights) == 0:
            assert values.sum() == 0.0
        else:
            assert values.sum() == pytest.approx(1.0)

    @settings(deadline=None)
    @given(weight_lists)
    def test_shapley_symmetry(self, weights):
        values = shapley_shubik_indices(weights)
        by_weight = {}
        for w, v in zip(weights, values):
            by_weight.setdefault(w, []).append(v)
        for group in by_weight.values():
            assert max(group) - min(group) < 1e-9

    @settings(deadline=None)
    @given(weight_lists)
    def test_normalized_banzhaf_distribution(self, weights):
        values = normalized_banzhaf(weights)
        total = values.sum()
        assert total == pytest.approx(1.0) or total == 0.0

    @settings(deadline=None, max_examples=30)
    @given(weight_lists, st.integers(1, 5))
    def test_scaling_invariance(self, weights, factor):
        # multiplying all weights by a constant preserves the game
        base = banzhaf_indices(weights)
        scaled = banzhaf_indices([w * factor for w in weights])
        assert np.allclose(base, scaled, atol=1e-9)


class TestPowerAgainstBruteForce:
    """The subset-sum DPs pinned against explicit enumeration oracles."""

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=10))
    def test_banzhaf_matches_subset_enumeration(self, weights):
        dp = banzhaf_indices(weights)
        brute = _brute_banzhaf(weights)
        assert np.allclose(dp, brute, atol=1e-9)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=6))
    def test_shapley_matches_permutation_enumeration(self, weights):
        dp = shapley_shubik_indices(weights)
        brute = _brute_shapley(weights)
        assert np.allclose(dp, brute, atol=1e-9)


class TestFigure1StarDictatorship:
    """Figure 1's star: all leaves delegating to the hub makes it a dictator."""

    @pytest.mark.parametrize("n", [3, 9, 25])
    def test_star_hub_is_dictator(self, n):
        delegates = [SELF] + [0] * (n - 1)
        forest = DelegationGraph(delegates)
        assert dictator_index(forest) == pytest.approx(1.0)
        power = forest_banzhaf(forest)
        assert power[0] == pytest.approx(1.0)
        assert np.all(power[1:] == 0.0)

    def test_direct_voting_spreads_power(self):
        forest = DelegationGraph([SELF] * 9)
        assert dictator_index(forest) == pytest.approx(1.0 / 9.0)


@st.composite
def forests(draw):
    n = draw(st.integers(1, 15))
    delegates = []
    for i in range(n):
        choice = draw(st.integers(-1, i - 1)) if i else -1
        delegates.append(SELF if choice < 0 else choice)
    return DelegationGraph(delegates)


@st.composite
def graphs(draw):
    n = draw(st.integers(0, 12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True)) if possible else []
    return Graph(n, edges)


class TestSerializationProperties:
    @settings(deadline=None, max_examples=40)
    @given(graphs())
    def test_graph_roundtrip(self, graph):
        assert repro_io.loads(repro_io.dumps(graph)) == graph

    @settings(deadline=None, max_examples=40)
    @given(forests())
    def test_forest_roundtrip(self, forest):
        back = repro_io.loads(repro_io.dumps(forest))
        assert np.array_equal(back.delegates, forest.delegates)
        assert back.sink_weights() == forest.sink_weights()
