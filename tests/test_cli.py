"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "F1"])
        assert args.experiment == "F1"
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "T2", "--scale", "smoke", "--seed", "9"]
        )
        assert args.scale == "smoke"
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "T2", "--scale", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8577
        assert args.coalesce is True
        assert args.cache is False
        assert args.cache_max_entries is None

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--no-coalesce",
             "--max-queue", "64", "--cache", "--cache-max-entries", "100"]
        )
        assert args.port == 0 and args.jobs == 2
        assert args.coalesce is False
        assert args.max_queue == 64
        assert args.cache is True and args.cache_max_entries == 100


class TestCommands:
    def test_list_outputs_all_experiments(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for eid in ("F1", "T2", "X3", "A2"):
            assert eid in text

    def test_info(self):
        out = io.StringIO()
        assert main(["info"], out=out) == 0
        assert "repro" in out.getvalue()
        assert "registered experiments" in out.getvalue()

    def test_run_single_experiment(self):
        out = io.StringIO()
        code = main(["run", "F2", "--scale", "smoke", "--seed", "1"], out=out)
        assert code == 0
        assert "[F2]" in out.getvalue()
        assert "wall time" in out.getvalue()

    def test_run_unknown_experiment(self):
        out = io.StringIO()
        assert main(["run", "NOPE"], out=out) == 2

    def test_run_respects_precision(self):
        out = io.StringIO()
        main(["run", "F1", "--scale", "smoke", "--precision", "2"], out=out)
        assert "0.62" in out.getvalue()

    def test_info_reports_cache_stats(self, tmp_path):
        out = io.StringIO()
        store = tmp_path / "store"
        assert main(["info", "--cache-dir", str(store)], out=out) == 0
        assert f"estimate cache at {store}: 0 entries, 0 bytes" in out.getvalue()

    def test_failing_experiment_exits_nonzero_and_names_itself(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli_mod

        def explode(config):
            raise RuntimeError("grid point diverged")

        monkeypatch.setattr(cli_mod, "get_experiment", lambda eid: explode)
        out = io.StringIO()
        code = main(["run", "F1", "--scale", "smoke"], out=out)
        captured = capsys.readouterr()
        assert code == 1
        assert "experiment F1 failed" in captured.err
        assert "RuntimeError: grid point diverged" in captured.err
        assert "Traceback" not in captured.err

    def test_failing_experiment_does_not_stop_the_others(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli_mod

        real_get = cli_mod.get_experiment

        def get(eid):
            if eid == "F1":
                return lambda config: (_ for _ in ()).throw(ValueError("boom"))
            return real_get(eid)

        monkeypatch.setattr(cli_mod, "get_experiment", get)
        monkeypatch.setattr(
            cli_mod, "list_experiments", lambda: [("F1", "a"), ("F2", "b")]
        )
        out = io.StringIO()
        code = main(["run", "all", "--scale", "smoke"], out=out)
        captured = capsys.readouterr()
        assert code == 1
        assert "[F2]" in out.getvalue()  # F2 still ran
        assert "failed experiment(s): F1" in captured.err


class TestReportCommand:
    def test_writes_markdown(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "report.md"
        code = main(
            ["report", "F1", "F2", "--out", str(path), "--scale", "smoke",
             "--title", "Mini report"],
            out=out,
        )
        assert code == 0
        text = path.read_text()
        assert text.startswith("# Mini report")
        assert "## F1" in text and "## F2" in text
        assert "| n |" in text  # F1 table header

    def test_unknown_experiment_fails(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["report", "NOPE", "--out", str(tmp_path / "x.md")], out=out
        )
        assert code == 2


class TestAttackCommand:
    # exact engine, seed 7, rounds 64: the search rediscovers the
    # Figure 1 star dictatorship in one step, deterministically.
    FOUND = ["attack", "--engine", "exact", "--rounds", "64", "--seed", "7"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.scenario == "misreport"
        assert args.n == 25 and args.budget == 4
        assert args.rounds == 512 and args.engine == "mc"
        assert args.out is None and args.check is None

    def test_parser_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--scenario", "nope"])

    def test_star_violation_found(self):
        out = io.StringIO()
        assert main(self.FOUND, out=out) == 0
        text = out.getvalue()
        assert "step 0: misreport:v0->0.625" in text
        assert "candidate moves in" in text
        assert "certificate verifies (replayed bitwise from scratch)" in text

    def test_out_writes_verifiable_certificate(self, tmp_path):
        import json

        from repro.attacks import verify_certificate

        path = tmp_path / "cert.json"
        out = io.StringIO()
        assert main(self.FOUND + ["--out", str(path)], out=out) == 0
        assert f"wrote certificate to {path}" in out.getvalue()
        certificate = json.loads(path.read_text())
        assert verify_certificate(certificate).ok

        # The emitted file round-trips through --check as exit 0.
        check_out = io.StringIO()
        assert main(["attack", "--check", str(path)], out=check_out) == 0
        assert "certificate verifies" in check_out.getvalue()

    def test_check_rejects_tampered_certificate(self, tmp_path):
        import json

        path = tmp_path / "cert.json"
        assert main(self.FOUND + ["--out", str(path)], out=io.StringIO()) == 0
        certificate = json.loads(path.read_text())
        certificate["harm"] = certificate["harm"] + 1e-9
        path.write_text(json.dumps(certificate))
        out = io.StringIO()
        assert main(["attack", "--check", str(path)], out=out) == 1
        assert "REJECTED" in out.getvalue()

    def test_check_unreadable_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main(["attack", "--check", str(path)], out=io.StringIO()) == 2
        assert "cannot read certificate" in capsys.readouterr().err

    def test_no_violation_exits_1(self):
        out = io.StringIO()
        code = main(
            self.FOUND + ["--budget", "1", "--min-harm", "0.9"], out=out
        )
        assert code == 1
        assert "no violation" in out.getvalue()
