"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "F1"])
        assert args.experiment == "F1"
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "T2", "--scale", "smoke", "--seed", "9"]
        )
        assert args.scale == "smoke"
        assert args.seed == 9

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "T2", "--scale", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_outputs_all_experiments(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for eid in ("F1", "T2", "X3", "A2"):
            assert eid in text

    def test_info(self):
        out = io.StringIO()
        assert main(["info"], out=out) == 0
        assert "repro" in out.getvalue()
        assert "registered experiments" in out.getvalue()

    def test_run_single_experiment(self):
        out = io.StringIO()
        code = main(["run", "F2", "--scale", "smoke", "--seed", "1"], out=out)
        assert code == 0
        assert "[F2]" in out.getvalue()
        assert "wall time" in out.getvalue()

    def test_run_unknown_experiment(self):
        out = io.StringIO()
        assert main(["run", "NOPE"], out=out) == 2

    def test_run_respects_precision(self):
        out = io.StringIO()
        main(["run", "F1", "--scale", "smoke", "--precision", "2"], out=out)
        assert "0.62" in out.getvalue()


class TestReportCommand:
    def test_writes_markdown(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "report.md"
        code = main(
            ["report", "F1", "F2", "--out", str(path), "--scale", "smoke",
             "--title", "Mini report"],
            out=out,
        )
        assert code == 0
        text = path.read_text()
        assert text.startswith("# Mini report")
        assert "## F1" in text and "## F2" in text
        assert "| n |" in text  # F1 table header

    def test_unknown_experiment_fails(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["report", "NOPE", "--out", str(tmp_path / "x.md")], out=out
        )
        assert code == 2
