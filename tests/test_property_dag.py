"""Property-based tests for the weighted-majority DAG model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.voting.dag import DelegateWeights, WeightedDelegationDag


@st.composite
def random_dags(draw):
    """DAGs whose delegates always point to lower indices (acyclic)."""
    n = draw(st.integers(2, 12))
    choices = {}
    for voter in range(1, n):
        if not draw(st.booleans()):
            continue
        count = draw(st.integers(1, min(3, voter)))
        delegates = draw(
            st.lists(
                st.integers(0, voter - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.floats(0.5, 3.0, allow_nan=False),
                min_size=count,
                max_size=count,
            )
        )
        choices[voter] = DelegateWeights(tuple(delegates), tuple(weights))
    return WeightedDelegationDag(n, choices)


class TestDagProperties:
    @settings(deadline=None, max_examples=50)
    @given(random_dags(), st.integers(0, 10**6))
    def test_effective_votes_binary(self, dag, seed):
        p = np.full(dag.num_voters, 0.5)
        votes = dag.sample_effective_votes(p, rng=seed)
        assert set(np.unique(votes)) <= {0, 1}

    @settings(deadline=None, max_examples=50)
    @given(random_dags(), st.integers(0, 10**6))
    def test_unanimous_certainty_propagates(self, dag, seed):
        # all direct voters certain-correct -> everyone votes correctly
        p = np.ones(dag.num_voters)
        votes = dag.sample_effective_votes(p, rng=seed)
        assert np.all(votes == 1)

    @settings(deadline=None, max_examples=50)
    @given(random_dags(), st.integers(0, 10**6))
    def test_unanimous_wrongness_propagates(self, dag, seed):
        p = np.zeros(dag.num_voters)
        votes = dag.sample_effective_votes(p, rng=seed)
        assert np.all(votes == 0)

    @settings(deadline=None, max_examples=30)
    @given(random_dags())
    def test_structure_invariants(self, dag):
        n = dag.num_voters
        assert len(dag.direct_voters) + dag.num_delegators == n
        assert 0 <= dag.max_fan_in() <= n - 1
        for v in dag.direct_voters:
            assert dag.choice(v) is None

    @settings(deadline=None, max_examples=20)
    @given(random_dags(), st.integers(0, 10**6))
    def test_estimate_in_unit_interval(self, dag, seed):
        p = np.full(dag.num_voters, 0.6)
        est, lo, hi = dag.estimate_correct_probability(p, rounds=40, seed=seed)
        assert 0.0 <= lo <= est <= hi <= 1.0

    @settings(deadline=None, max_examples=30)
    @given(random_dags(), st.integers(0, 10**6))
    def test_reproducible_with_seed(self, dag, seed):
        p = np.full(dag.num_voters, 0.5)
        a = dag.sample_effective_votes(p, rng=seed)
        b = dag.sample_effective_votes(p, rng=seed)
        assert np.array_equal(a, b)
