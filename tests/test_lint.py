"""Tests for the reprolint static-analysis subsystem.

Three layers: the fixture corpus (every known-bad file trips exactly
the rule its name advertises, every known-good file lints clean), the
filtering machinery (pragmas, ``--select``/``--ignore``, unknown ids),
and the CLI surface (exit codes, text and JSON reports).  The
self-hosted check — ``repro lint src/`` finds nothing at HEAD — is the
repo's own gate and lives here too.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    RULES,
    RULE_MODULES,
    UnknownRuleError,
    lint_paths,
    rule_catalogue,
)
from repro.lint.framework import known_rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

BAD_EXPECTATIONS = {
    "a501.py": "A501",
    "r101.py": "R101",
    "r102.py": "R102",
    "r103.py": "R103",
    "d201.py": "D201",
    "d202.py": "D202",
    "k401.py": "K401",
    "k402.py": "K402",
    "k403.py": "K403",
    "c301.py": "C301",
    "c303.py": "C303",
    "f601.py": "F601",
    "d203.py": "D203",
    "k404.py": "K404",
    "s501.py": "S501",
    "x000.py": "X000",
    "x001.py": "X001",
}


def _rules(findings):
    return {f.rule for f in findings}


class TestBadFixtures:
    @pytest.mark.parametrize("filename", sorted(BAD_EXPECTATIONS))
    def test_fixture_trips_exactly_its_rule(self, filename):
        findings = lint_paths([FIXTURES / "bad" / filename])
        assert findings, f"{filename} produced no findings"
        assert _rules(findings) == {BAD_EXPECTATIONS[filename]}

    def test_every_bad_fixture_has_an_expectation(self):
        present = {p.name for p in (FIXTURES / "bad").glob("*.py")}
        assert present == set(BAD_EXPECTATIONS)

    def test_c302_project_fixture(self):
        findings = lint_paths([FIXTURES / "bad_c302"])
        assert _rules(findings) == {"C302"}
        messages = " ".join(f.message for f in findings)
        assert "_build_orphan" in messages  # unregistered builder
        assert "PhantomMech" in messages  # unknown class construction
        assert "_build_missing" in messages  # dangling registry value

    def test_findings_carry_location_and_severity(self):
        finding = lint_paths([FIXTURES / "bad" / "r101.py"])[0]
        assert finding.path.endswith("r101.py")
        assert finding.line > 0 and finding.col > 0
        assert finding.severity == "error"
        assert f"{finding.line}:{finding.col}: R101" in finding.format()


class TestGoodFixtures:
    def test_good_dir_is_clean(self):
        assert lint_paths([FIXTURES / "good"]) == []

    def test_good_c302_project_is_clean(self):
        assert lint_paths([FIXTURES / "good_c302"]) == []


class TestSelfHosted:
    def test_src_is_clean_at_head(self):
        assert lint_paths([REPO_ROOT / "src"]) == []


class TestSuppression:
    def _lint_source(self, tmp_path, source, **kwargs):
        path = tmp_path / "snippet.py"
        path.write_text(source)
        return lint_paths([path], **kwargs)

    def test_same_line_pragma_silences(self, tmp_path):
        findings = self._lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # reprolint: disable=R101\n",
        )
        assert findings == []

    def test_line_above_pragma_silences(self, tmp_path):
        findings = self._lint_source(
            tmp_path,
            "import numpy as np\n"
            "# reprolint: disable=R101\n"
            "rng = np.random.default_rng()\n",
        )
        assert findings == []

    def test_pragma_scopes_to_named_rule_only(self, tmp_path):
        findings = self._lint_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.default_rng()  # reprolint: disable=R102\n",
        )
        assert _rules(findings) == {"R101"}

    def test_multi_id_pragma(self, tmp_path):
        findings = self._lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(seed):\n"
            "    # reprolint: disable=R101, R103\n"
            "    return np.random.default_rng() or seed + 1\n",
        )
        assert findings == []

    def test_unknown_id_in_pragma_is_a_finding(self, tmp_path):
        findings = self._lint_source(
            tmp_path, "x = 1  # reprolint: disable=R999\n"
        )
        assert _rules(findings) == {"X001"}
        assert "R999" in findings[0].message

    def test_pragma_on_unrelated_line_does_not_silence(self, tmp_path):
        findings = self._lint_source(
            tmp_path,
            "import numpy as np\n"
            "# reprolint: disable=R101\n"
            "x = 1\n"
            "rng = np.random.default_rng()\n",
        )
        assert _rules(findings) == {"R101"}


class TestSelectIgnore:
    def test_select_keeps_only_named_rules(self):
        findings = lint_paths([FIXTURES / "bad"], select=["R101"])
        assert findings and _rules(findings) == {"R101"}

    def test_ignore_drops_named_rules(self):
        findings = lint_paths([FIXTURES / "bad"], ignore=["R101", "X000"])
        rules = _rules(findings)
        assert "R101" not in rules and "X000" not in rules
        assert rules  # everything else still reported

    def test_ignore_applies_after_select(self):
        findings = lint_paths(
            [FIXTURES / "bad"], select=["R101"], ignore=["R101"]
        )
        assert findings == []

    def test_unknown_select_id_is_a_hard_error(self):
        with pytest.raises(UnknownRuleError, match="BOGUS"):
            lint_paths([FIXTURES / "bad"], select=["BOGUS"])

    def test_unknown_ignore_id_is_a_hard_error(self):
        with pytest.raises(UnknownRuleError, match="NOPE"):
            lint_paths([FIXTURES / "bad"], ignore=["NOPE"])

    def test_pseudo_ids_are_selectable(self):
        findings = lint_paths([FIXTURES / "bad"], select=["X000"])
        assert _rules(findings) == {"X000"}


class TestRegistry:
    def test_catalogue_covers_all_registered_rules(self):
        catalogue = {entry["id"]: entry for entry in rule_catalogue()}
        assert set(catalogue) == set(RULES)
        for entry in catalogue.values():
            assert entry["name"] and entry["description"]

    def test_known_ids_include_pseudo_rules(self):
        ids = known_rule_ids()
        assert {"X000", "X001"} <= ids
        assert set(RULES) <= ids

    def test_rule_modules_are_auto_discovered(self):
        # pkgutil discovery must have picked up every rules_* module in
        # the package directory, and each must register at least one
        # rule under an id present in the live registry.
        import importlib

        package_dir = Path(
            importlib.import_module("repro.lint").__file__
        ).parent
        on_disk = {
            p.stem for p in package_dir.glob("rules_*.py")
        }
        assert set(RULE_MODULES) == on_disk and on_disk
        registered_by = {}
        for rule_cls in RULES.values():
            registered_by.setdefault(rule_cls.__module__, []).append(
                rule_cls.id
            )
        for name in RULE_MODULES:
            ids = registered_by.get(f"repro.lint.{name}", [])
            assert ids, f"{name} registers no rules"


class TestCli:
    def _run(self, *argv):
        out = io.StringIO()
        code = main(["lint", *argv], out=out)
        return code, out.getvalue()

    def test_clean_path_exits_zero(self):
        code, text = self._run(str(FIXTURES / "good"))
        assert code == 0
        assert "0 findings" in text

    def test_findings_exit_one(self):
        code, text = self._run(str(FIXTURES / "bad" / "r101.py"))
        assert code == 1
        assert "R101" in text

    def test_json_report(self):
        code, text = self._run(str(FIXTURES / "bad" / "r101.py"), "--format=json")
        assert code == 1
        payload = json.loads(text)
        assert payload["schema"] == 2
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"R101": 2}
        assert all(f["rule"] == "R101" for f in payload["findings"])

    def test_select_filter(self):
        code, text = self._run(str(FIXTURES / "bad"), "--select", "R103")
        assert code == 1
        assert "R103" in text and "R101" not in text

    def test_ignore_filter(self):
        code, text = self._run(
            str(FIXTURES / "bad" / "r101.py"), "--ignore", "R101"
        )
        assert code == 0

    def test_unknown_rule_id_exits_two(self, capsys):
        code, _ = self._run(str(FIXTURES / "good"), "--select", "BOGUS")
        assert code == 2
        assert "BOGUS" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code, _ = self._run("does/not/exist")
        assert code == 2
        assert "no such path" in capsys.readouterr().err
