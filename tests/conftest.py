"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ProblemInstance,
    complete_graph,
    linear_competencies,
    star_graph,
)


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_complete_instance():
    """K_10 with evenly spaced competencies, alpha small."""
    n = 10
    return ProblemInstance(
        complete_graph(n), linear_competencies(n, 0.2, 0.8), alpha=0.05
    )


@pytest.fixture
def figure1_instance():
    """The Figure 1 star: hub 5/8 at vertex 0, leaves 9/16."""
    n = 33
    p = np.full(n, 9.0 / 16.0)
    p[0] = 5.0 / 8.0
    return ProblemInstance(star_graph(n), p, alpha=0.01)
