"""End-to-end tests for the consistent-hash sharded front-end.

The load-bearing test is the same contract the single server pins,
lifted to a fleet: a response served through the sharded front-end is
*bit-identical* to the direct library call, for every op, under
concurrent mixed traffic, at any shard count.  The front-end only ever
relays worker bytes, so the contract should hold by construction — the
tests are here to keep it that way.

Also pinned: `SweepRequest.point_routing_keys()` must equal the
per-point `routing_key()`s byte for byte (the fanout fast path hashes
the instance once; drifting from the slow path would silently split a
point's duplicates across shards).
"""

from __future__ import annotations

import concurrent.futures
import json
import urllib.request

import pytest

from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.io import instance_to_dict
from repro.service import (
    BackgroundShardedServer,
    HashRing,
    ServerConfig,
    ServiceClient,
    ServiceError,
    mechanism_spec,
)
from repro.service.protocol import SweepRequest, build_mechanism
from repro.voting.montecarlo import (
    estimate_ballot_probability,
    estimate_correct_probability,
    estimate_gain,
)
from repro.voting.outcome import TiePolicy

MECH_SPEC = mechanism_spec("approval_threshold", threshold=2)


def _instance(n: int = 24, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


def _direct(seed: int, rounds: int = 60):
    return estimate_correct_probability(
        _instance(), build_mechanism(MECH_SPEC),
        rounds=rounds, seed=seed, engine="batch", n_jobs=1,
    )


@pytest.fixture(scope="module")
def sharded():
    config = ServerConfig(port=0, workers=1)
    with BackgroundShardedServer(config, shards=2) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(sharded):
    return ServiceClient(port=sharded.port)


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"estimate:{i:064x}" for i in range(200)]
        a, b = HashRing(4), HashRing(4)
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_all_shards_reachable(self):
        ring = HashRing(4)
        hit = {ring.shard_for(f"key-{i}") for i in range(500)}
        assert hit == {0, 1, 2, 3}

    def test_shards_in_range(self):
        ring = HashRing(3, vnodes=8)
        for i in range(100):
            assert 0 <= ring.shard_for(f"anything-{i}") < 3

    def test_consistent_hashing_limits_reshuffle(self):
        # Growing the fleet 4 -> 5 must move roughly 1/5 of the keys,
        # not rehash the world (the point of a ring over `hash % n`).
        keys = [f"key-{i}" for i in range(1000)]
        before, after = HashRing(4), HashRing(5)
        moved = sum(
            before.shard_for(k) != after.shard_for(k) for k in keys
        )
        assert moved < 500  # modular rehash would move ~800

    def test_rejects_bad_topology(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestRoutingKeys:
    def _sweep(self, seeds=(1, 2, 3)):
        return SweepRequest(
            point_op="estimate",
            instance=_instance(),
            mechanism=build_mechanism(MECH_SPEC),
            rounds=50,
            seeds=tuple(seeds),
            tie_policy=TiePolicy.INCORRECT,
            exact_conditional=True,
            engine="batch",
            target_se=None,
            max_rounds=None,
        )

    def test_point_routing_keys_match_per_point_slow_path(self):
        # The fanout fast path (instance hashed once) must stay byte-equal
        # to EstimateRequest.routing_key, or duplicates stop colocating.
        sweep = self._sweep(seeds=(0, 7, 7, 42))
        fast = sweep.point_routing_keys()
        slow = tuple(
            sweep.point(i).routing_key() for i in range(len(sweep.seeds))
        )
        assert fast == slow

    def test_routing_keys_content_addressed(self):
        # Two independently built identical requests share keys; a seed
        # change produces a different key.
        a = self._sweep().point_routing_keys()
        b = self._sweep().point_routing_keys()
        assert a == b
        assert len(set(a)) == len(a)
        assert self._sweep(seeds=(9,)).point_routing_keys()[0] not in a


class TestShardedDeterminism:
    """Sharded == direct, bitwise, under concurrent mixed traffic."""

    def test_estimate_matches_direct(self, client):
        assert client.estimate(
            _instance(), MECH_SPEC, rounds=60, seed=7
        ) == _direct(7)

    def test_concurrent_mixed_traffic_matches_direct(self, client):
        instance_dict = instance_to_dict(_instance())
        direct_estimates = {seed: _direct(seed) for seed in range(6)}
        direct_gain = estimate_gain(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=40, seed=3, engine="batch", n_jobs=1,
        )
        direct_ballot = estimate_ballot_probability(
            _instance(), build_mechanism(MECH_SPEC),
            rounds=40, seed=3, engine="batch", n_jobs=1,
        )

        def one_estimate(seed):
            return client.estimate(
                instance_dict, MECH_SPEC, rounds=60, seed=seed
            )

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            estimate_futures = {
                seed: [pool.submit(one_estimate, seed) for _ in range(3)]
                for seed in range(6)
            }
            gain_future = pool.submit(
                client.gain, instance_dict, MECH_SPEC, rounds=40, seed=3
            )
            ballot_future = pool.submit(
                client.ballot, instance_dict, MECH_SPEC, rounds=40, seed=3
            )
            for seed, futures in estimate_futures.items():
                for future in futures:
                    assert future.result(60) == direct_estimates[seed]
            assert gain_future.result(60) == direct_gain
            assert ballot_future.result(60) == direct_ballot

    def test_sweep_through_front_end_matches_direct(self, client):
        seeds = [0, 1, 2, 3, 4, 5, 6, 7]
        served = client.sweep(
            _instance(), MECH_SPEC, seeds=seeds, rounds=60
        )
        assert served == [_direct(seed) for seed in seeds]

    def test_iter_sweep_streams_every_index_once(self, client):
        seeds = [11, 22, 33, 44, 11]  # duplicate seed -> duplicate point
        seen = dict(
            client.iter_sweep(_instance(), MECH_SPEC, seeds=seeds, rounds=60)
        )
        assert sorted(seen) == list(range(len(seeds)))
        for i, seed in enumerate(seeds):
            assert seen[i] == _direct(seed)
        assert seen[0] == seen[4]  # same seed, same bits

    def test_repeat_requests_identical(self, client):
        first = client.estimate(_instance(), MECH_SPEC, rounds=50, seed=17)
        second = client.estimate(_instance(), MECH_SPEC, rounds=50, seed=17)
        assert first == second


class TestShardedOps:
    def test_healthz_reports_fleet(self, sharded):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{sharded.port}/healthz", timeout=10
        ) as response:
            data = json.loads(response.read().decode())
        assert data["ok"] is True
        assert data["status"] == "serving"
        assert data["shards"] == {"count": 2, "alive": 2}

    def test_metrics_expose_topology_and_routing(self, client):
        # Distinct seeds spread over the ring; with 16 of them both
        # shards statistically get traffic (pinned by the ring, so this
        # is deterministic, not flaky).
        for seed in range(16):
            client.estimate(_instance(), MECH_SPEC, rounds=20, seed=seed)
        metrics = client.metrics()
        sharding = metrics["sharding"]
        assert sharding["shards"] == 2
        assert len(sharding["workers"]) == 2
        assert all(w["alive"] for w in sharding["workers"])
        assert len(sharding["per_shard"]) == 2
        routed = metrics["routed"]
        assert set(routed) == {"0", "1"}
        assert sum(routed.values()) >= 16
        # Front-end routing counts and worker arrival counts agree.
        fanned = sum(
            shard["requests"].get("estimate", 0)
            for shard in sharding["per_shard"]
        )
        assert fanned >= 16

    def test_same_key_routes_to_same_shard(self, client):
        # Duplicate requests colocate: one shard owns seed 99's key.
        before = client.metrics()["routed"]
        for _ in range(4):
            client.estimate(_instance(), MECH_SPEC, rounds=20, seed=99)
        after = client.metrics()["routed"]
        grew = [
            shard for shard in after
            if after[shard] - before.get(shard, 0) > 0
        ]
        assert len(grew) == 1

    def test_typed_errors_relay_through_front_end(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(
                _instance(), {"name": "mind_reader", "params": {}}, rounds=10
            )
        assert excinfo.value.code == "bad_request"
        assert "mind_reader" in excinfo.value.message
        client.healthz()  # still serving

    def test_unknown_route_is_local_404(self, sharded):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", sharded.port, timeout=10)
        try:
            conn.request("POST", "/v2/estimate", body=b"{}")
            response = conn.getresponse()
            data = json.loads(response.read().decode())
        finally:
            conn.close()
        assert response.status == 404
        assert data["error"]["code"] == "not_found"
