"""Tests for JSON serialisation."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.experiments.base import ExperimentResult
from repro.graphs.generators import complete_graph, erdos_renyi_graph
from repro.graphs.graph import Graph


class TestGraphRoundtrip:
    def test_roundtrip(self):
        g = erdos_renyi_graph(15, 0.3, seed=0)
        assert repro_io.loads(repro_io.dumps(g)) == g

    def test_empty_graph(self):
        assert repro_io.loads(repro_io.dumps(Graph(0))) == Graph(0)

    def test_type_tag(self):
        import json

        data = json.loads(repro_io.dumps(Graph(2, [(0, 1)])))
        assert data["type"] == "graph"
        assert data["version"] == repro_io.FORMAT_VERSION


class TestInstanceRoundtrip:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        inst = ProblemInstance(
            complete_graph(8), rng.uniform(0.1, 0.9, 8), alpha=0.07
        )
        back = repro_io.loads(repro_io.dumps(inst))
        assert back.graph == inst.graph
        assert np.allclose(back.competencies, inst.competencies)
        assert back.alpha == inst.alpha


class TestForestRoundtrip:
    def test_roundtrip(self):
        forest = DelegationGraph([2, 2, SELF, SELF, 3])
        back = repro_io.loads(repro_io.dumps(forest))
        assert np.array_equal(back.delegates, forest.delegates)
        assert back.sinks == forest.sinks


class TestResultRoundtrip:
    def test_roundtrip(self):
        result = ExperimentResult(
            experiment_id="T9",
            title="demo",
            claim="it works",
            headers=["a", "b"],
            rows=[[1, 2.5], ["x", True]],
            observations=["fine"],
            seed=3,
            scale="smoke",
        )
        back = repro_io.loads(repro_io.dumps(result))
        assert back.experiment_id == "T9"
        assert back.rows == [[1, 2.5], ["x", True]]
        assert back.observations == ["fine"]
        assert back.scale == "smoke"


class TestFileIO:
    def test_save_load(self, tmp_path):
        g = complete_graph(4)
        path = tmp_path / "graph.json"
        repro_io.save(g, str(path))
        assert repro_io.load(str(path)) == g

    def test_indentation_readable(self, tmp_path):
        path = tmp_path / "g.json"
        repro_io.save(complete_graph(3), str(path))
        assert "\n" in path.read_text()


class TestErrors:
    def test_unknown_type_dump(self):
        with pytest.raises(TypeError):
            repro_io.dumps(42)

    def test_unknown_type_load(self):
        with pytest.raises(ValueError, match="unknown serialised type"):
            repro_io.loads('{"type": "alien", "version": 1}')

    def test_non_object_load(self):
        with pytest.raises(ValueError):
            repro_io.loads("[1, 2, 3]")

    def test_wrong_kind_nested(self):
        g = repro_io.dumps(complete_graph(2))
        with pytest.raises(ValueError, match="expected serialised"):
            repro_io.instance_from_dict(__import__("json").loads(g))

    def test_version_mismatch(self):
        with pytest.raises(ValueError, match="version"):
            repro_io.loads(
                '{"type": "graph", "version": 99, "num_vertices": 1, "edges": []}'
            )
