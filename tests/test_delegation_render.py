"""Tests for ASCII forest rendering."""

import pytest

from repro.delegation.graph import SELF, DelegationGraph
from repro.delegation.render import render_forest, render_summary


class TestRenderForest:
    def test_direct_voting_all_roots(self):
        forest = DelegationGraph.direct(3)
        out = render_forest(forest)
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(line.startswith("v") for line in lines)

    def test_tree_structure_markers(self):
        # 1 -> 0, 2 -> 0, 3 votes
        forest = DelegationGraph([SELF, 0, 0, SELF])
        out = render_forest(forest)
        assert "├── v2" in out
        assert "└── v3" in out
        assert "v4" in out

    def test_chain_indentation(self):
        forest = DelegationGraph([1, 2, SELF])
        out = render_forest(forest)
        lines = out.splitlines()
        assert lines[0].startswith("v3")
        assert lines[1].startswith("└── v2")
        assert lines[2].startswith("    └── v1")

    def test_competencies_shown(self):
        forest = DelegationGraph([1, SELF])
        out = render_forest(forest, competencies=[0.25, 0.75])
        assert "p=0.75" in out
        assert "p=0.25" in out

    def test_weight_only_on_sinks(self):
        forest = DelegationGraph([1, SELF])
        out = render_forest(forest)
        lines = out.splitlines()
        assert "w=2" in lines[0]
        assert "w=" not in lines[1]

    def test_zero_based_labels(self):
        forest = DelegationGraph.direct(2)
        out = render_forest(forest, one_based=False)
        assert "v0" in out and "v1" in out

    def test_every_voter_appears_once(self):
        forest = DelegationGraph([2, 2, SELF, SELF, 3])
        out = render_forest(forest)
        for v in range(1, 6):
            assert out.count(f"v{v} ") + out.count(f"v{v}\n") + (
                1 if out.endswith(f"v{v}") else 0
            ) >= 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_forest(DelegationGraph.direct(2), competencies=[0.5])

    def test_empty_forest(self):
        assert render_forest(DelegationGraph([])) == ""


class TestRenderSummary:
    def test_contents(self):
        forest = DelegationGraph([1, 2, SELF, SELF])
        out = render_summary(forest)
        assert "4 voters" in out
        assert "2 sinks" in out
        assert "max weight 3" in out
        assert "max depth 2" in out
