"""Property-based tests for delegation graphs and mechanisms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.delegation.metrics import weight_profile
from repro.graphs.generators import complete_graph, erdos_renyi_graph
from repro.mechanisms.threshold import ApprovalThreshold


@st.composite
def acyclic_delegations(draw):
    """Delegation arrays where voters only point to lower indices.

    Pointing strictly downward guarantees acyclicity, matching the
    approval structure (delegate to strictly more competent = earlier in
    some fixed order).
    """
    n = draw(st.integers(1, 40))
    delegates = []
    for i in range(n):
        if i == 0:
            delegates.append(SELF)
        else:
            choice = draw(st.integers(-1, i - 1))
            delegates.append(SELF if choice < 0 else choice)
    return delegates


class TestDelegationGraphProperties:
    @given(acyclic_delegations())
    def test_weights_sum_to_n(self, delegates):
        forest = DelegationGraph(delegates)
        assert sum(forest.sink_weights().values()) == len(delegates)

    @given(acyclic_delegations())
    def test_sink_of_is_sink(self, delegates):
        forest = DelegationGraph(delegates)
        sinks = set(forest.sinks)
        for v in range(len(delegates)):
            assert forest.sink_of(v) in sinks

    @given(acyclic_delegations())
    def test_sinks_have_no_delegate(self, delegates):
        forest = DelegationGraph(delegates)
        for s in forest.sinks:
            assert forest.delegates[s] == SELF

    @given(acyclic_delegations())
    def test_delegators_plus_sinks_is_n(self, delegates):
        forest = DelegationGraph(delegates)
        assert forest.num_delegators + forest.num_sinks == forest.num_voters

    @given(acyclic_delegations())
    def test_max_weight_bounds(self, delegates):
        forest = DelegationGraph(delegates)
        n = forest.num_voters
        assert 1 <= forest.max_weight() <= n

    @given(acyclic_delegations())
    def test_depth_zero_iff_sink(self, delegates):
        forest = DelegationGraph(delegates)
        for v in range(forest.num_voters):
            if v in forest.sinks:
                assert forest.depth(v) == 0
            else:
                assert forest.depth(v) >= 1

    @given(acyclic_delegations())
    def test_effective_voters_at_most_sinks(self, delegates):
        forest = DelegationGraph(delegates)
        profile = weight_profile(forest)
        assert profile.effective_num_voters <= profile.num_sinks + 1e-9


@st.composite
def random_instances(draw):
    n = draw(st.integers(3, 25))
    seed = draw(st.integers(0, 10**6))
    dense = draw(st.booleans())
    rng = np.random.default_rng(seed)
    graph = complete_graph(n) if dense else erdos_renyi_graph(n, 0.4, seed=seed)
    p = rng.uniform(0.05, 0.95, n)
    alpha = draw(st.sampled_from([0.01, 0.05, 0.15]))
    return ProblemInstance(graph, p, alpha=alpha)


class TestMechanismProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_instances(), st.integers(0, 5), st.integers(0, 10**6))
    def test_threshold_mechanism_invariants(self, instance, threshold, seed):
        mech = ApprovalThreshold(threshold)
        forest = mech.sample_delegations(instance, seed)
        # resolves without cycles, weights conserve votes
        assert sum(forest.sink_weights().values()) == instance.num_voters
        # every delegation strictly increases competency by >= alpha
        for v in range(instance.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert (
                    instance.competencies[t]
                    >= instance.competencies[v] + instance.alpha - 1e-12
                )
                assert instance.graph.has_edge(v, t)

    @settings(max_examples=20, deadline=None)
    @given(random_instances(), st.integers(0, 10**6))
    def test_depth_bounded_by_competency_levels(self, instance, seed):
        import math

        mech = ApprovalThreshold(1)
        forest = mech.sample_delegations(instance, seed)
        assert forest.max_depth() <= math.ceil(1.0 / instance.alpha)
