"""Tests for the precomputed ApprovalStructure fast path."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.core.structure import ApprovalStructure
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


def brute_approved(inst, v):
    return set(inst.approved_neighbors(v))


class TestCompleteBranch:
    @pytest.fixture
    def inst(self):
        rng = np.random.default_rng(3)
        return ProblemInstance(
            complete_graph(30), rng.uniform(0.2, 0.8, 30), alpha=0.07
        )

    def test_counts(self, inst):
        s = ApprovalStructure(inst)
        for v in range(30):
            assert s.approved_count(v) == len(brute_approved(inst, v))

    def test_members(self, inst):
        s = ApprovalStructure(inst)
        for v in range(30):
            assert set(s.approved_neighbors(v)) == brute_approved(inst, v)

    def test_sample_in_approved(self, inst):
        s = ApprovalStructure(inst)
        rng = np.random.default_rng(0)
        for v in range(30):
            if s.approved_count(v):
                for _ in range(5):
                    assert s.sample_approved(v, rng) in brute_approved(inst, v)

    def test_sample_uniform(self, inst):
        s = ApprovalStructure(inst)
        rng = np.random.default_rng(1)
        v = 0  # lowest-ish competency: many approved
        approved = brute_approved(inst, v)
        counts = {a: 0 for a in approved}
        trials = 4000
        for _ in range(trials):
            counts[s.sample_approved(v, rng)] += 1
        expected = trials / len(approved)
        for c in counts.values():
            assert abs(c - expected) < 5 * np.sqrt(expected)

    def test_sample_empty_raises(self, inst):
        s = ApprovalStructure(inst)
        best = int(np.argmax(inst.competencies))
        with pytest.raises(ValueError, match="no approved"):
            s.sample_approved(best, np.random.default_rng(0))


class TestGeneralBranch:
    @pytest.fixture
    def inst(self):
        rng = np.random.default_rng(5)
        g = erdos_renyi_graph(40, 0.2, seed=7)
        return ProblemInstance(g, rng.uniform(0.1, 0.9, 40), alpha=0.05)

    def test_counts_and_members(self, inst):
        s = ApprovalStructure(inst)
        for v in range(inst.num_voters):
            assert s.approved_count(v) == len(brute_approved(inst, v))
            assert set(s.approved_neighbors(v)) == brute_approved(inst, v)

    def test_segments_sorted_by_competency(self, inst):
        s = ApprovalStructure(inst)
        p = inst.competencies
        for v in range(inst.num_voters):
            members = s.approved_neighbors(v)
            comps = [p[m] for m in members]
            assert comps == sorted(comps)

    def test_sample_many_matches_single(self, inst):
        s = ApprovalStructure(inst)
        voters = np.array(
            [v for v in range(inst.num_voters) if s.approved_count(v) > 0]
        )
        out = s.sample_approved_many(voters, np.random.default_rng(0))
        for v, target in zip(voters, out):
            assert int(target) in brute_approved(inst, int(v))

    def test_sample_many_rejects_empty(self, inst):
        s = ApprovalStructure(inst)
        empty = [v for v in range(inst.num_voters) if s.approved_count(v) == 0]
        if empty:
            with pytest.raises(ValueError):
                s.sample_approved_many(
                    np.array([empty[0]]), np.random.default_rng(0)
                )


class TestBestOfK:
    @pytest.fixture
    def inst(self):
        return ProblemInstance(
            star_graph(6), [0.1, 0.5, 0.6, 0.7, 0.8, 0.9], alpha=0.05
        )

    def test_k1_is_uniform_member(self, inst):
        s = ApprovalStructure(inst)
        out = s.sample_best_of_k_many(
            np.array([0]), 1, np.random.default_rng(0)
        )
        assert int(out[0]) in brute_approved(inst, 0)

    def test_large_k_concentrates_on_best(self, inst):
        s = ApprovalStructure(inst)
        out = s.sample_best_of_k_many(
            np.array([0] * 200), 50, np.random.default_rng(0)
        )
        # With k=50 over 5 approved, essentially always the best (voter 5).
        assert np.mean(out == 5) > 0.95

    def test_k_rejected(self, inst):
        s = ApprovalStructure(inst)
        with pytest.raises(ValueError):
            s.sample_best_of_k_many(np.array([0]), 0, np.random.default_rng(0))

    def test_best_of_k_stochastically_dominates(self):
        rng = np.random.default_rng(11)
        inst = ProblemInstance(
            complete_graph(20), rng.uniform(0.2, 0.8, 20), alpha=0.03
        )
        s = ApprovalStructure(inst)
        p = inst.competencies
        v = int(np.argmin(p))
        gen = np.random.default_rng(0)
        k1 = s.sample_best_of_k_many(np.array([v] * 500), 1, gen)
        k4 = s.sample_best_of_k_many(np.array([v] * 500), 4, gen)
        assert p[k4].mean() > p[k1].mean()


class TestPathGraphEdgeCases:
    def test_isolated_in_path(self):
        inst = ProblemInstance(path_graph(1), [0.5], alpha=0.1)
        s = ApprovalStructure(inst)
        assert s.approved_count(0) == 0
        assert s.approved_neighbors(0) == ()

    def test_two_vertex_graph_not_complete_branch(self):
        # K_2 is complete; verify both branches agree on it via counts.
        inst = ProblemInstance(complete_graph(2), [0.3, 0.7], alpha=0.1)
        s = ApprovalStructure(inst)
        assert s.approved_count(0) == 1
        assert s.approved_count(1) == 0
