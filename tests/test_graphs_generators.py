"""Tests for graph generators."""

import pytest

from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    connected_caveman_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_bounded_degree_graph,
    random_min_degree_graph,
    random_regular_graph,
    star_graph,
    star_of_cliques_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import is_connected


class TestCompleteGraph:
    def test_edge_count(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert g.is_complete()

    def test_trivial_sizes(self):
        assert complete_graph(0).num_edges == 0
        assert complete_graph(1).num_edges == 0
        assert complete_graph(2).num_edges == 1


class TestStarGraph:
    def test_structure(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert all(g.degree(v) == 1 for v in range(1, 5))

    def test_custom_centre(self):
        g = star_graph(5, centre=2)
        assert g.degree(2) == 4

    def test_single_vertex(self):
        assert star_graph(1).num_edges == 0

    def test_rejects_bad_centre(self):
        with pytest.raises(ValueError):
            star_graph(5, centre=5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            star_graph(0)


class TestCyclePathGrid:
    def test_cycle_regular(self):
        g = cycle_graph(7)
        assert g.is_regular()
        assert g.degree(0) == 2
        assert g.num_edges == 7

    def test_cycle_min_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path_degrees(self):
        g = path_graph(5)
        assert g.degree(0) == 1
        assert g.degree(2) == 2
        assert g.num_edges == 4

    def test_grid_shape(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.max_degree() == 4 or g.max_degree() == 3  # interior exists for 3x4? 3x4 has interior
        assert is_connected(g)

    def test_grid_1x1(self):
        assert grid_graph(1, 1).num_vertices == 1


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (50, 4), (100, 16), (64, 63)])
    def test_regularity(self, n, d):
        g = random_regular_graph(n, d, seed=0)
        assert g.num_vertices == n
        assert all(deg == d for deg in g.degrees())

    def test_d_zero(self):
        assert random_regular_graph(5, 0).num_edges == 0

    def test_rejects_odd_product(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3)

    def test_rejects_d_too_large(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 5)

    def test_deterministic_with_seed(self):
        a = random_regular_graph(20, 4, seed=1)
        b = random_regular_graph(20, 4, seed=1)
        assert a == b

    def test_different_seeds_vary(self):
        a = random_regular_graph(40, 4, seed=1)
        b = random_regular_graph(40, 4, seed=2)
        assert a != b


class TestErdosRenyi:
    def test_p_zero_empty(self):
        assert erdos_renyi_graph(20, 0.0, seed=0).num_edges == 0

    def test_p_one_complete(self):
        assert erdos_renyi_graph(10, 1.0, seed=0).is_complete()

    def test_edge_count_plausible(self):
        g = erdos_renyi_graph(200, 0.1, seed=0)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)


class TestBarabasiAlbert:
    def test_sizes(self):
        g = barabasi_albert_graph(50, 3, seed=0)
        assert g.num_vertices == 50
        # star seed: m edges; each of the n-m-1 later vertices adds m edges.
        assert g.num_edges == 3 + (50 - 4) * 3

    def test_min_degree(self):
        g = barabasi_albert_graph(50, 2, seed=0)
        assert g.min_degree() >= 1

    def test_hub_emerges(self):
        g = barabasi_albert_graph(300, 2, seed=0)
        assert g.max_degree() > 4 * g.min_degree()

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(100, 2, seed=1))

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3)

    def test_rejects_zero_m(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 0)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert g.is_regular()
        assert g.degree(0) == 4

    def test_rewire_preserves_edge_count(self):
        g = watts_strogatz_graph(50, 6, 0.5, seed=0)
        assert g.num_edges == 50 * 3

    def test_rewire_degree_bounds(self):
        # Rewiring moves only the far endpoint of a clockwise edge, so
        # every vertex keeps its k/2 originating edges: min degree >=
        # k/2, and total degree stays n * k.
        for seed in range(3):
            g = watts_strogatz_graph(60, 6, 0.7, seed=seed)
            degrees = g.degrees()
            assert degrees.min() >= 3
            assert degrees.max() <= 59
            assert degrees.sum() == 60 * 6

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_rejects_n_le_k(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, 4, 0.1)


class TestCavemanAndCliqueStar:
    def test_caveman_size(self):
        g = connected_caveman_graph(4, 5)
        assert g.num_vertices == 20
        assert is_connected(g)

    def test_caveman_single_clique(self):
        g = connected_caveman_graph(1, 4)
        assert g.is_complete()

    def test_star_of_cliques(self):
        g = star_of_cliques_graph(3, 4)
        assert g.num_vertices == 13
        assert g.degree(0) == 3  # hub touches one member per clique
        assert is_connected(g)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            connected_caveman_graph(0, 3)
        with pytest.raises(ValueError):
            star_of_cliques_graph(2, 0)


class TestBoundedDegree:
    @pytest.mark.parametrize("delta", [2, 4, 16])
    def test_respects_bound(self, delta):
        g = random_bounded_degree_graph(100, delta, seed=0)
        assert g.max_degree() <= delta

    def test_connected_for_delta_ge_2(self):
        g = random_bounded_degree_graph(60, 3, seed=1)
        assert is_connected(g)

    def test_matching_for_delta_1(self):
        g = random_bounded_degree_graph(10, 1, seed=0)
        assert g.max_degree() <= 1

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            random_bounded_degree_graph(10, 0)


class TestMinDegree:
    @pytest.mark.parametrize("delta", [1, 3, 8])
    def test_respects_bound(self, delta):
        g = random_min_degree_graph(40, delta, seed=0)
        assert g.min_degree() >= delta

    def test_zero_min_degree(self):
        g = random_min_degree_graph(5, 0, seed=0)
        assert g.num_edges == 0

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            random_min_degree_graph(5, 5)

    def test_deterministic(self):
        a = random_min_degree_graph(30, 4, seed=7)
        b = random_min_degree_graph(30, 4, seed=7)
        assert a == b
