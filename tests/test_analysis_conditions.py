"""Tests for the Lemma 3 / Lemma 5 condition audits."""

import numpy as np
import pytest

from repro.analysis.conditions import (
    audit_lemma3_conditions,
    audit_lemma5_conditions,
    lemma5_margin_ratio,
)
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.greedy import CappedRandomApproved, GreedyBest
from repro.mechanisms.threshold import RandomApproved


@pytest.fixture
def bounded_instance():
    rng = np.random.default_rng(0)
    return ProblemInstance(
        complete_graph(64), rng.uniform(0.35, 0.65, 64), alpha=0.05
    )


class TestLemma3Audit:
    def test_direct_voting_passes(self, bounded_instance):
        audit = audit_lemma3_conditions(bounded_instance, DirectVoting(), seed=0)
        assert audit.holds
        assert audit.measured == 0.0
        assert "holds" in audit.describe()

    def test_eager_delegation_fails_volume(self, bounded_instance):
        # everyone delegates: way more than n^(1/2 - eps)
        audit = audit_lemma3_conditions(bounded_instance, RandomApproved(), seed=0)
        assert not audit.holds

    def test_unbounded_competencies_fail(self):
        inst = ProblemInstance(complete_graph(4), [0.0, 0.5, 0.6, 1.0], alpha=0.05)
        audit = audit_lemma3_conditions(inst, DirectVoting(), seed=0)
        assert not audit.holds
        assert "not bounded" in audit.detail

    def test_rejects_bad_epsilon(self, bounded_instance):
        with pytest.raises(ValueError):
            audit_lemma3_conditions(bounded_instance, DirectVoting(), epsilon=0.6)


class TestLemma5Audit:
    def test_capped_mechanism_passes(self, bounded_instance):
        audit = audit_lemma5_conditions(
            bounded_instance, CappedRandomApproved(3), seed=0
        )
        assert audit.holds
        assert audit.measured <= 3

    def test_star_dictator_fails(self, figure1_instance):
        audit = audit_lemma5_conditions(figure1_instance, GreedyBest(), seed=0)
        assert not audit.holds
        assert audit.measured == figure1_instance.num_voters

    def test_threshold_scales_with_n(self):
        rng = np.random.default_rng(1)
        small = ProblemInstance(
            complete_graph(16), rng.uniform(0.3, 0.7, 16), alpha=0.05
        )
        a_small = audit_lemma5_conditions(small, DirectVoting(), seed=0)
        assert a_small.threshold == pytest.approx(16 ** 0.9)

    def test_rejects_bad_epsilon(self, bounded_instance):
        with pytest.raises(ValueError):
            audit_lemma5_conditions(bounded_instance, DirectVoting(), epsilon=1.5)


class TestMarginRatio:
    def test_direct_voting_small_ratio(self, bounded_instance):
        ratio = lemma5_margin_ratio(bounded_instance, DirectVoting(), seed=0)
        # w = 1: radius sqrt(n^1.05) over n/2 -> small for n = 64? ~8.6/32
        assert ratio < 1.0

    def test_dictator_large_ratio(self, figure1_instance):
        ratio = lemma5_margin_ratio(figure1_instance, GreedyBest(), seed=0)
        assert ratio > 1.0

    def test_empty_instance(self):
        from repro.graphs.graph import Graph

        inst = ProblemInstance(Graph(1), [0.5], alpha=0.1)
        # single voter: ratio = sqrt(1) * 1 / 0.5 = 2 — defined and finite
        ratio = lemma5_margin_ratio(inst, DirectVoting(), seed=0)
        assert np.isfinite(ratio)
