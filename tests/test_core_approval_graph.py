"""Tests for approval-graph static analysis."""

import numpy as np
import pytest

from repro.core.approval_graph import (
    approval_graph_stats,
    potential_hub_voters,
)
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestApprovalGraphStats:
    def test_equal_competencies_no_edges(self):
        inst = ProblemInstance(complete_graph(5), [0.5] * 5, alpha=0.05)
        stats = approval_graph_stats(inst)
        assert stats.num_approval_edges == 0
        assert stats.num_possible_delegators == 0
        assert stats.num_potential_sinks == 5
        assert stats.longest_chain == 1

    def test_complete_graph_linear_competencies(self):
        n = 6
        inst = ProblemInstance(
            complete_graph(n), np.linspace(0.1, 0.6, n), alpha=0.05
        )
        stats = approval_graph_stats(inst)
        # voter i approves everyone above it: n(n-1)/2 edges
        assert stats.num_approval_edges == n * (n - 1) // 2
        assert stats.max_out_degree == n - 1
        assert stats.max_in_degree == n - 1
        assert stats.num_possible_delegators == n - 1
        assert stats.longest_chain == n

    def test_star_hub_is_the_only_target(self):
        inst = ProblemInstance(
            star_graph(6), [0.9, 0.5, 0.5, 0.5, 0.5, 0.5], alpha=0.1
        )
        stats = approval_graph_stats(inst)
        assert stats.max_in_degree == 5
        assert stats.num_approval_edges == 5
        assert stats.longest_chain == 2

    def test_path_chain(self):
        n = 5
        inst = ProblemInstance(
            path_graph(n), np.linspace(0.1, 0.9, n), alpha=0.05
        )
        stats = approval_graph_stats(inst)
        assert stats.longest_chain == n
        assert stats.max_in_degree == 1

    def test_longest_chain_bounded_by_alpha(self):
        rng = np.random.default_rng(0)
        inst = ProblemInstance(
            complete_graph(60), rng.uniform(0, 1, 60), alpha=0.2
        )
        stats = approval_graph_stats(inst)
        assert stats.longest_chain <= 6  # ceil(1/0.2) + 1

    def test_mean_out_degree(self):
        inst = ProblemInstance(
            complete_graph(4), [0.1, 0.3, 0.5, 0.7], alpha=0.15
        )
        stats = approval_graph_stats(inst)
        assert stats.mean_out_degree == pytest.approx(
            stats.num_approval_edges / 4
        )

    def test_describe(self):
        inst = ProblemInstance(complete_graph(3), [0.2, 0.5, 0.8], alpha=0.1)
        assert "approval edges" in approval_graph_stats(inst).describe()

    def test_empty_instance(self):
        inst = ProblemInstance(Graph(1), [0.5], alpha=0.1)
        stats = approval_graph_stats(inst)
        assert stats.num_approval_edges == 0
        assert stats.longest_chain == 1


class TestPotentialHubs:
    def test_star_hub_ranked_first(self):
        inst = ProblemInstance(
            star_graph(8), [0.9] + [0.4] * 7, alpha=0.1
        )
        hubs = potential_hub_voters(inst, top=3)
        assert hubs[0] == (0, 7)

    def test_top_respected(self):
        inst = ProblemInstance(
            complete_graph(10), np.linspace(0.1, 0.9, 10), alpha=0.05
        )
        assert len(potential_hub_voters(inst, top=4)) == 4

    def test_in_degrees_descending(self):
        rng = np.random.default_rng(1)
        inst = ProblemInstance(
            complete_graph(20), rng.uniform(0.2, 0.8, 20), alpha=0.05
        )
        hubs = potential_hub_voters(inst, top=10)
        degrees = [d for _, d in hubs]
        assert degrees == sorted(degrees, reverse=True)

    def test_rejects_bad_top(self):
        inst = ProblemInstance(complete_graph(3), [0.2, 0.5, 0.8], alpha=0.1)
        with pytest.raises(ValueError):
            potential_hub_voters(inst, top=0)

    def test_hub_in_degree_bounds_mechanism_inflow(self):
        # one-step inflow under any approval mechanism <= approval in-degree
        from repro.analysis.expectations import expected_inflow
        from repro.mechanisms.threshold import RandomApproved

        rng = np.random.default_rng(2)
        inst = ProblemInstance(
            complete_graph(15), rng.uniform(0.2, 0.8, 15), alpha=0.05
        )
        inflow = expected_inflow(inst, RandomApproved())
        structure = inst.approval_structure()
        in_deg = np.zeros(15)
        for v in range(15):
            for t in structure.approved_neighbors(v):
                in_deg[t] += 1
        assert np.all(inflow <= in_deg + 1e-9)
