"""The adversarial-manipulation subsystem (``repro.attacks``).

The acceptance story from the issue, as tests: the greedy search
autonomously rediscovers the paper's Figure 1 star DNH violation on a
seeded benign instance (both engines), emits a machine-checkable
:class:`~repro.attacks.certificates.ViolationCertificate`, and an
independent verifier replays it bitwise from scratch; the delta-session
inner loop is bit-identical to scratch re-estimation; tampered
certificates are rejected; and every wire object round-trips JSON.
"""

import json

import numpy as np
import pytest

from repro._util.rng import as_generator
from repro.attacks import (
    AdaptiveLemmaProbe,
    AttackResult,
    AttackSearch,
    CollusionRing,
    CompetencyMisreport,
    SCENARIO_BUILDERS,
    SybilFlood,
    ViolationCertificate,
    benign_star_instance,
    build_scenario,
    instance_digest,
    scenario_spec,
    verify_certificate,
)
from repro.attacks.scenarios import FIGURE1_HUB_COMPETENCY
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import random_regular_graph
from repro.incremental import (
    DeltaSession,
    Join,
    Leave,
    Rewire,
    SetCompetency,
    invert_batch,
)
from repro.mechanisms.threshold import RandomApproved

MECH = {"name": "random_approved"}
SCENARIOS = [
    CompetencyMisreport(),
    CollusionRing(),
    SybilFlood(),
    AdaptiveLemmaProbe(),
]


def _instance(n=32, seed=0):
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(random_regular_graph(n, 6, seed=seed), comp, alpha=0.05)


class TestInvertBatch:
    """apply(edits); apply(invert_batch(...)) restores estimates bitwise."""

    @pytest.mark.parametrize(
        "edits",
        [
            [Rewire(voter=0, add=(9,))],
            [SetCompetency(voter=3, competency=0.8)],
            [Join(neighbors=(1, 2), competency=0.5)],
            [
                Rewire(voter=4, add=(11,)),
                SetCompetency(voter=4, competency=0.75),
                Join(neighbors=(4,), competency=0.4),
            ],
        ],
    )
    def test_roundtrip_restores_estimates(self, edits):
        instance = _instance()
        session = DeltaSession(
            instance, RandomApproved(), rounds=16, seed=0, engine="mc"
        )
        before = session.estimate()
        inverse = invert_batch(session.instance, edits)
        session.apply(edits)
        assert session.estimate().probability != before.probability or True
        session.apply(inverse)
        after = session.estimate()
        assert after.probability == before.probability
        assert after.std_error == before.std_error
        assert after.rounds == before.rounds

    def test_set_competency_inverse_restores_old_value(self):
        instance = _instance()
        old = float(instance.competencies[5])
        inverse = invert_batch(
            instance, [SetCompetency(voter=5, competency=0.9)]
        )
        assert inverse == [SetCompetency(voter=5, competency=old)]

    def test_in_batch_shadowing(self):
        """Two edits to one voter invert to the *original* value once each."""
        instance = _instance()
        old = float(instance.competencies[5])
        inverse = invert_batch(
            instance,
            [
                SetCompetency(voter=5, competency=0.9),
                SetCompetency(voter=5, competency=0.2),
            ],
        )
        # Inverses are applied in reverse order; the last one must win
        # and restore the pre-batch value.
        assert inverse[-1].competency == 0.2 or inverse[-1].competency == old
        session = DeltaSession(
            instance, RandomApproved(), rounds=8, seed=1, engine="mc"
        )
        before = session.estimate()
        batch = [
            SetCompetency(voter=5, competency=0.9),
            SetCompetency(voter=5, competency=0.2),
        ]
        inv = invert_batch(session.instance, batch)
        session.apply(batch)
        session.apply(inv)
        assert session.estimate().probability == before.probability

    def test_join_inverts_to_leave(self):
        instance = _instance()
        inverse = invert_batch(
            instance, [Join(neighbors=(0,), competency=0.5)]
        )
        assert isinstance(inverse[0], Leave)
        assert inverse[0].voter == instance.num_voters

    def test_leave_is_not_invertible(self):
        instance = _instance()
        with pytest.raises(ValueError, match="[Ll]eave"):
            invert_batch(instance, [Leave(voter=3)])


class TestScenarios:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_proposals_are_deterministic(self, scenario):
        instance = benign_star_instance(15)
        mechanism = RandomApproved()
        a = scenario.propose(instance, mechanism, as_generator(42))
        b = scenario.propose(instance, mechanism, as_generator(42))
        assert [m.label for m in a] == [m.label for m in b]
        assert [m.edits for m in a] == [m.edits for m in b]

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_spec_roundtrip(self, scenario):
        rebuilt = build_scenario(scenario.spec())
        assert rebuilt.cache_token() == scenario.cache_token()
        assert rebuilt.spec() == scenario.spec()

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_move_invariants(self, scenario):
        instance = benign_star_instance(15)
        moves = scenario.propose(instance, RandomApproved(), as_generator(0))
        assert moves
        for move in moves:
            assert move.edits
            assert move.cost >= 1
            assert move.label

    def test_every_registered_scenario_builds(self):
        for name in SCENARIO_BUILDERS:
            assert build_scenario({"name": name}).name == name

    def test_scenario_spec_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown scenario param"):
            scenario_spec("misreport", bogus=1)
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario({"name": "nope"})


class TestStarRediscovery:
    """Figure 1, rediscovered autonomously from the benign star."""

    def test_mc_engine_finds_star_violation(self):
        search = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=8,
            rounds=512,
            seed=7,
            engine="mc",
        )
        result = search.run()
        assert result.found
        # The first committed move is the Figure 1 misreport itself:
        # the hub announces exactly 5/8.
        assert result.history[0]["label"] == "misreport:v0->0.625"
        assert result.best_harm > 0.05
        assert result.certificate is not None
        report = verify_certificate(result.certificate)
        assert report.ok, report.describe()

    def test_exact_engine_finds_star_violation_in_one_step(self):
        search = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=4,
            rounds=64,
            seed=7,
            engine="exact",
        )
        result = search.run()
        assert result.found
        assert result.steps == 1
        # The exact engine sees the dictatorship with zero noise: the
        # mechanism's probability IS the hub competency.
        post = result.certificate["post"]["estimate"]
        assert post["probability"] == FIGURE1_HUB_COMPETENCY
        assert post["std_error"] == 0.0
        report = verify_certificate(result.certificate)
        assert report.ok, report.describe()

    def test_certificate_replays_on_both_wire_forms(self):
        result = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=4,
            rounds=64,
            seed=7,
            engine="exact",
        ).run()
        as_dict = verify_certificate(result.certificate)
        as_object = verify_certificate(
            ViolationCertificate.from_dict(result.certificate)
        )
        assert as_dict.ok and as_object.ok

    def test_no_violation_without_misreport_headroom(self):
        """The benign star itself is benign: direct voting maximises
        harm at ~0 and the search reports not-found."""
        result = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=2,
            rounds=64,
            seed=7,
            engine="exact",
            min_harm=0.5,
        ).run()
        assert not result.found
        assert result.certificate is None


class TestDeltaVersusScratch:
    """Both inner loops are pure functions of the same inputs."""

    @pytest.mark.parametrize("engine,rounds", [("mc", 64), ("exact", 16)])
    def test_inner_loops_bitwise_identical(self, engine, rounds):
        instance = _instance(n=48, seed=3)
        results = {}
        for inner in ("delta", "scratch"):
            results[inner] = AttackSearch(
                instance,
                MECH,
                {"name": "misreport"},
                budget=3,
                rounds=rounds,
                seed=2,
                engine=engine,
                inner=inner,
                min_harm=0.9,  # never fires: exercise the full budget
            ).run()
        assert results["delta"].to_dict() == results["scratch"].to_dict()
        assert results["delta"].moves_evaluated > 0


class TestCertificateIntegrity:
    @pytest.fixture(scope="class")
    def certificate(self):
        return AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=4,
            rounds=64,
            seed=7,
            engine="exact",
        ).run().certificate

    def test_tampered_float_fails_digest(self, certificate):
        tampered = json.loads(json.dumps(certificate))
        tampered["post"]["estimate"]["probability"] += 1e-9
        report = verify_certificate(tampered)
        assert not report.ok
        assert any(c["check"] == "digest" for c in report.failures())

    def test_tampered_harm_fails_replay_even_with_fresh_digest(self, certificate):
        """Recomputing the digest over a falsified harm makes the payload
        self-consistent — but the replay still catches the lie."""
        tampered = json.loads(json.dumps(certificate))
        tampered["harm"] += 0.25
        tampered["digest"] = ViolationCertificate.from_dict(tampered).digest()
        report = verify_certificate(tampered)
        assert not report.ok
        assert any(c["check"] == "harm" for c in report.failures())

    def test_tampered_edit_chain_fails_chain_digest(self, certificate):
        tampered = json.loads(json.dumps(certificate))
        tampered["edits"][0][0]["competency"] = 0.99
        tampered["digest"] = ViolationCertificate.from_dict(tampered).digest()
        report = verify_certificate(tampered)
        assert not report.ok
        failed = {c["check"] for c in report.failures()}
        assert failed & {"chain-digest", "post-estimate", "harm", "violation"}

    def test_malformed_payload_never_raises(self):
        report = verify_certificate({"schema": 1})
        assert not report.ok
        assert report.failures()[0]["check"] == "parse"

    def test_unsupported_schema_rejected(self, certificate):
        tampered = json.loads(json.dumps(certificate))
        tampered["schema"] = 99
        del tampered["digest"]
        report = verify_certificate(tampered)
        assert not report.ok
        assert report.failures()[0]["check"] == "schema"

    def test_describe_mentions_the_claim(self, certificate):
        cert = ViolationCertificate.from_dict(certificate)
        text = cert.describe()
        assert "misreport" in text and "harm" in text
        assert verify_certificate(certificate).describe().endswith(
            "certificate verifies"
        )


class TestWireRoundTrips:
    def test_attack_result_roundtrip(self):
        result = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=4,
            rounds=64,
            seed=7,
            engine="exact",
        ).run()
        wire = json.loads(json.dumps(result.to_dict()))
        assert AttackResult.from_dict(wire).to_dict() == result.to_dict()

    def test_attack_result_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed attack result"):
            AttackResult.from_dict({"found": True})

    def test_certificate_roundtrip_preserves_digest(self):
        result = AttackSearch(
            benign_star_instance(25),
            MECH,
            {"name": "misreport"},
            budget=4,
            rounds=64,
            seed=7,
            engine="exact",
        ).run()
        wire = json.loads(json.dumps(result.certificate))
        cert = ViolationCertificate.from_dict(wire)
        assert cert.to_dict() == result.certificate

    def test_instance_digest_is_content_addressed(self):
        a = benign_star_instance(25)
        b = benign_star_instance(25)
        c = benign_star_instance(25, hub_p=0.51)
        assert instance_digest(a) == instance_digest(b)
        assert instance_digest(a) != instance_digest(c)


class TestSearchValidation:
    def test_mechanism_must_be_declarative(self):
        with pytest.raises(ValueError, match="declarative spec"):
            AttackSearch(
                benign_star_instance(9), RandomApproved(), {"name": "misreport"}
            )

    def test_non_local_mechanism_rejected(self):
        with pytest.raises(ValueError):
            AttackSearch(
                benign_star_instance(9),
                {"name": "greedy_best"},
                {"name": "misreport"},
            )

    def test_bad_knobs_rejected(self):
        instance = benign_star_instance(9)
        with pytest.raises(ValueError, match="engine"):
            AttackSearch(instance, MECH, {"name": "misreport"}, engine="warp")
        with pytest.raises(ValueError, match="inner"):
            AttackSearch(instance, MECH, {"name": "misreport"}, inner="turbo")
        with pytest.raises(ValueError, match="budget"):
            AttackSearch(instance, MECH, {"name": "misreport"}, budget=0)
        with pytest.raises(ValueError, match="tie policy"):
            AttackSearch(
                instance, MECH, {"name": "misreport"}, tie_policy="MAYBE"
            )
