"""Adaptive-precision (``target_se``) stopping-rule tests.

Pins the determinism contract: the stopping round is a function of the
seed alone — identical across repeated calls and across ``n_jobs`` —
and an adaptive run's values are a prefix of the same-seed fixed run's,
so truncating the fixed run at the stop round reproduces the adaptive
estimate exactly.
"""

from __future__ import annotations

import pytest
from numpy.random import SeedSequence

from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.mechanisms.threshold import ApprovalThreshold
from repro.voting.montecarlo import (
    ADAPTIVE_START,
    BatchEstimator,
    estimate_ballot_probability,
    estimate_correct_probability,
    estimate_gain,
)
from repro.voting.outcome import TiePolicy


def _instance(n: int = 24, seed: int = 0) -> ProblemInstance:
    comp = bounded_uniform_competencies(n, 0.35, seed=seed)
    return ProblemInstance(complete_graph(n), comp, alpha=0.05)


MECH = ApprovalThreshold(2)


class TestAdaptiveStopping:
    def test_stop_round_deterministic(self):
        inst = _instance()
        runs = [
            estimate_correct_probability(
                inst, MECH, rounds=512, seed=SeedSequence(7),
                engine="batch", target_se=1e-4,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].rounds in {64, 128, 256, 512}

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_geometric_schedule_starts_at_adaptive_start(self, engine):
        est = estimate_correct_probability(
            _instance(), MECH, rounds=400, seed=SeedSequence(1),
            engine=engine, target_se=0.5,
        )
        assert est.rounds == ADAPTIVE_START
        assert est.converged

    def test_n_jobs_invariance(self):
        inst = _instance()
        baseline = estimate_correct_probability(
            inst, MECH, rounds=512, seed=SeedSequence(3),
            engine="batch", target_se=1e-4, n_jobs=1,
        )
        fanned = estimate_correct_probability(
            inst, MECH, rounds=512, seed=SeedSequence(3),
            engine="batch", target_se=1e-4, n_jobs=3,
        )
        assert baseline == fanned

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_target_met_or_cap_hit(self, engine):
        inst = _instance()
        easy = estimate_correct_probability(
            inst, MECH, rounds=400, seed=SeedSequence(2),
            engine=engine, target_se=0.05,
        )
        assert easy.converged and easy.std_error <= 0.05
        # The naive 0/1 estimator cannot reach SE 1e-3 in 100 rounds.
        hard = estimate_correct_probability(
            inst, MECH, rounds=100, seed=SeedSequence(2), engine=engine,
            exact_conditional=False, target_se=1e-3,
        )
        assert not hard.converged
        assert hard.rounds == 100
        assert hard.std_error > 1e-3

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_adaptive_prefix_matches_fixed_run(self, engine):
        """Truncating the fixed run at the stop round is the adaptive run."""
        inst = _instance()
        adaptive = estimate_correct_probability(
            inst, MECH, rounds=512, seed=SeedSequence(11),
            engine=engine, target_se=0.02,
        )
        fixed = estimate_correct_probability(
            inst, MECH, rounds=adaptive.rounds, seed=SeedSequence(11),
            engine=engine,
        )
        assert adaptive == fixed or (
            adaptive.probability == fixed.probability
            and adaptive.std_error == fixed.std_error
            and not adaptive.converged
        )

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_target_se_none_reproduces_fixed_rounds(self, engine):
        inst = _instance()
        plain = estimate_correct_probability(
            inst, MECH, rounds=80, seed=SeedSequence(4), engine=engine
        )
        explicit = estimate_correct_probability(
            inst, MECH, rounds=80, seed=SeedSequence(4), engine=engine,
            target_se=None,
        )
        assert plain == explicit
        assert plain.converged  # fixed-rounds estimates are trivially so

    def test_max_rounds_extends_beyond_rounds(self):
        inst = _instance()
        est = estimate_correct_probability(
            inst, MECH, rounds=64, seed=SeedSequence(5), engine="batch",
            exact_conditional=False, target_se=1e-3, max_rounds=256,
        )
        assert est.rounds == 256

    def test_batch_estimator_direct(self):
        est = BatchEstimator().estimate(
            _instance(), MECH, rounds=400, seed=SeedSequence(9),
            target_se=0.05, tie_policy=TiePolicy.COIN_FLIP,
        )
        assert est.converged
        assert est.rounds <= 400


class TestAdaptiveValidation:
    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="rounds"):
            estimate_correct_probability(_instance(), MECH, rounds=0)

    def test_target_se_must_be_positive(self):
        with pytest.raises(ValueError, match="target_se"):
            estimate_correct_probability(
                _instance(), MECH, rounds=10, target_se=0.0
            )

    def test_max_rounds_requires_target_se(self):
        with pytest.raises(ValueError, match="max_rounds requires"):
            estimate_correct_probability(
                _instance(), MECH, rounds=10, max_rounds=100
            )

    def test_max_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="max_rounds"):
            estimate_correct_probability(
                _instance(), MECH, rounds=10, target_se=0.1, max_rounds=0
            )

    def test_ballot_rounds_validated(self):
        with pytest.raises(ValueError, match="rounds"):
            estimate_ballot_probability(_instance(), MECH, rounds=0)


class TestAdaptiveSiblings:
    def test_estimate_gain_forwards_adaptive_knobs(self):
        gain, est, direct = estimate_gain(
            _instance(), MECH, rounds=512, seed=SeedSequence(6),
            engine="batch", target_se=0.05,
        )
        assert est.converged
        assert est.rounds < 512
        assert gain == pytest.approx(est.probability - direct)

    @pytest.mark.parametrize("engine", ["serial", "batch"])
    def test_ballot_adaptive(self, engine):
        est = estimate_ballot_probability(
            _instance(), MECH, rounds=400, seed=SeedSequence(8),
            engine=engine, target_se=0.05,
        )
        assert est.converged
        assert est.rounds <= 400

    def test_ballot_n_jobs_invariance(self):
        inst = _instance()
        one = estimate_ballot_probability(
            inst, MECH, rounds=96, seed=SeedSequence(10), engine="batch",
        )
        three = estimate_ballot_probability(
            inst, MECH, rounds=96, seed=SeedSequence(10), engine="batch",
            n_jobs=3,
        )
        assert one == three

    def test_ballot_matches_forest_estimate_for_never_abstaining(self):
        """Ballots of non-abstaining mechanisms equal the forest estimate.

        Serial engines share one generator stream, so the agreement is
        exact; the batch ballot path samples per-round forests on child
        seeds — the reference engine's stream — so it is pinned against
        ``BatchEstimator(use_reference=True)``.
        """
        inst = _instance()
        serial_ballot = estimate_ballot_probability(
            inst, MECH, rounds=32, seed=SeedSequence(12), engine="serial"
        )
        serial_forest = estimate_correct_probability(
            inst, MECH, rounds=32, seed=SeedSequence(12), engine="serial"
        )
        assert serial_ballot.probability == pytest.approx(
            serial_forest.probability
        )
        batch_ballot = estimate_ballot_probability(
            inst, MECH, rounds=32, seed=SeedSequence(12), engine="batch"
        )
        reference = BatchEstimator(use_reference=True).estimate(
            inst, MECH, rounds=32, seed=SeedSequence(12)
        )
        assert batch_ballot.probability == pytest.approx(
            reference.probability
        )
