"""Tests for Monte Carlo estimators."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.greedy import GreedyBest
from repro.mechanisms.threshold import RandomApproved
from repro.voting.exact import direct_voting_probability
from repro.voting.montecarlo import (
    estimate_ballot_probability,
    estimate_correct_probability,
    estimate_gain,
    sample_outcome,
)


@pytest.fixture
def instance():
    return ProblemInstance(
        complete_graph(9), np.linspace(0.3, 0.8, 9), alpha=0.05
    )


class TestEstimateCorrectProbability:
    def test_direct_matches_exact(self, instance):
        est = estimate_correct_probability(
            instance, DirectVoting(), rounds=5, seed=0
        )
        # Rao-Blackwellised estimator is exact for deterministic forests.
        assert est.probability == pytest.approx(
            direct_voting_probability(instance.competencies)
        )
        assert est.std_error == pytest.approx(0.0)

    def test_reproducible(self, instance):
        a = estimate_correct_probability(instance, RandomApproved(), rounds=20, seed=1)
        b = estimate_correct_probability(instance, RandomApproved(), rounds=20, seed=1)
        assert a.probability == b.probability

    def test_ci_contains_estimate(self, instance):
        est = estimate_correct_probability(instance, RandomApproved(), rounds=50, seed=2)
        assert est.ci_low <= est.probability <= est.ci_high

    def test_rejects_zero_rounds(self, instance):
        with pytest.raises(ValueError):
            estimate_correct_probability(instance, DirectVoting(), rounds=0)

    def test_naive_estimator_agrees(self, instance):
        exact = estimate_correct_probability(
            instance, DirectVoting(), rounds=10, seed=0
        ).probability
        naive = estimate_correct_probability(
            instance, DirectVoting(), rounds=3000, seed=0, exact_conditional=False
        )
        assert naive.probability == pytest.approx(exact, abs=0.05)
        assert naive.ci_low <= exact <= naive.ci_high

    def test_float_conversion(self, instance):
        est = estimate_correct_probability(instance, DirectVoting(), rounds=3, seed=0)
        assert float(est) == est.probability


class TestSampleOutcome:
    def test_binary_values(self, instance):
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = sample_outcome(instance, DirectVoting(), rng)
            assert out in (0.0, 1.0)

    def test_certain_instance(self):
        inst = ProblemInstance(complete_graph(3), [0.98, 0.99, 1.0], alpha=0.001)
        rng = np.random.default_rng(0)
        outs = [sample_outcome(inst, DirectVoting(), rng) for _ in range(30)]
        assert np.mean(outs) > 0.9


class TestEstimateGain:
    def test_star_negative_gain(self, figure1_instance):
        gain, est, direct = estimate_gain(
            figure1_instance, GreedyBest(), rounds=5, seed=0
        )
        assert gain < 0
        assert est.probability == pytest.approx(0.625)
        assert direct > 0.625

    def test_delegation_positive_gain(self, instance):
        gain, _, _ = estimate_gain(instance, RandomApproved(), rounds=100, seed=0)
        assert gain > 0


class TestBallotEstimator:
    def test_agrees_for_non_abstaining(self, instance):
        a = estimate_correct_probability(instance, RandomApproved(), rounds=40, seed=3)
        b = estimate_ballot_probability(instance, RandomApproved(), rounds=40, seed=3)
        assert b.probability == pytest.approx(a.probability, abs=0.05)

    def test_rejects_zero_rounds(self, instance):
        with pytest.raises(ValueError):
            estimate_ballot_probability(instance, DirectVoting(), rounds=0)
