"""Targeted tests for behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.core.restrictions import (
    BoundedCompetency,
    CompleteGraph,
    MinDegreeAtLeast,
    RandomRegular,
    RestrictionSet,
)
from repro.delegation.graph import SELF, DelegationGraph
from repro.graphs.generators import (
    complete_graph,
    random_regular_graph,
)
from repro.mechanisms.base import Ballot, uniform_choice
from repro.mechanisms.threshold import ApprovalThreshold
from repro.voting.exact import normal_approx_probability, weighted_bernoulli_pmf
from repro.voting.outcome import TiePolicy


class TestRestrictionComposition:
    def test_generated_regular_graphs_satisfy_their_restriction(self):
        for d in (2, 4, 8):
            g = random_regular_graph(30, d, seed=d)
            inst = ProblemInstance(g, [0.5] * 30, alpha=0.05)
            assert RandomRegular(d).is_satisfied(inst)
            assert MinDegreeAtLeast(d).is_satisfied(inst)

    def test_and_with_non_restriction_set(self):
        rs = RestrictionSet([CompleteGraph()])
        with pytest.raises(TypeError):
            rs & [BoundedCompetency(0.1)]

    def test_violation_message_names_property(self):
        inst = ProblemInstance(complete_graph(3), [0.9] * 3, alpha=0.05)
        message = BoundedCompetency(0.2).violation(inst)
        assert "p ∈" in message

    def test_violation_empty_when_satisfied(self):
        inst = ProblemInstance(complete_graph(3), [0.5] * 3, alpha=0.05)
        assert CompleteGraph().violation(inst) == ""

    def test_repr(self):
        assert "K_n" in repr(CompleteGraph())
        assert "RestrictionSet" in repr(RestrictionSet([CompleteGraph()]))


class TestUniformChoice:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_choice((), np.random.default_rng(0))

    def test_single_option(self):
        assert uniform_choice((7,), np.random.default_rng(0)) == 7

    def test_covers_all_options(self):
        rng = np.random.default_rng(1)
        seen = {uniform_choice((1, 2, 3), rng) for _ in range(100)}
        assert seen == {1, 2, 3}


class TestBallotDefaults:
    def test_default_ballot_never_abstains(self, small_complete_instance):
        mech = ApprovalThreshold(1)
        ballot = mech.sample_ballot(small_complete_instance, 0)
        assert isinstance(ballot, Ballot)
        assert ballot.abstaining == frozenset()
        assert ballot.participating_weight == small_complete_instance.num_voters


class TestNormalApproximationEdgeCases:
    def test_weighted_case_tracks_exact(self):
        # moderate weights: CLT applies, approximation close
        weights = [4, 4, 4] + [1] * 200
        probs = [0.7, 0.7, 0.7] + [0.55] * 200
        pmf = weighted_bernoulli_pmf(weights, probs)
        from repro.voting.exact import tail_from_pmf

        exact = tail_from_pmf(pmf, sum(weights))
        approx = normal_approx_probability(weights, probs)
        assert approx == pytest.approx(exact, abs=0.03)

    def test_heavy_atoms_degrade_approximation(self):
        # two sinks carrying a quarter of the weight each break
        # normality; the approximation error must be visible (this is
        # why the library uses the exact DP, not the CLT, by default).
        weights = [50, 50] + [1] * 100
        probs = [0.7, 0.7] + [0.55] * 100
        pmf = weighted_bernoulli_pmf(weights, probs)
        from repro.voting.exact import tail_from_pmf

        exact = tail_from_pmf(pmf, sum(weights))
        approx = normal_approx_probability(weights, probs)
        assert abs(approx - exact) > 0.02

    def test_coin_flip_policy_bounds_strict(self):
        weights = [1] * 10
        probs = [0.5] * 10
        strict = normal_approx_probability(weights, probs, TiePolicy.INCORRECT)
        coin = normal_approx_probability(weights, probs, TiePolicy.COIN_FLIP)
        assert coin >= strict


class TestDelegationGraphDeepChains:
    def test_very_long_chain_resolves(self):
        n = 5000
        delegates = list(range(1, n)) + [SELF]
        forest = DelegationGraph(delegates)
        assert forest.sink_of(0) == n - 1
        assert forest.weight(n - 1) == n
        assert forest.max_depth() == n - 1

    def test_wide_star_resolves(self):
        n = 5000
        forest = DelegationGraph([SELF] + [0] * (n - 1))
        assert forest.max_weight() == n
        assert forest.max_depth() == 1


class TestInstanceTransformsPreserveStructure:
    def test_sorted_instance_same_gain_semantics(self):
        # relabelling voters must not change direct-voting probability
        from repro.voting.exact import direct_voting_probability

        rng = np.random.default_rng(3)
        inst = ProblemInstance(
            complete_graph(12), rng.uniform(0.2, 0.8, 12), alpha=0.05
        )
        sorted_inst, _ = inst.sorted_by_competency()
        assert direct_voting_probability(
            sorted_inst.competencies
        ) == pytest.approx(direct_voting_probability(inst.competencies))

    def test_with_alpha_resets_structure_cache(self):
        inst = ProblemInstance(
            complete_graph(6), np.linspace(0.2, 0.7, 6), alpha=0.05
        )
        wide = inst.with_alpha(0.4)
        assert wide.approval_structure().approved_counts.sum() < (
            inst.approval_structure().approved_counts.sum()
        )
