"""Tests for repro._util.validation and repro._util.mathx."""

import math

import numpy as np
import pytest

from repro._util.mathx import clamp, is_power_of_two, logsumexp, wilson_interval
from repro._util.validation import (
    check_fraction,
    check_index,
    check_positive,
    check_probability,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_accepts_zero_non_strict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative_non_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.5) == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError):
            check_fraction("f", value)


class TestCheckProbabilityVector:
    def test_returns_array(self):
        out = check_probability_vector("p", [0.1, 0.9])
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [0.1, 0.9]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_probability_vector("p", [])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_probability_vector("p", [0.5, float("nan")])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.5, 1.5])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_probability_vector("p", [[0.5], [0.5]])


class TestCheckIndex:
    def test_accepts_valid(self):
        assert check_index("i", 3, 5) == 3

    def test_accepts_numpy_integer(self):
        assert check_index("i", np.int64(2), 5) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_index("i", -1, 5)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            check_index("i", 5, 5)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_index("i", 1.5, 5)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert hi > 0.0

    def test_all_successes(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == pytest.approx(1.0)
        assert lo < 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestMathHelpers:
    def test_logsumexp_matches_direct(self):
        vals = np.array([-1.0, -2.0, -3.0])
        expected = math.log(sum(math.exp(v) for v in vals))
        assert logsumexp(vals) == pytest.approx(expected)

    def test_logsumexp_empty(self):
        assert logsumexp(np.array([])) == float("-inf")

    def test_logsumexp_large_values_stable(self):
        assert logsumexp(np.array([1000.0, 1000.0])) == pytest.approx(
            1000.0 + math.log(2)
        )

    def test_clamp(self):
        assert clamp(5, 0, 1) == 1
        assert clamp(-5, 0, 1) == 0
        assert clamp(0.5, 0, 1) == 0.5

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1, 0)

    @pytest.mark.parametrize("value,expected", [(1, True), (2, True), (3, False), (0, False), (-4, False), (1024, True)])
    def test_is_power_of_two(self, value, expected):
        assert is_power_of_two(value) is expected
