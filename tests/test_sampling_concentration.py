"""Tests for the Lemma 1/2 concentration machinery."""

import math

import numpy as np
import pytest

from repro.sampling.concentration import (
    chernoff_lower_tail,
    deviation_exponent_fit,
    empirical_failure_rate,
    lemma1_deviation_bound,
    lemma2_lower_bound,
    recycle_failure_probability_bound,
)
from repro.sampling.recycle import RecycleSamplingGraph


class TestBoundFormulas:
    def test_lemma1_shape(self):
        # larger j -> threshold closer to the mean
        mu = 100.0
        b_small = lemma1_deviation_bound(mu, 8, 1.0)
        b_large = lemma1_deviation_bound(mu, 1000, 1.0)
        assert b_small < b_large < mu

    def test_lemma1_zero_epsilon(self):
        assert lemma1_deviation_bound(50.0, 10, 0.0) == 50.0

    def test_lemma1_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lemma1_deviation_bound(10, 0, 1.0)
        with pytest.raises(ValueError):
            lemma1_deviation_bound(10, 5, -1.0)

    def test_lemma2_monotone_in_c(self):
        mu, n, j = 500.0, 1000, 100
        assert lemma2_lower_bound(mu, n, j, 1, 1.0) > lemma2_lower_bound(
            mu, n, j, 4, 1.0
        )

    def test_lemma2_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lemma2_lower_bound(1.0, 0, 1, 1, 1.0)

    def test_failure_probability_decays_in_j(self):
        assert recycle_failure_probability_bound(
            1000
        ) < recycle_failure_probability_bound(10)

    def test_failure_probability_in_unit_interval(self):
        for j in (1, 10, 100):
            assert 0 < recycle_failure_probability_bound(j) < 1

    def test_chernoff_basic(self):
        assert chernoff_lower_tail(100, 0.5) == pytest.approx(
            math.exp(-0.5**2 * 100 / 2)
        )

    def test_chernoff_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)


class TestEmpiricalFailureRate:
    def test_loose_bound_rarely_fails(self):
        g = RecycleSamplingGraph.layered(
            [[0.5] * 50, [0.5] * 50], fresh_prob=0.5
        )
        rate = empirical_failure_rate(g, epsilon=2.0, rounds=200,
                                      rng=np.random.default_rng(0))
        assert rate < 0.05

    def test_tiny_epsilon_fails_often(self):
        # epsilon ~ 0 puts the bound just below the mean: ~half of the
        # samples fall under it.
        g = RecycleSamplingGraph.layered([[0.5] * 20, [0.5] * 20], 0.5)
        rate = empirical_failure_rate(g, epsilon=1e-6, rounds=200,
                                      rng=np.random.default_rng(0))
        assert rate > 0.25

    def test_rejects_zero_rounds(self):
        g = RecycleSamplingGraph.independent([0.5])
        with pytest.raises(ValueError):
            empirical_failure_rate(g, 1.0, 0, np.random.default_rng(0))


class TestDeviationExponentFit:
    def test_recovers_planted_slope(self):
        js = np.array([10, 50, 200, 1000], dtype=float)
        rates = np.exp(-0.7 * js ** (1 / 3))
        assert deviation_exponent_fit(js, rates) == pytest.approx(0.7)

    def test_zero_rates_clipped(self):
        js = np.array([10.0, 1000.0])
        rates = np.array([0.1, 0.0])
        slope = deviation_exponent_fit(js, rates)
        assert slope > 0

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            deviation_exponent_fit(np.array([10.0]), np.array([0.1]))
