"""Failure-injection tests: broken mechanisms, malformed inputs, misuse.

A production library must fail loudly and precisely when handed garbage;
these tests inject the failure modes a downstream integration would hit.
"""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationCycleError, DelegationGraph
from repro.graphs.generators import complete_graph
from repro.graphs.graph import Graph
from repro.mechanisms.base import DelegationMechanism
from repro.voting.exact import forest_correct_probability
from repro.voting.montecarlo import estimate_correct_probability


class CyclicMechanism(DelegationMechanism):
    """A buggy mechanism that ignores approval and builds a 2-cycle."""

    @property
    def name(self):
        return "cyclic-bug"

    def sample_delegations(self, instance, rng=None):
        delegates = [SELF] * instance.num_voters
        if instance.num_voters >= 2:
            delegates[0], delegates[1] = 1, 0
        return DelegationGraph(delegates)


class OutOfRangeMechanism(DelegationMechanism):
    """A buggy mechanism that delegates to a non-existent voter."""

    @property
    def name(self):
        return "out-of-range-bug"

    def sample_delegations(self, instance, rng=None):
        return DelegationGraph([instance.num_voters] * instance.num_voters)


@pytest.fixture
def instance():
    return ProblemInstance(complete_graph(6), np.linspace(0.2, 0.8, 6), alpha=0.05)


class TestBrokenMechanisms:
    def test_cycle_surfaces_with_cycle_details(self, instance):
        with pytest.raises(DelegationCycleError) as err:
            CyclicMechanism().sample_delegations(instance)
        assert 0 in err.value.cycle and 1 in err.value.cycle

    def test_cycle_error_is_value_error(self, instance):
        # integrations catching ValueError keep working
        with pytest.raises(ValueError):
            CyclicMechanism().sample_delegations(instance)

    def test_out_of_range_rejected(self, instance):
        with pytest.raises(ValueError, match="out-of-range"):
            OutOfRangeMechanism().sample_delegations(instance)

    def test_monte_carlo_propagates_mechanism_bugs(self, instance):
        with pytest.raises(DelegationCycleError):
            estimate_correct_probability(
                instance, CyclicMechanism(), rounds=3, seed=0
            )


class TestMalformedEvaluationInputs:
    def test_forest_evaluation_rejects_short_competencies(self):
        forest = DelegationGraph.direct(3)
        with pytest.raises(ValueError, match="does not match"):
            forest_correct_probability(forest, [0.5, 0.5])

    def test_forest_evaluation_rejects_bad_probabilities(self):
        forest = DelegationGraph.direct(2)
        with pytest.raises(ValueError):
            forest_correct_probability(forest, [0.5, 1.5])

    def test_instance_rejects_graph_mismatch(self):
        with pytest.raises(ValueError):
            ProblemInstance(Graph(3), [0.5, 0.5])


class TestMisuseOfViews:
    def test_views_are_immutable(self, instance):
        view = instance.local_view(0)
        with pytest.raises(AttributeError):
            view.voter = 5

    def test_competency_vector_immutable_via_instance(self, instance):
        with pytest.raises(ValueError):
            instance.competencies[:] = 0.5

    def test_delegates_array_immutable(self, instance):
        from repro.mechanisms.threshold import RandomApproved

        forest = RandomApproved().sample_delegations(instance, 0)
        with pytest.raises(ValueError):
            forest.delegates[0] = 3


class TestDegenerateSizes:
    def test_single_voter_instance(self):
        inst = ProblemInstance(Graph(1), [0.7], alpha=0.1)
        from repro.mechanisms.threshold import RandomApproved
        from repro.voting.exact import direct_voting_probability

        forest = RandomApproved().sample_delegations(inst, 0)
        assert forest.num_delegators == 0
        assert direct_voting_probability(inst.competencies) == pytest.approx(0.7)

    def test_two_voter_tie_semantics(self):
        inst = ProblemInstance(complete_graph(2), [0.5, 0.5], alpha=0.01)
        from repro.voting.exact import direct_voting_probability
        from repro.voting.outcome import TiePolicy

        # strict majority of 2 equal voters requires both correct
        assert direct_voting_probability(inst.competencies) == pytest.approx(0.25)
        assert direct_voting_probability(
            inst.competencies, TiePolicy.COIN_FLIP
        ) == pytest.approx(0.5)

    def test_disconnected_voters_never_delegate(self):
        inst = ProblemInstance(Graph(5), np.linspace(0.1, 0.9, 5), alpha=0.01)
        from repro.mechanisms.threshold import RandomApproved

        forest = RandomApproved().sample_delegations(inst, 0)
        assert forest.num_delegators == 0
