"""Equivalence suite pinning the fast kernels to their reference oracles.

The performance rewrites (merge-tree Poisson binomial, bucketed weighted
Bernoulli DP, pointer-doubling forest resolution, batched Monte Carlo)
each keep the original quadratic implementation as ``_reference_*``.
These tests drive both over randomized inputs and require agreement to
1e-12 absolute error (kernels) or exact equality (index computations and
seeded estimates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.mathx import LRUCache
from repro._util.rng import as_seed_sequence, child_seed_sequence
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.delegation.graph import (
    SELF,
    DelegationCycleError,
    DelegationGraph,
)
from repro.graphs.generators import complete_graph
from repro.mechanisms.threshold import ApprovalThreshold
from repro.voting.exact import (
    _reference_poisson_binomial_pmf,
    _reference_weighted_bernoulli_pmf,
    normal_approx_probability,
    poisson_binomial_pmf,
    weighted_bernoulli_pmf,
)
from repro.voting.montecarlo import BatchEstimator, estimate_correct_probability
from repro.voting.outcome import TiePolicy

TOL = 1e-12


# -- Poisson binomial ---------------------------------------------------------


@pytest.mark.parametrize(
    "n", [0, 1, 2, 3, 5, 16, 17, 63, 64, 65, 127, 200, 500]
)
def test_poisson_binomial_matches_reference(n):
    rng = np.random.default_rng(n)
    p = rng.uniform(0.0, 1.0, size=n)
    fast = poisson_binomial_pmf(p)
    ref = _reference_poisson_binomial_pmf(p)
    assert fast.shape == (n + 1,)
    assert np.max(np.abs(fast - ref)) <= TOL
    assert fast.sum() == pytest.approx(1.0, abs=TOL)


def test_poisson_binomial_empty_input():
    assert np.array_equal(poisson_binomial_pmf([]), np.ones(1))


def test_poisson_binomial_degenerate_probabilities():
    # All-certain and all-impossible voters exercise exact 0/1 handling.
    assert poisson_binomial_pmf([1.0] * 100)[-1] == pytest.approx(1.0, abs=TOL)
    assert poisson_binomial_pmf([0.0] * 100)[0] == pytest.approx(1.0, abs=TOL)
    mixed = poisson_binomial_pmf([0.0, 1.0] * 50)
    assert mixed[50] == pytest.approx(1.0, abs=TOL)


@pytest.mark.slow
def test_poisson_binomial_large_randomized_sweep():
    rng = np.random.default_rng(0)
    for n in (1000, 2048):
        p = rng.uniform(0.0, 1.0, size=n)
        err = np.max(
            np.abs(poisson_binomial_pmf(p) - _reference_poisson_binomial_pmf(p))
        )
        assert err <= TOL


# -- Weighted Bernoulli -------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 7, 50, 300])
@pytest.mark.parametrize("wmax", [1, 2, 5, 40])
def test_weighted_bernoulli_matches_reference(n, wmax):
    rng = np.random.default_rng(1000 * n + wmax)
    w = rng.integers(0, wmax + 1, size=n)
    p = rng.uniform(0.0, 1.0, size=n)
    fast = weighted_bernoulli_pmf(w, p)
    ref = _reference_weighted_bernoulli_pmf(w, p)
    assert fast.shape == ref.shape == (int(w.sum()) + 1,)
    assert np.max(np.abs(fast - ref)) <= TOL


def test_weighted_bernoulli_empty_input():
    assert np.array_equal(weighted_bernoulli_pmf([], []), np.ones(1))


def test_weighted_bernoulli_all_zero_weights():
    pmf = weighted_bernoulli_pmf([0, 0, 0], [0.2, 0.5, 0.9])
    assert np.array_equal(pmf, np.ones(1))


def test_weighted_bernoulli_single_voter():
    pmf = weighted_bernoulli_pmf([5], [0.3])
    expected = np.zeros(6)
    expected[0], expected[5] = 0.7, 0.3
    assert np.max(np.abs(pmf - expected)) <= TOL


def test_weighted_bernoulli_single_heavy_bucket():
    # One bucket larger than the DP cutoff exercises the lone-bucket path.
    rng = np.random.default_rng(9)
    p = rng.uniform(0.0, 1.0, size=200)
    w = np.full(200, 3)
    fast = weighted_bernoulli_pmf(w, p)
    ref = _reference_weighted_bernoulli_pmf(w, p)
    assert np.max(np.abs(fast - ref)) <= TOL


# -- Pointer-doubling resolution ----------------------------------------------


def _assert_resolution_matches(delegates):
    arr = np.asarray(delegates, dtype=np.int64)
    graph = DelegationGraph(delegates)
    expected = DelegationGraph._reference_resolve_sinks(arr)
    assert np.array_equal(np.array([graph.sink_of(i) for i in range(len(arr))]), expected)


def test_resolution_chain():
    n = 257
    _assert_resolution_matches(list(range(1, n)) + [SELF])


def test_resolution_star():
    n = 100
    _assert_resolution_matches([SELF] + [0] * (n - 1))


def test_resolution_random_forests():
    rng = np.random.default_rng(7)
    for _ in range(20):
        n = int(rng.integers(1, 300))
        # Delegating only to a lower index guarantees acyclicity.
        delegates = np.array(
            [SELF if i == 0 or rng.random() < 0.3 else int(rng.integers(0, i))
             for i in range(n)],
            dtype=np.int64,
        )
        _assert_resolution_matches(delegates)


def test_depths_match_python_walk():
    rng = np.random.default_rng(8)
    n = 200
    delegates = np.array(
        [SELF if i == 0 or rng.random() < 0.25 else int(rng.integers(0, i))
         for i in range(n)],
        dtype=np.int64,
    )
    graph = DelegationGraph(delegates)
    for v in range(n):
        hops, u = 0, v
        while delegates[u] != SELF:
            u = int(delegates[u])
            hops += 1
        assert graph.depth(v) == hops
    assert graph.max_depth() == max(graph.depth(v) for v in range(n))


@pytest.mark.parametrize(
    "delegates,cycle",
    [
        ([1, 0], [0, 1, 0]),
        ([1, 2, 0], [0, 1, 2, 0]),
        ([SELF, 2, 3, 1], [1, 2, 3, 1]),
        ([1, 2, 1, SELF], [1, 2, 1]),
    ],
)
def test_cycle_detection(delegates, cycle):
    with pytest.raises(DelegationCycleError) as err:
        DelegationGraph(delegates)
    assert set(err.value.cycle) == set(cycle)
    assert err.value.cycle[0] == err.value.cycle[-1]


def test_cycle_detection_matches_reference():
    # Both resolvers must agree on *whether* a configuration is cyclic.
    rng = np.random.default_rng(11)
    for _ in range(50):
        n = int(rng.integers(2, 40))
        delegates = np.array(
            [SELF if rng.random() < 0.2 else int(rng.integers(0, n))
             for i in range(n)],
            dtype=np.int64,
        )
        delegates[delegates == np.arange(n)] = SELF
        try:
            DelegationGraph._reference_resolve_sinks(delegates)
            cyclic_ref = False
        except DelegationCycleError:
            cyclic_ref = True
        try:
            DelegationGraph(delegates)
            cyclic_fast = False
        except DelegationCycleError:
            cyclic_fast = True
        assert cyclic_fast == cyclic_ref


# -- Seed-sequence helpers ----------------------------------------------------


def test_child_seed_sequence_matches_spawn():
    root = as_seed_sequence(42)
    spawned = np.random.SeedSequence(42).spawn(5)
    for i, child in enumerate(spawned):
        mine = child_seed_sequence(root, i)
        assert np.array_equal(
            mine.generate_state(4), child.generate_state(4)
        )


def test_child_seed_sequence_rejects_negative_index():
    with pytest.raises(ValueError):
        child_seed_sequence(as_seed_sequence(0), -1)


# -- LRU cache ----------------------------------------------------------------


def test_lru_cache_eviction_and_counters():
    cache = LRUCache(maxsize=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.hits == 3 and cache.misses == 2
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_lru_cache_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        LRUCache(0)


# -- Batch estimator ----------------------------------------------------------


@pytest.fixture(scope="module")
def pool_instance():
    n = 120
    return ProblemInstance(
        complete_graph(n),
        bounded_uniform_competencies(n, 0.35, seed=0),
        alpha=0.05,
    )


def test_batch_estimate_invariant_to_n_jobs(pool_instance):
    mech = ApprovalThreshold(5)  # constant threshold: picklable
    estimates = [
        BatchEstimator(n_jobs=j).estimate(pool_instance, mech, rounds=24, seed=3)
        for j in (1, 2, 3)
    ]
    assert estimates[0].probability == estimates[1].probability
    assert estimates[0].probability == estimates[2].probability
    assert estimates[0].std_error == estimates[1].std_error


def test_batch_estimate_unpicklable_mechanism_falls_back(pool_instance):
    mech = ApprovalThreshold(lambda d: 5.0)  # lambda: unpicklable
    with pytest.warns(RuntimeWarning, match="falling back"):
        parallel = BatchEstimator(n_jobs=2).estimate(
            pool_instance, mech, rounds=16, seed=3
        )
    serial = BatchEstimator(n_jobs=1).estimate(
        pool_instance, mech, rounds=16, seed=3
    )
    assert parallel.probability == serial.probability


def test_batch_profile_cache_deduplicates(pool_instance):
    mech = ApprovalThreshold(5)
    estimator = BatchEstimator(n_jobs=1)
    estimator.estimate(pool_instance, mech, rounds=20, seed=0)
    first_misses = estimator.cache.misses
    assert first_misses <= 20
    estimator.estimate(pool_instance, mech, rounds=20, seed=0)
    # Identical rounds the second time: every profile is already cached.
    assert estimator.cache.misses == first_misses


def test_batch_naive_mode_matches_exact_statistically(pool_instance):
    mech = ApprovalThreshold(5)
    exact = BatchEstimator().estimate(pool_instance, mech, rounds=64, seed=1)
    naive = BatchEstimator().estimate(
        pool_instance, mech, rounds=512, seed=1, exact_conditional=False
    )
    assert naive.ci_low - 0.05 <= exact.probability <= naive.ci_high + 0.05


def test_estimate_engine_dispatch(pool_instance):
    mech = ApprovalThreshold(5)
    batched = estimate_correct_probability(
        pool_instance, mech, rounds=24, seed=3, engine="batch"
    )
    direct = BatchEstimator().estimate(pool_instance, mech, rounds=24, seed=3)
    assert batched.probability == direct.probability
    with pytest.raises(ValueError, match="engine"):
        estimate_correct_probability(
            pool_instance, mech, rounds=4, seed=0, engine="threads"
        )


def test_estimate_serial_engine_unchanged(pool_instance):
    # The default engine must reproduce the seed implementation's stream:
    # passing n_jobs=1/engine="serial" explicitly changes nothing.
    mech = ApprovalThreshold(5)
    a = estimate_correct_probability(pool_instance, mech, rounds=24, seed=3)
    b = estimate_correct_probability(
        pool_instance, mech, rounds=24, seed=3, engine="serial", n_jobs=1
    )
    assert a.probability == b.probability


def test_batch_estimator_rejects_bad_args(pool_instance):
    with pytest.raises(ValueError, match="n_jobs"):
        BatchEstimator(n_jobs=0)
    with pytest.raises(ValueError, match="rounds"):
        BatchEstimator().estimate(
            pool_instance, ApprovalThreshold(5), rounds=0, seed=0
        )


# -- Normal approximation tie handling ----------------------------------------


def test_normal_approx_tie_policies_differ_only_on_even_totals():
    w = np.ones(10, dtype=np.int64)
    p = np.full(10, 0.5)
    strict = normal_approx_probability(w, p, TiePolicy.INCORRECT)
    coin = normal_approx_probability(w, p, TiePolicy.COIN_FLIP)
    # Even total: coin-flip half-counts the tie atom, so it is larger.
    assert coin > strict
    assert coin == pytest.approx(0.5, abs=1e-12)
    w_odd = np.ones(11, dtype=np.int64)
    p_odd = np.full(11, 0.5)
    assert normal_approx_probability(
        w_odd, p_odd, TiePolicy.INCORRECT
    ) == pytest.approx(
        normal_approx_probability(w_odd, p_odd, TiePolicy.COIN_FLIP), abs=1e-15
    )


def test_normal_approx_close_to_exact_tail():
    rng = np.random.default_rng(5)
    n = 4001
    p = rng.uniform(0.4, 0.6, size=n)
    w = np.ones(n, dtype=np.int64)
    exact_pmf = poisson_binomial_pmf(p)
    exact = float(exact_pmf[n // 2 + 1 :].sum())
    approx = normal_approx_probability(w, p, TiePolicy.INCORRECT)
    assert approx == pytest.approx(exact, abs=2e-3)


# -- Threshold degree caching -------------------------------------------------


def test_threshold_evaluated_once_per_distinct_degree(pool_instance):
    calls = []

    def counting_threshold(deg):
        calls.append(deg)
        return 5.0

    mech = ApprovalThreshold(counting_threshold)
    mech.sample_delegations(pool_instance, np.random.default_rng(0))
    # The complete graph is regular: one distinct degree, one call.
    assert len(calls) == 1


def test_constant_threshold_repr_and_name():
    mech = ApprovalThreshold(7)
    assert mech.name == "approval-threshold(j=7)"
    assert mech.threshold_at(123) == 7.0
