"""Tests for competency-vector constructors."""

import numpy as np
import pytest

from repro.core.competencies import (
    beta_competencies,
    bounded_uniform_competencies,
    competency_interval,
    constant_competencies,
    linear_competencies,
    plausible_changeability,
    sampled_competencies,
    satisfies_plausible_changeability,
    two_block_competencies,
)


class TestConstant:
    def test_values(self):
        p = constant_competencies(4, 0.7)
        assert p.tolist() == [0.7] * 4

    def test_empty(self):
        assert constant_competencies(0, 0.5).size == 0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            constant_competencies(3, 1.5)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            constant_competencies(-1, 0.5)


class TestLinear:
    def test_endpoints(self):
        p = linear_competencies(5, 0.2, 0.8)
        assert p[0] == pytest.approx(0.2)
        assert p[-1] == pytest.approx(0.8)

    def test_ascending(self):
        p = linear_competencies(10, 0.1, 0.9)
        assert np.all(np.diff(p) > 0)

    def test_single(self):
        assert linear_competencies(1, 0.3, 0.9).tolist() == [0.3]

    def test_empty(self):
        assert linear_competencies(0, 0.3, 0.9).size == 0

    def test_descending_allowed(self):
        p = linear_competencies(3, 0.9, 0.1)
        assert p[0] > p[-1]


class TestBoundedUniform:
    def test_within_bounds(self):
        p = bounded_uniform_competencies(1000, 0.3, seed=0)
        assert np.all(p > 0.3)
        assert np.all(p < 0.7)

    def test_deterministic(self):
        a = bounded_uniform_competencies(10, 0.2, seed=5)
        b = bounded_uniform_competencies(10, 0.2, seed=5)
        assert np.array_equal(a, b)

    def test_rejects_beta_half(self):
        with pytest.raises(ValueError):
            bounded_uniform_competencies(5, 0.5)

    def test_rejects_beta_zero(self):
        with pytest.raises(ValueError):
            bounded_uniform_competencies(5, 0.0)


class TestTwoBlock:
    def test_partition(self):
        p = two_block_competencies(5, 0.2, 0.9, num_high=2)
        assert p.tolist() == [0.2, 0.2, 0.2, 0.9, 0.9]

    def test_zero_high(self):
        p = two_block_competencies(3, 0.4, 0.9, num_high=0)
        assert p.tolist() == [0.4] * 3

    def test_all_high(self):
        p = two_block_competencies(3, 0.4, 0.9, num_high=3)
        assert p.tolist() == [0.9] * 3

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            two_block_competencies(3, 0.4, 0.9, num_high=4)


class TestSampled:
    def test_beta_in_range(self):
        p = beta_competencies(500, 2, 2, seed=0)
        assert np.all((p >= 0) & (p <= 1))

    def test_beta_rejects_bad_params(self):
        with pytest.raises(ValueError):
            beta_competencies(5, 0, 1)

    def test_custom_sampler_clipped(self):
        p = sampled_competencies(3, lambda rng, n: np.array([1.5, -0.5, 0.5]))
        assert p.tolist() == [1.0, 0.0, 0.5]

    def test_custom_sampler_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            sampled_competencies(3, lambda rng, n: np.zeros(2))


class TestPlausibleChangeability:
    def test_balanced_is_zero(self):
        assert plausible_changeability([0.4, 0.6]) == pytest.approx(0.0)

    def test_witness_value(self):
        assert plausible_changeability([0.7, 0.7]) == pytest.approx(0.2)

    def test_satisfies(self):
        assert satisfies_plausible_changeability([0.55, 0.55], 0.05)
        assert not satisfies_plausible_changeability([0.7, 0.7], 0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            plausible_changeability([])

    def test_rejects_negative_a(self):
        with pytest.raises(ValueError):
            satisfies_plausible_changeability([0.5], -0.1)


class TestCompetencyInterval:
    def test_interior_vector(self):
        assert competency_interval([0.3, 0.6]) == pytest.approx(0.3)

    def test_symmetric(self):
        assert competency_interval([0.4, 0.5, 0.6]) == pytest.approx(0.4)

    def test_touching_zero_none(self):
        assert competency_interval([0.0, 0.5]) is None

    def test_touching_one_none(self):
        assert competency_interval([0.5, 1.0]) is None

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            competency_interval([])
