"""Tests for exact mechanism expectations."""

import numpy as np
import pytest

from repro._util.rng import spawn_generators
from repro.analysis.expectations import (
    delegation_probabilities,
    expected_inflow,
    expected_num_delegators,
    expected_vote_lift,
    expected_weight_histogram,
    lemma7_floor,
)
from repro.core.instance import ProblemInstance
from repro.graphs.generators import erdos_renyi_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved


@pytest.fixture
def instance():
    rng = np.random.default_rng(8)
    return ProblemInstance(
        erdos_renyi_graph(30, 0.3, seed=2), rng.uniform(0.2, 0.8, 30), alpha=0.05
    )


class TestDelegationProbabilities:
    def test_direct_voting_all_zero(self, instance):
        assert expected_num_delegators(instance, DirectVoting()) == 0.0

    def test_deterministic_mechanism_binary(self, instance):
        probs = delegation_probabilities(instance, RandomApproved())
        assert set(np.unique(probs)) <= {0.0, 1.0}

    def test_matches_monte_carlo(self, instance):
        mech = ApprovalThreshold(2)
        exact = expected_num_delegators(instance, mech)
        counts = [
            mech.sample_delegations(instance, g).num_delegators
            for g in spawn_generators(0, 100)
        ]
        assert np.mean(counts) == pytest.approx(exact, abs=0.5)


class TestExpectedInflow:
    def test_inflow_sums_to_delegators(self, instance):
        mech = RandomApproved()
        inflow = expected_inflow(instance, mech)
        assert inflow.sum() == pytest.approx(
            expected_num_delegators(instance, mech)
        )

    def test_best_voter_gets_inflow(self, instance):
        inflow = expected_inflow(instance, RandomApproved())
        best = int(np.argmax(instance.competencies))
        neighbors_approving = [
            v for v in instance.graph.neighbors(best)
            if instance.approves(v, best)
        ]
        if neighbors_approving:
            assert inflow[best] > 0

    def test_matches_monte_carlo(self, instance):
        mech = RandomApproved()
        exact = expected_inflow(instance, mech)
        n = instance.num_voters
        counts = np.zeros(n)
        rounds = 300
        for g in spawn_generators(1, rounds):
            forest = mech.sample_delegations(instance, g)
            for v in range(n):
                t = int(forest.delegates[v])
                if t >= 0:
                    counts[t] += 1
        empirical = counts / rounds
        assert np.allclose(empirical, exact, atol=0.15)


class TestVoteLift:
    def test_direct_voting_zero_lift(self, instance):
        assert expected_vote_lift(instance, DirectVoting()) == 0.0

    def test_lift_dominates_lemma7_floor(self, instance):
        mech = RandomApproved()
        assert expected_vote_lift(instance, mech) >= lemma7_floor(
            instance, mech
        ) - 1e-9

    def test_lift_positive_when_delegation_happens(self, instance):
        mech = RandomApproved()
        if expected_num_delegators(instance, mech) > 0:
            assert expected_vote_lift(instance, mech) > 0

    def test_lift_matches_recycle_mean(self, instance):
        # the recycle-graph expectation of a one-shot delegation equals
        # direct mean + exact lift when no chains occur; with chains the
        # recycle mean can only be larger.
        from repro.sampling.builders import recycle_graph_from_mechanism_run

        mech = RandomApproved()
        graph, _ = recycle_graph_from_mechanism_run(instance, mech)
        base = float(instance.competencies.sum())
        assert graph.mean_sum() >= base + expected_vote_lift(
            instance, mech
        ) - 1e-9


class TestWeightHistogram:
    def test_counts_sum_to_sinks(self, instance):
        mech = ApprovalThreshold(1)
        hist = expected_weight_histogram(instance, mech, rounds=50, seed=0)
        avg_sinks = sum(hist.values())
        counts = [
            mech.sample_delegations(instance, g).num_sinks
            for g in spawn_generators(9, 50)
        ]
        assert avg_sinks == pytest.approx(np.mean(counts), abs=1.0)

    def test_direct_voting_all_weight_one(self, instance):
        hist = expected_weight_histogram(instance, DirectVoting(), rounds=3, seed=0)
        assert list(hist) == [1]
        assert hist[1] == instance.num_voters

    def test_rejects_zero_rounds(self, instance):
        with pytest.raises(ValueError):
            expected_weight_histogram(instance, DirectVoting(), rounds=0)
