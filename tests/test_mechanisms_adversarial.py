"""Tests for adversarial delegation mechanisms."""

import numpy as np
import pytest

from repro.analysis.bounds import theorem4_weight_bound
from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.generators import complete_graph, random_bounded_degree_graph
from repro.mechanisms.adversarial import (
    AdversarialConcentrator,
    LeastCompetentApproved,
)
from repro.mechanisms.threshold import RandomApproved


class TestAdversarialConcentrator:
    def test_star_full_concentration(self, figure1_instance):
        forest = AdversarialConcentrator().sample_delegations(figure1_instance, 0)
        assert forest.max_weight() == figure1_instance.num_voters

    def test_budget_respected(self, figure1_instance):
        forest = AdversarialConcentrator(budget=5).sample_delegations(
            figure1_instance, 0
        )
        assert forest.num_delegators == 5
        assert forest.max_weight() == 6

    def test_zero_budget_is_direct(self, figure1_instance):
        forest = AdversarialConcentrator(budget=0).sample_delegations(
            figure1_instance, 0
        )
        assert forest.num_delegators == 0

    def test_delegations_legal(self, small_complete_instance):
        forest = AdversarialConcentrator().sample_delegations(
            small_complete_instance, 0
        )
        inst = small_complete_instance
        for v in range(inst.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert inst.approves(v, t)

    def test_no_approvals_no_delegation(self):
        inst = ProblemInstance(complete_graph(4), [0.5] * 4, alpha=0.05)
        forest = AdversarialConcentrator().sample_delegations(inst, 0)
        assert forest.num_delegators == 0

    def test_concentrates_more_than_random(self, small_complete_instance):
        adv = AdversarialConcentrator().sample_delegations(
            small_complete_instance, 0
        )
        rand = RandomApproved().sample_delegations(small_complete_instance, 0)
        assert adv.max_weight() >= rand.max_weight()

    def test_deterministic(self, small_complete_instance):
        a = AdversarialConcentrator().sample_delegations(small_complete_instance, 0)
        b = AdversarialConcentrator().sample_delegations(small_complete_instance, 7)
        assert np.array_equal(a.delegates, b.delegates)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            AdversarialConcentrator(budget=-1)

    def test_not_local(self):
        assert not AdversarialConcentrator().is_local


class TestLeastCompetentApproved:
    def test_targets_worst_approved(self, small_complete_instance):
        forest = LeastCompetentApproved().sample_delegations(
            small_complete_instance, 0
        )
        inst = small_complete_instance
        comp = inst.competencies
        for v in range(inst.num_voters):
            t = int(forest.delegates[v])
            if t == SELF:
                continue
            approved = inst.approved_neighbors(v)
            assert comp[t] == min(comp[a] for a in approved)

    def test_still_upward(self, small_complete_instance):
        forest = LeastCompetentApproved().sample_delegations(
            small_complete_instance, 0
        )
        inst = small_complete_instance
        for v in range(inst.num_voters):
            t = int(forest.delegates[v])
            if t != SELF:
                assert inst.competencies[t] >= (
                    inst.competencies[v] + inst.alpha - 1e-12
                )

    def test_longer_chains_than_greedy_best(self):
        from repro.mechanisms.greedy import GreedyBest

        n = 20
        inst = ProblemInstance(
            complete_graph(n), np.linspace(0.1, 0.9, n), alpha=0.03
        )
        pessimist = LeastCompetentApproved().sample_delegations(inst, 0)
        optimist = GreedyBest().sample_delegations(inst, 0)
        assert pessimist.max_depth() > optimist.max_depth()


class TestTheorem4WeightBound:
    def test_bound_holds_empirically(self):
        n, delta, alpha = 400, 4, 0.3
        rng = np.random.default_rng(0)
        graph = random_bounded_degree_graph(n, delta, seed=1)
        inst = ProblemInstance(graph, rng.uniform(0.2, 0.8, n), alpha=alpha)
        bound = theorem4_weight_bound(delta, alpha)
        for seed in range(5):
            forest = RandomApproved().sample_delegations(inst, seed)
            assert forest.max_weight() <= bound

    def test_monotone_in_degree(self):
        assert theorem4_weight_bound(8, 0.2) > theorem4_weight_bound(4, 0.2)

    def test_monotone_in_alpha(self):
        assert theorem4_weight_bound(4, 0.1) > theorem4_weight_bound(4, 0.5)

    def test_degree_one(self):
        assert theorem4_weight_bound(1, 0.5) == 3.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            theorem4_weight_bound(-1, 0.5)
        with pytest.raises(ValueError):
            theorem4_weight_bound(4, 0.0)


class TestCacheToken:
    """Regression for reprolint C301: the concentrator's token must be
    behavioural (budget-keyed), not the fragile pickle-bytes default."""

    def test_token_is_behavioural_not_pickled(self, figure1_instance):
        token = AdversarialConcentrator(budget=3).cache_token(figure1_instance)
        assert token == ("AdversarialConcentrator", 3)

    def test_unbudgeted_token_distinct_from_any_budget(self, figure1_instance):
        unbounded = AdversarialConcentrator().cache_token(figure1_instance)
        for budget in (0, 1, 5):
            capped = AdversarialConcentrator(budget).cache_token(figure1_instance)
            assert capped != unbounded

    def test_token_separates_budgets(self, figure1_instance):
        a = AdversarialConcentrator(2).cache_token(figure1_instance)
        b = AdversarialConcentrator(3).cache_token(figure1_instance)
        assert a != b

    def test_token_stable_across_constructions(self, figure1_instance):
        assert (
            AdversarialConcentrator(4).cache_token(figure1_instance)
            == AdversarialConcentrator(4).cache_token(figure1_instance)
        )
