"""Tests for DelegationGraph resolution."""

import pytest

from repro.delegation.graph import SELF, DelegationCycleError, DelegationGraph


class TestConstruction:
    def test_all_direct(self):
        d = DelegationGraph.direct(4)
        assert d.sinks == (0, 1, 2, 3)
        assert d.num_delegators == 0
        assert all(d.weight(v) == 1 for v in range(4))

    def test_simple_chain(self):
        # 0 -> 1 -> 2, 3 votes
        d = DelegationGraph([1, 2, SELF, SELF])
        assert d.sinks == (2, 3)
        assert d.sink_of(0) == 2
        assert d.sink_of(1) == 2
        assert d.weight(2) == 3
        assert d.weight(3) == 1
        assert d.weight(0) == 0

    def test_self_delegation_normalised(self):
        d = DelegationGraph([0, SELF])
        assert d.sinks == (0, 1)

    def test_star_concentration(self):
        d = DelegationGraph([SELF, 0, 0, 0, 0])
        assert d.max_weight() == 5
        assert d.num_sinks == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            DelegationGraph([5, SELF])

    def test_two_cycle_detected(self):
        with pytest.raises(DelegationCycleError) as err:
            DelegationGraph([1, 0])
        assert set(err.value.cycle) >= {0, 1}

    def test_long_cycle_detected(self):
        with pytest.raises(DelegationCycleError):
            DelegationGraph([1, 2, 3, 0])

    def test_cycle_with_tail_detected(self):
        # 0 -> 1 -> 2 -> 1 : cycle {1, 2} reached from 0
        with pytest.raises(DelegationCycleError):
            DelegationGraph([1, 2, 1])

    def test_empty(self):
        d = DelegationGraph([])
        assert d.num_voters == 0
        assert d.max_weight() == 0
        assert d.max_depth() == 0


class TestWeights:
    def test_weights_sum_to_n(self):
        d = DelegationGraph([2, 2, SELF, SELF, 3])
        assert sum(d.sink_weights().values()) == 5

    def test_tree_weights(self):
        #     4
        #   /   \
        #  2     3
        #  |    / \
        #  0   1   5    (all point up; 4 is sink)
        d = DelegationGraph([2, 3, 4, 4, SELF, 3])
        assert d.weight(4) == 6
        assert d.sinks == (4,)

    def test_forest_weights(self):
        d = DelegationGraph([SELF, 0, SELF, 2, 2])
        assert d.sink_weights() == {0: 2, 2: 3}

    def test_num_delegators(self):
        d = DelegationGraph([SELF, 0, 0, SELF])
        assert d.num_delegators == 2


class TestDepths:
    def test_depths(self):
        d = DelegationGraph([1, 2, SELF, SELF])
        assert d.depth(0) == 2
        assert d.depth(1) == 1
        assert d.depth(2) == 0
        assert d.depth(3) == 0
        assert d.max_depth() == 2

    def test_depth_order_independent(self):
        # resolve from different starting points
        d = DelegationGraph([SELF, 0, 1, 2, 3])
        assert [d.depth(v) for v in range(5)] == [0, 1, 2, 3, 4]

    def test_depth_all_direct(self):
        assert DelegationGraph.direct(3).max_depth() == 0


class TestAccessors:
    def test_delegates_readonly(self):
        d = DelegationGraph([SELF, 0])
        with pytest.raises(ValueError):
            d.delegates[0] = 1

    def test_repr(self):
        d = DelegationGraph([SELF, 0])
        assert "sinks=1" in repr(d)

    def test_is_acyclic(self):
        assert DelegationGraph([SELF, 0]).is_acyclic()
