"""Tests for the incremental lint cache, ``--jobs``, SARIF and baselines.

The cache soundness contract: a warm run is byte-identical to a cold
run; editing one file re-analyses exactly that file plus its call-graph
dependents; an untouched project is served entirely from cache with
zero parsing.  ``--jobs N`` must not change output for any N.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    lint_paths,
    render_sarif,
    rule_catalogue,
    run_lint,
)
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.framework import iter_python_files

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _package(root: Path, name: str, modules: dict) -> Path:
    pkg = root / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, source in modules.items():
        (pkg / f"{mod}.py").write_text(textwrap.dedent(source))
    return pkg


def _chain_project(root: Path) -> Path:
    """a -> b -> c call chain, plus an unrelated module d."""
    return _package(
        root,
        "pkg",
        {
            "a": """
            from pkg.b import middle

            def top():
                return middle()
            """,
            "b": """
            from pkg.c import bottom

            def middle():
                return bottom()
            """,
            "c": """
            def bottom():
                return 1
            """,
            "d": """
            def unrelated():
                return 2
            """,
        },
    )


def _summary(findings):
    return [(f.path, f.rule, f.line, f.col, f.message) for f in findings]


class TestIncrementalCache:
    def test_warm_run_is_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_lint([FIXTURES / "bad"], cache_dir=cache)
        warm = run_lint([FIXTURES / "bad"], cache_dir=cache)
        assert _summary(cold.findings) == _summary(warm.findings)
        assert cold.files_checked == warm.files_checked
        assert warm.analyzed == ()  # nothing re-analysed
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.files_checked

    def test_edit_reanalyses_only_file_and_dependents(self, tmp_path):
        pkg = _chain_project(tmp_path)
        cache = tmp_path / "cache"
        run_lint([pkg], cache_dir=cache)
        # Touch the bottom of the chain: a and b depend on c through
        # the call graph; d and __init__ must stay cached.
        (pkg / "c.py").write_text("def bottom():\n    return 3\n")
        warm = run_lint([pkg], cache_dir=cache)
        analyzed = {Path(p).name for p in warm.analyzed}
        cached = {Path(p).name for p in warm.cached}
        assert analyzed == {"a.py", "b.py", "c.py"}
        assert cached == {"__init__.py", "d.py"}

    def test_edit_leaf_does_not_reanalyse_dependencies(self, tmp_path):
        pkg = _chain_project(tmp_path)
        cache = tmp_path / "cache"
        run_lint([pkg], cache_dir=cache)
        # a.py is the top of the chain: nothing depends on it, so the
        # dirty closure is just a.py itself.
        (pkg / "a.py").write_text(
            "from pkg.b import middle\n\ndef top():\n    return middle() + 1\n"
        )
        warm = run_lint([pkg], cache_dir=cache)
        assert {Path(p).name for p in warm.analyzed} == {"a.py"}

    def test_new_file_invalidates_new_dependents(self, tmp_path):
        pkg = _chain_project(tmp_path)
        cache = tmp_path / "cache"
        run_lint([pkg], cache_dir=cache)
        # A new module that c.py could call does not exist yet; now add
        # e.py and rewrite c.py to call it — both must be analysed.
        (pkg / "e.py").write_text("def leaf():\n    return 4\n")
        (pkg / "c.py").write_text(
            "from pkg.e import leaf\n\ndef bottom():\n    return leaf()\n"
        )
        warm = run_lint([pkg], cache_dir=cache)
        analyzed = {Path(p).name for p in warm.analyzed}
        assert {"c.py", "e.py"} <= analyzed

    def test_cache_findings_survive_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        pkg = _package(
            tmp_path,
            "app",
            {
                "rng": """
                import numpy as np

                def bad():
                    return np.random.default_rng()
                """,
            },
        )
        cold = run_lint([pkg], cache_dir=cache)
        warm = run_lint([pkg], cache_dir=cache)
        assert _summary(cold.findings) == _summary(warm.findings)
        assert {f.rule for f in warm.findings} == {"R101"}
        assert warm.analyzed == ()

    def test_select_ignore_apply_to_cached_findings(self, tmp_path):
        cache = tmp_path / "cache"
        run_lint([FIXTURES / "bad"], cache_dir=cache)
        warm = run_lint([FIXTURES / "bad"], cache_dir=cache, select=["R101"])
        assert warm.analyzed == ()
        assert {f.rule for f in warm.findings} == {"R101"}


class TestJobs:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_output_independent_of_job_count(self, jobs):
        serial = run_lint([FIXTURES / "bad"])
        parallel = run_lint([FIXTURES / "bad"], jobs=jobs)
        assert _summary(serial.findings) == _summary(parallel.findings)
        payload_a = json.dumps(_summary(serial.findings))
        payload_b = json.dumps(_summary(parallel.findings))
        assert payload_a == payload_b

    def test_jobs_with_cache(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_lint([FIXTURES / "bad"], cache_dir=cache, jobs=4)
        warm = run_lint([FIXTURES / "bad"], cache_dir=cache, jobs=4)
        assert _summary(cold.findings) == _summary(warm.findings)
        assert warm.analyzed == ()


class TestExclude:
    def test_iter_python_files_exclude_subtree(self):
        everything = iter_python_files([FIXTURES])
        pruned = iter_python_files([FIXTURES], exclude=[FIXTURES / "bad"])
        names = {p.name for p in pruned}
        assert "r101.py" not in names
        assert "flow_rng.py" in names  # good/ untouched
        assert len(pruned) < len(everything)

    def test_run_lint_exclude(self, tmp_path):
        run = run_lint([FIXTURES], exclude=[FIXTURES / "bad", FIXTURES / "bad_c302"])
        assert {f.rule for f in run.findings} <= {"X000", "X001"}
        assert not run.findings  # good trees are clean


class TestSarif:
    def test_sarif_payload_structure(self):
        findings = lint_paths([FIXTURES / "bad" / "r101.py"])
        text = render_sarif(findings, rule_catalogue(), "1.2.3")
        payload = json.loads(text)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert driver["version"] == "1.2.3"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert {"R101", "F601", "D203", "K404", "S501"} <= set(rule_ids)
        for result in run["results"]:
            assert result["ruleId"] == "R101"
            assert rule_ids[result["ruleIndex"]] == "R101"
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("r101.py")
            assert loc["region"]["startLine"] > 0

    def test_sarif_is_deterministic_and_warm_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_lint([FIXTURES / "bad"], cache_dir=cache)
        warm = run_lint([FIXTURES / "bad"], cache_dir=cache)
        catalogue = rule_catalogue()
        assert render_sarif(cold.findings, catalogue, "0") == render_sarif(
            warm.findings, catalogue, "0"
        )

    def test_empty_findings_is_valid_sarif(self):
        payload = json.loads(render_sarif([], rule_catalogue(), "0"))
        assert payload["runs"][0]["results"] == []


class TestBaseline:
    def test_round_trip_subtracts_known_findings(self, tmp_path):
        findings = lint_paths([FIXTURES / "bad" / "r101.py"])
        assert findings
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(baseline_path, findings)
        assert count == len(findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_new_findings_survive_baseline(self, tmp_path):
        old = lint_paths([FIXTURES / "bad" / "r101.py"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, old)
        baseline = load_baseline(baseline_path)
        combined = old + lint_paths([FIXTURES / "bad" / "d202.py"])
        fresh = apply_baseline(combined, baseline)
        assert fresh and {f.rule for f in fresh} == {"D202"}

    def test_baseline_ignores_line_numbers(self, tmp_path):
        # Keys are (path, rule, message) — an edit that shifts lines
        # must not resurrect baselined findings.
        src = (FIXTURES / "bad" / "r101.py").read_text()
        work = tmp_path / "r101.py"
        work.write_text(src)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([work]))
        work.write_text("# a leading comment shifts every line\n" + src)
        shifted = lint_paths([work])
        assert apply_baseline(shifted, load_baseline(baseline_path)) == []

    def test_schema_mismatch_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(bad)
