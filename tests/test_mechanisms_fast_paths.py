"""Statistical equivalence of the vectorised samplers and the decide() path.

Every mechanism with a fast ``sample_delegations`` override must induce
the same per-voter delegation distribution as the generic per-view
``decide`` path.  We check (a) identical *deterministic* delegation sets
(who delegates is deterministic for these mechanisms) and (b) matching
empirical delegate frequencies.
"""

import numpy as np
import pytest

from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.graphs.generators import erdos_renyi_graph, complete_graph
from repro.mechanisms.extensions import MultiDelegateWeighted
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.sampled import SampledNeighbourhood
from repro.mechanisms.threshold import ApprovalThreshold


def slow_sample(mechanism, instance, rng):
    """The generic decide()-based sampler, bypassing fast overrides."""
    delegates = []
    for voter in range(instance.num_voters):
        choice = mechanism.decide(instance.local_view(voter), rng)
        delegates.append(SELF if choice is None else int(choice))
    return DelegationGraph(delegates)


@pytest.fixture(params=["complete", "sparse"])
def instance(request):
    rng = np.random.default_rng(17)
    n = 24
    if request.param == "complete":
        graph = complete_graph(n)
    else:
        graph = erdos_renyi_graph(n, 0.3, seed=5)
    return ProblemInstance(graph, rng.uniform(0.2, 0.8, n), alpha=0.06)


DETERMINISTIC_CONDITION_MECHS = [
    ApprovalThreshold(1),
    ApprovalThreshold(3),
    ApprovalThreshold(lambda d: d ** 0.5),
    FractionApproved(0.5),
    FractionApproved(0.25),
    MultiDelegateWeighted(1, threshold=2),
    MultiDelegateWeighted(3, threshold=1),
    SampledNeighbourhood(threshold=2, d=None),
]


@pytest.mark.parametrize(
    "mechanism", DETERMINISTIC_CONDITION_MECHS, ids=lambda m: m.name
)
class TestWhoDelegatesMatches:
    def test_same_delegator_set(self, mechanism, instance):
        rng = np.random.default_rng(0)
        fast = mechanism.sample_delegations(instance, rng)
        slow = slow_sample(mechanism, instance, np.random.default_rng(0))
        assert np.array_equal(fast.delegates == SELF, slow.delegates == SELF)


@pytest.mark.parametrize(
    "mechanism",
    [ApprovalThreshold(1), FractionApproved(0.5), MultiDelegateWeighted(2, threshold=1)],
    ids=lambda m: m.name,
)
class TestDelegateFrequenciesMatch:
    def test_marginals_agree(self, mechanism, instance):
        trials = 600
        n = instance.num_voters
        fast_counts = np.zeros((n, n + 1))
        slow_counts = np.zeros((n, n + 1))
        rng_fast = np.random.default_rng(1)
        rng_slow = np.random.default_rng(2)
        for _ in range(trials):
            f = mechanism.sample_delegations(instance, rng_fast)
            s = slow_sample(mechanism, instance, rng_slow)
            for v in range(n):
                fast_counts[v, int(f.delegates[v])] += 1
                slow_counts[v, int(s.delegates[v])] += 1
        # Compare per-voter delegate frequencies: 5-sigma binomial band.
        for v in range(n):
            for t in range(-1, n):
                pf = fast_counts[v, t] / trials
                ps = slow_counts[v, t] / trials
                band = 5 * np.sqrt(max(ps * (1 - ps), pf * (1 - pf)) / trials) + 1e-9
                assert abs(pf - ps) <= band, (v, t, pf, ps)


class TestSampledNeighbourhoodSubsample:
    def test_delegation_rate_matches_distribution(self):
        rng = np.random.default_rng(7)
        n = 30
        inst = ProblemInstance(
            complete_graph(n), rng.uniform(0.2, 0.8, n), alpha=0.06
        )
        mech = SampledNeighbourhood(threshold=2, d=5)
        # Expected delegation probability per voter from the exact
        # hypergeometric distribution.
        expected = np.array([
            1.0 - mech.distribution(inst.local_view(v)).get(None, 0.0)
            for v in range(n)
        ])
        trials = 800
        counts = np.zeros(n)
        gen = np.random.default_rng(8)
        for _ in range(trials):
            forest = mech.sample_delegations(inst, gen)
            counts += np.asarray(forest.delegates) != SELF
        empirical = counts / trials
        band = 5 * np.sqrt(np.maximum(expected * (1 - expected), 1e-4) / trials)
        assert np.all(np.abs(empirical - expected) <= band + 1e-9)
