"""Tests for gain computation and desiderata verdicts."""

import numpy as np
import pytest

from repro.analysis.desiderata import (
    check_delegate_restriction,
    empirical_dnh,
    empirical_spg,
)
from repro.analysis.gain import exact_gain, monte_carlo_gain
from repro.core.competencies import bounded_uniform_competencies
from repro.core.instance import ProblemInstance
from repro.graphs.generators import complete_graph, star_graph
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.greedy import GreedyBest
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved


class TestExactGain:
    def test_direct_voting_zero_gain(self, small_complete_instance):
        est = exact_gain(small_complete_instance, DirectVoting())
        assert est.gain == pytest.approx(0.0)
        assert est.std_error == 0.0

    def test_star_exact_loss(self, figure1_instance):
        est = exact_gain(figure1_instance, GreedyBest())
        assert est.mechanism_probability == pytest.approx(0.625)
        assert est.gain < 0
        assert est.is_negative()

    def test_ci_properties(self, figure1_instance):
        est = exact_gain(figure1_instance, GreedyBest())
        assert est.ci_low == est.gain == est.ci_high


class TestMonteCarloGain:
    def test_positive_gain_detected(self, small_complete_instance):
        est = monte_carlo_gain(
            small_complete_instance, RandomApproved(), rounds=100, seed=0
        )
        assert est.gain > 0
        assert est.is_positive()

    def test_reproducible(self, small_complete_instance):
        a = monte_carlo_gain(small_complete_instance, RandomApproved(), rounds=30, seed=4)
        b = monte_carlo_gain(small_complete_instance, RandomApproved(), rounds=30, seed=4)
        assert a.gain == b.gain

    def test_direct_probability_exact(self, small_complete_instance):
        from repro.voting.exact import direct_voting_probability

        est = monte_carlo_gain(small_complete_instance, RandomApproved(), rounds=10, seed=0)
        assert est.direct_probability == pytest.approx(
            direct_voting_probability(small_complete_instance.competencies)
        )


class TestDelegateRestriction:
    def test_direct_fails_any_minimum(self, small_complete_instance):
        assert not check_delegate_restriction(
            small_complete_instance, DirectVoting(), minimum=1, seed=0
        )

    def test_zero_minimum_always_holds(self, small_complete_instance):
        assert check_delegate_restriction(
            small_complete_instance, DirectVoting(), minimum=0, seed=0
        )

    def test_eager_mechanism_meets_fraction(self, small_complete_instance):
        n = small_complete_instance.num_voters
        assert check_delegate_restriction(
            small_complete_instance, RandomApproved(), minimum=n // 2, seed=0
        )

    def test_rejects_negative_minimum(self, small_complete_instance):
        with pytest.raises(ValueError):
            check_delegate_restriction(
                small_complete_instance, DirectVoting(), minimum=-1
            )


class TestEmpiricalDnh:
    @staticmethod
    def factory(n, rng):
        return ProblemInstance(
            complete_graph(n),
            bounded_uniform_competencies(n, 0.35, seed=rng),
            alpha=0.05,
        )

    def test_good_mechanism_passes(self):
        verdict = empirical_dnh(
            self.factory,
            ApprovalThreshold(lambda d: max(1.0, d ** (1 / 3))),
            sizes=[32, 128, 512],
            rounds=60,
            seed=0,
            tolerance=0.05,
        )
        assert verdict.satisfied
        assert "DNH holds" in verdict.describe()

    def test_star_dictator_fails(self):
        def star_factory(n, rng):
            p = np.full(n, 9 / 16)
            p[0] = 5 / 8
            return ProblemInstance(star_graph(n), p, alpha=0.01)

        verdict = empirical_dnh(
            star_factory, GreedyBest(), sizes=[33, 129, 513], rounds=10, seed=0
        )
        assert not verdict.satisfied
        assert "VIOLATED" in verdict.describe()
        assert verdict.final_loss > 0.3

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            empirical_dnh(self.factory, DirectVoting(), sizes=[10])


class TestEmpiricalSpg:
    def test_positive_gain_family(self):
        instances = [
            ProblemInstance(
                complete_graph(n),
                bounded_uniform_competencies(n, 0.35, seed=n),
                alpha=0.05,
            )
            for n in (64, 128)
        ]
        verdict = empirical_spg(
            instances,
            RandomApproved(),
            gamma=0.01,
            delegate_minimum=lambda n: n / 4,
            rounds=80,
            seed=0,
        )
        assert verdict.satisfied
        assert verdict.num_instances == 2
        assert "SPG holds" in verdict.describe()

    def test_direct_voting_excluded_by_restriction(self):
        instances = [
            ProblemInstance(
                complete_graph(32),
                bounded_uniform_competencies(32, 0.35, seed=1),
                alpha=0.05,
            )
        ]
        verdict = empirical_spg(
            instances,
            DirectVoting(),
            gamma=0.01,
            delegate_minimum=lambda n: 1,
            rounds=10,
            seed=0,
        )
        # no instance satisfies the delegate restriction -> vacuous failure
        assert verdict.num_instances == 0
        assert not verdict.satisfied

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            empirical_spg([], DirectVoting(), gamma=0.0, delegate_minimum=lambda n: 0)
