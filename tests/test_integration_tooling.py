"""Integration tests across the tooling layers: CLI, report, io, registry.

These exercise multi-module flows end to end with real experiments at
smoke scale.
"""

import io as stringio
import json

import pytest

from repro import io as repro_io
from repro.cli import main
from repro.experiments import (
    ExperimentConfig,
    get_experiment,
    list_experiments,
    markdown_report,
)


class TestRunAllPipeline:
    def test_registry_report_roundtrip(self, tmp_path):
        """Run a handful of experiments, render and serialise them."""
        cfg = ExperimentConfig(seed=5, scale="smoke")
        ids = ["F1", "L5", "A3"]
        results = [get_experiment(eid)(cfg) for eid in ids]

        # markdown report contains every section
        report = markdown_report(results, title="Integration check")
        for eid in ids:
            assert f"## {eid}" in report

        # JSON round-trip preserves rows exactly
        for result in results:
            data = repro_io.dumps(result)
            back = repro_io.loads(data)
            assert back.rows == result.rows
            assert back.claim == result.claim

        # and the serialised form is plain JSON
        parsed = json.loads(repro_io.dumps(results[0]))
        assert parsed["type"] == "result"

    def test_cli_run_multiple_sections(self):
        out = stringio.StringIO()
        code = main(["run", "F1", "--scale", "smoke"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "[F1]" in text
        assert "P_delegation" in text

    def test_every_registered_experiment_has_bench(self):
        """Each experiment id must be exercised by a benchmarks/ file."""
        import pathlib

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        bench_source = "\n".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        missing = [
            eid
            for eid, _ in list_experiments()
            if f'run_experiment("{eid}")' not in bench_source
        ]
        assert not missing, f"experiments without benches: {missing}"

    def test_experiments_md_covers_every_experiment(self):
        import pathlib

        doc = (
            pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
        ).read_text()
        missing = [
            eid for eid, _ in list_experiments() if f"## {eid} " not in doc
        ]
        assert not missing, f"experiments undocumented in EXPERIMENTS.md: {missing}"


class TestSeedStability:
    """The same (id, seed, scale) must reproduce identical rows."""

    @pytest.mark.parametrize("eid", ["F1", "L3", "A3"])
    def test_deterministic_experiments(self, eid):
        cfg = ExperimentConfig(seed=9, scale="smoke")
        a = get_experiment(eid)(cfg)
        b = get_experiment(eid)(cfg)
        assert a.rows == b.rows

    def test_seed_changes_stochastic_rows(self):
        r1 = get_experiment("T2")(ExperimentConfig(seed=1, scale="smoke"))
        r2 = get_experiment("T2")(ExperimentConfig(seed=2, scale="smoke"))
        assert r1.rows != r2.rows
