"""Tests for recycle sampling graphs (Definition 6)."""

import numpy as np
import pytest

from repro.sampling.recycle import RecycleNode, RecycleSamplingGraph


class TestRecycleNode:
    def test_basic(self):
        node = RecycleNode(0.5, 0.7, (0, 1))
        assert node.fresh_prob == 0.5
        assert node.successors == (0, 1)

    def test_no_successors_requires_fresh(self):
        with pytest.raises(ValueError, match="always fresh"):
            RecycleNode(0.5, 0.7)

    def test_always_fresh_ok(self):
        RecycleNode(1.0, 0.7)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            RecycleNode(1.5, 0.5)
        with pytest.raises(ValueError):
            RecycleNode(1.0, -0.1)


class TestGraphValidation:
    def test_successors_must_be_earlier(self):
        nodes = [RecycleNode(1.0, 0.5), RecycleNode(0.5, 0.5, (1,))]
        with pytest.raises(ValueError, match="earlier"):
            RecycleSamplingGraph(nodes)

    def test_prefix_must_be_successor_free(self):
        nodes = [RecycleNode(1.0, 0.5), RecycleNode(0.5, 0.5, (0,))]
        with pytest.raises(ValueError, match="independent prefix"):
            RecycleSamplingGraph(nodes, independent_prefix=2)

    def test_prefix_bounds(self):
        nodes = [RecycleNode(1.0, 0.5)]
        with pytest.raises(ValueError):
            RecycleSamplingGraph(nodes, independent_prefix=2)


class TestPartitionComplexity:
    def test_independent_is_one(self):
        g = RecycleSamplingGraph.independent([0.5] * 5)
        assert g.partition_complexity() == 1

    def test_chain(self):
        nodes = [RecycleNode(1.0, 0.5)]
        for i in range(1, 4):
            nodes.append(RecycleNode(0.5, 0.5, (i - 1,)))
        g = RecycleSamplingGraph(nodes, independent_prefix=1)
        assert g.partition_complexity() == 4

    def test_layered(self):
        g = RecycleSamplingGraph.layered(
            [[0.5] * 3, [0.5] * 3, [0.5] * 3], fresh_prob=0.5
        )
        assert g.partition_complexity() == 3
        assert g.independent_prefix == 3

    def test_empty(self):
        g = RecycleSamplingGraph([])
        assert g.partition_complexity() == 0

    def test_is_recycle_graph(self):
        g = RecycleSamplingGraph.layered([[0.5] * 4, [0.5] * 4], fresh_prob=0.5)
        assert g.is_recycle_graph(j=4, c=2)
        assert g.is_recycle_graph(j=2, c=5)
        assert not g.is_recycle_graph(j=5, c=2)
        assert not g.is_recycle_graph(j=2, c=1)


class TestExpectations:
    def test_independent_expectations(self):
        g = RecycleSamplingGraph.independent([0.2, 0.7])
        assert g.expectations().tolist() == pytest.approx([0.2, 0.7])

    def test_pure_recycler_inherits_mean(self):
        nodes = [
            RecycleNode(1.0, 0.8),
            RecycleNode(0.0, 0.1, (0,)),  # always recycles node 0
        ]
        g = RecycleSamplingGraph(nodes, independent_prefix=1)
        assert g.expectations()[1] == pytest.approx(0.8)

    def test_mixture(self):
        nodes = [
            RecycleNode(1.0, 0.8),
            RecycleNode(0.5, 0.2, (0,)),
        ]
        g = RecycleSamplingGraph(nodes, independent_prefix=1)
        # E = 0.5*0.2 + 0.5*0.8
        assert g.expectations()[1] == pytest.approx(0.5)

    def test_multi_successor_average(self):
        nodes = [
            RecycleNode(1.0, 1.0),
            RecycleNode(1.0, 0.0),
            RecycleNode(0.0, 0.5, (0, 1)),
        ]
        g = RecycleSamplingGraph(nodes, independent_prefix=2)
        assert g.expectations()[2] == pytest.approx(0.5)

    def test_mean_sum_prefix(self):
        g = RecycleSamplingGraph.independent([0.2, 0.3, 0.4])
        assert g.mean_sum(2) == pytest.approx(0.5)
        assert g.mean_sum() == pytest.approx(0.9)
        with pytest.raises(ValueError):
            g.mean_sum(4)


class TestSampling:
    def test_values_binary(self):
        g = RecycleSamplingGraph.layered([[0.5] * 4, [0.5] * 4], 0.3)
        values = g.sample(0)
        assert set(np.unique(values)) <= {0, 1}

    def test_deterministic_node(self):
        g = RecycleSamplingGraph.independent([1.0, 0.0])
        assert g.sample(0).tolist() == [1, 0]

    def test_pure_recycler_copies(self):
        nodes = [
            RecycleNode(1.0, 1.0),  # always 1
            RecycleNode(0.0, 0.0, (0,)),  # always copies node 0
        ]
        g = RecycleSamplingGraph(nodes, independent_prefix=1)
        for seed in range(5):
            assert g.sample(seed).tolist() == [1, 1]

    def test_empirical_mean_matches_expectation(self):
        g = RecycleSamplingGraph.layered(
            [[0.6] * 10, [0.4] * 10, [0.5] * 10], fresh_prob=0.4
        )
        rng = np.random.default_rng(0)
        sums = [g.sample_sum(rng) for _ in range(2000)]
        assert np.mean(sums) == pytest.approx(g.mean_sum(), rel=0.03)

    def test_prefix_sums_monotone(self):
        g = RecycleSamplingGraph.layered([[0.5] * 5, [0.5] * 5], 0.5)
        ps = g.sample_prefix_sums(0)
        assert np.all(np.diff(ps) >= 0)

    def test_recycling_creates_positive_correlation(self):
        # A layer that recycles a single fresh node must be perfectly
        # correlated with it.
        nodes = [RecycleNode(1.0, 0.5)] + [
            RecycleNode(0.0, 0.5, (0,)) for _ in range(10)
        ]
        g = RecycleSamplingGraph(nodes, independent_prefix=1)
        rng = np.random.default_rng(1)
        for _ in range(10):
            values = g.sample(rng)
            assert np.all(values == values[0])

    def test_repr(self):
        g = RecycleSamplingGraph.layered([[0.5] * 2, [0.5]], 0.5)
        assert "c=2" in repr(g)


class TestLayeredConstructor:
    def test_rejects_empty_layer(self):
        with pytest.raises(ValueError, match="empty"):
            RecycleSamplingGraph.layered([[0.5], []], 0.5)

    def test_rejects_bad_fresh_prob(self):
        with pytest.raises(ValueError):
            RecycleSamplingGraph.layered([[0.5]], 1.5)

    def test_single_layer_is_independent(self):
        g = RecycleSamplingGraph.layered([[0.3] * 6], 0.2)
        assert g.independent_prefix == 6
        assert g.partition_complexity() == 1
