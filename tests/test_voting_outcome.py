"""Tests for the weighted-majority decision rule."""

import pytest

from repro.voting.outcome import TiePolicy, decide, majority_correct


class TestMajorityCorrect:
    def test_strict_win(self):
        assert majority_correct(6, 10) == 1.0

    def test_strict_loss(self):
        assert majority_correct(4, 10) == 0.0

    def test_tie_incorrect_default(self):
        assert majority_correct(5, 10) == 0.0

    def test_tie_coin_flip(self):
        assert majority_correct(5, 10, TiePolicy.COIN_FLIP) == 0.5

    def test_fractional_weights(self):
        assert majority_correct(2.5, 4.0) == 1.0

    def test_zero_total(self):
        # no strict majority possible
        assert majority_correct(0, 0) == 0.0
        assert majority_correct(0, 0, TiePolicy.COIN_FLIP) == 0.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            majority_correct(-1, 5)

    def test_rejects_correct_exceeding_total(self):
        with pytest.raises(ValueError):
            majority_correct(6, 5)


class TestDecide:
    def test_weighted_votes(self):
        assert decide([True, False], [3, 2]) == 1.0
        assert decide([True, False], [2, 3]) == 0.0

    def test_tie(self):
        assert decide([True, False], [2, 2]) == 0.0
        assert decide([True, False], [2, 2], TiePolicy.COIN_FLIP) == 0.5

    def test_single_voter(self):
        assert decide([True], [1]) == 1.0
        assert decide([False], [1]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decide([True], [1, 2])
