#!/usr/bin/env python
"""Continuous governance: liquid democracy over a year of ballots.

Real deployments (DAOs, LiquidFeedback instances) don't run one
election — they run dozens, while voter expertise drifts and
occasionally gets invalidated by reorganisations.  This example runs a
52-ballot series on a fixed social graph with mean-reverting competency
drift plus rare shocks, and answers the operator questions:

* did delegation beat direct voting on average, and in how many rounds
  did it lose?
* did weight concentration stay under control across the whole series?
* how did the realised (binary) outcomes compare to expectation?

Run:  python examples/continuous_governance.py
"""

import numpy as np

from repro import (
    ApprovalThreshold,
    ElectionSeries,
    GreedyBest,
    OrnsteinUhlenbeckDrift,
    ShockDrift,
    bounded_uniform_competencies,
    random_regular_graph,
    star_graph,
)
from repro._util.tables import render_table

SEED = 33


def main() -> None:
    n = 512
    graph = random_regular_graph(n, 16, seed=SEED)
    drift = ShockDrift(
        OrnsteinUhlenbeckDrift(baseline=0.5, rate=0.2, sigma=0.02,
                               low=0.3, high=0.7),
        shock_prob=0.1,        # roughly five shocks per year
        shock_fraction=0.2,    # each hitting a fifth of the org
    )
    series = ElectionSeries(
        graph,
        bounded_uniform_competencies(n, 0.35, seed=SEED),
        ApprovalThreshold(lambda d: max(1.0, d ** (1 / 3))),
        drift=drift,
        alpha=0.05,
    )
    summary = series.run(52, seed=SEED)

    print("=== healthy deployment: 16-regular graph, Algorithm 1 ===")
    print(summary.describe())
    print()
    rows = [
        [r.round_index, f"{r.mean_competency:.3f}", f"{r.gain:+.4f}",
         r.num_delegators, r.max_weight,
         "Y" if r.realized_correct else "n"]
        for r in series.records[::8]
    ]
    print(
        render_table(
            ["round", "mean p", "gain", "delegators", "max_w", "correct"],
            rows,
            title="every 8th ballot",
        )
    )
    print()

    # Contrast: the same year on a star with a barely-better hub.
    m = 257
    p = np.full(m, 9 / 16)
    p[0] = 5 / 8
    bad = ElectionSeries(star_graph(m), p, GreedyBest(), alpha=0.01)
    bad_summary = bad.run(52, seed=SEED)
    print("=== pathological deployment: star + delegate-to-best ===")
    print(bad_summary.describe())
    print(
        "\nReading: the regular-graph deployment sustains its gain through "
        "drift and\nshocks with bounded weight concentration; the star "
        "deployment loses in every\nround because all 52 ballots ride on one "
        "delegate — the Figure 1 failure as a\ntime series."
    )


if __name__ == "__main__":
    main()
