#!/usr/bin/env python
"""Corporate proxy voting: teams, locality and abstention.

The paper motivates local delegation with corporate settings where
employees only delegate to colleagues they know.  This example models a
company as a connected caveman graph (tight teams, thin cross-team
links) and studies:

1. Theorem 5's mechanism — delegate when at least half of your
   neighbours are more competent — on this high-min-degree topology;
2. the Section 6 abstention extension: decision-agnostic employees who
   could delegate simply sit the vote out, which must not harm the
   outcome;
3. how the outcome probability moves with the share of abstainers.

Run:  python examples/corporate_network.py
"""

import numpy as np

from repro import (
    AbstentionMechanism,
    FractionApproved,
    ProblemInstance,
    connected_caveman_graph,
    monte_carlo_gain,
)
from repro._util.tables import render_table
from repro.voting.exact import direct_voting_probability
from repro.voting.montecarlo import estimate_ballot_probability

SEED = 5


def main() -> None:
    teams, team_size = 80, 12
    graph = connected_caveman_graph(teams, team_size)
    n = graph.num_vertices
    rng = np.random.default_rng(SEED)
    # Each team has a spread of expertise on the issue at hand.
    competencies = np.concatenate(
        [np.sort(rng.uniform(0.38, 0.62, team_size)) for _ in range(teams)]
    )
    instance = ProblemInstance(graph, competencies, alpha=0.03)
    print(
        f"company: {teams} teams x {team_size} = {n} employees, "
        f"min degree {graph.min_degree()}"
    )
    print(f"mean competency = {instance.mean_competency():.3f}\n")

    mechanism = FractionApproved(0.5)  # Theorem 5's mechanism
    baseline = monte_carlo_gain(instance, mechanism, rounds=120, seed=SEED)
    print(f"{mechanism.name}: P_direct={baseline.direct_probability:.4f}, "
          f"P_deleg={baseline.mechanism_probability:.4f}, "
          f"gain={baseline.gain:+.4f}\n")

    p_direct = direct_voting_probability(instance.competencies)
    rows = []
    for rate in (0.0, 0.2, 0.4, 0.6, 0.8):
        wrapped = AbstentionMechanism(mechanism, rate)
        ballot = wrapped.sample_ballot(instance, SEED)
        estimate = estimate_ballot_probability(
            instance, wrapped, rounds=120, seed=SEED
        )
        rows.append(
            [
                f"{rate:.0%}",
                len(ballot.abstaining),
                ballot.participating_weight,
                f"{estimate.probability:.4f}",
                f"{estimate.probability - p_direct:+.4f}",
            ]
        )
    print(
        render_table(
            ["abstain rate", "abstainers", "active weight", "P(correct)", "gain"],
            rows,
            title="Restricted abstention (only delegation-capable employees may abstain)",
        )
    )
    print(
        "\nReading: abstention thins the electorate but, because only "
        "voters with a\nmore-competent neighbour may abstain, the decision "
        "quality never falls below\ndirect voting — the paper's DNH-preserving "
        "abstention model."
    )


if __name__ == "__main__":
    main()
