#!/usr/bin/env python
"""Quickstart: does liquid democracy beat direct voting on your graph?

Builds a 500-voter complete-graph instance with competencies spread
around 1/2, runs the paper's Algorithm 1 (threshold delegation to random
approved neighbours), and compares it against direct voting and the
"dictator" failure mode of Figure 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ApprovalThreshold,
    DirectVoting,
    GreedyBest,
    ProblemInstance,
    bounded_uniform_competencies,
    complete_graph,
    monte_carlo_gain,
    star_graph,
    weight_profile,
)

SEED = 7


def main() -> None:
    n = 500
    instance = ProblemInstance(
        complete_graph(n),
        bounded_uniform_competencies(n, beta=0.35, seed=SEED),
        alpha=0.05,
    )

    print(f"instance: {instance}")
    print(f"mean competency: {instance.mean_competency():.3f}\n")

    # --- Algorithm 1: delegate if at least n^(1/3) neighbours are approved.
    mechanism = ApprovalThreshold(lambda deg: max(1.0, deg ** (1 / 3)))
    estimate = monte_carlo_gain(instance, mechanism, rounds=200, seed=SEED)
    forest = mechanism.sample_delegations(instance, SEED)
    profile = weight_profile(forest)

    print(f"mechanism: {mechanism.name}")
    print(f"  delegators:        {profile.num_delegators}/{n}")
    print(f"  max sink weight:   {profile.max_weight}")
    print(f"  P(correct) direct: {estimate.direct_probability:.4f}")
    print(f"  P(correct) deleg:  {estimate.mechanism_probability:.4f}")
    print(f"  gain:              {estimate.gain:+.4f} "
          f"(95% CI [{estimate.ci_low:+.4f}, {estimate.ci_high:+.4f}])\n")

    # --- The Figure 1 failure mode: a star where everyone delegates to
    # the hub. Direct voting would approach certainty; delegation stays
    # at the hub's competency.
    m = 513
    p = np.full(m, 9 / 16)
    p[0] = 5 / 8
    star_instance = ProblemInstance(star_graph(m), p, alpha=0.01)
    star_estimate = monte_carlo_gain(star_instance, GreedyBest(), rounds=1, seed=0)
    print("Figure 1 star (hub p=5/8, leaves p=9/16):")
    print(f"  P(correct) direct: {star_estimate.direct_probability:.4f}")
    print(f"  P(correct) deleg:  {star_estimate.mechanism_probability:.4f}")
    print(f"  gain:              {star_estimate.gain:+.4f}  "
          "<- the do-no-harm violation")

    # --- Direct voting is itself a (trivial) local mechanism (Example 2).
    direct = monte_carlo_gain(instance, DirectVoting(), rounds=1, seed=0)
    assert abs(direct.gain) < 1e-12
    print("\ndirect voting gain over itself is zero (sanity check passed)")


if __name__ == "__main__":
    main()
