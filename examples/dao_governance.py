#!/usr/bin/env python
"""DAO governance: delegation on a hub-heavy social graph.

Blockchain DAOs are one of the paper's motivating deployments, and
empirical studies it cites found voting power concentrating on a few
delegates.  This example models a DAO's delegation social graph as a
Barabási–Albert network (token holders tend to know/follow the same few
prominent accounts), then:

1. measures weight concentration and the Lemma 5 condition for an eager
   local delegation mechanism;
2. shows the paper's remedy — capping any delegate's weight — restores
   do-no-harm without giving up most of the gain;
3. prints the governance dashboard a DAO operator would act on.

Run:  python examples/dao_governance.py
"""

import numpy as np

from repro import (
    CappedRandomApproved,
    ProblemInstance,
    RandomApproved,
    audit_lemma5_conditions,
    barabasi_albert_graph,
    monte_carlo_gain,
    structural_asymmetry,
    weight_profile,
)
from repro._util.tables import render_table

SEED = 21


def main() -> None:
    n = 2000
    graph = barabasi_albert_graph(n, m=3, seed=SEED)
    rng = np.random.default_rng(SEED)
    # Competency: most holders are barely informed; a long tail of
    # researchers is much better. Mean sits near 1/2.
    competencies = np.clip(rng.beta(8, 8, size=n) * 0.5 + 0.25, 0.05, 0.95)
    instance = ProblemInstance(graph, competencies, alpha=0.04)

    print(f"DAO social graph: n={n}, m={graph.num_edges}, "
          f"degree asymmetry (Gini) = {structural_asymmetry(graph):.3f}")
    print(f"mean competency = {instance.mean_competency():.3f}\n")

    eager = RandomApproved()
    rows = []
    for mechanism in [
        eager,
        CappedRandomApproved(max_weight=int(np.sqrt(n))),
        CappedRandomApproved(max_weight=8),
    ]:
        forest = mechanism.sample_delegations(instance, SEED)
        profile = weight_profile(forest)
        audit = audit_lemma5_conditions(instance, mechanism, rounds=10, seed=SEED)
        estimate = monte_carlo_gain(instance, mechanism, rounds=120, seed=SEED)
        rows.append(
            [
                mechanism.name,
                profile.num_delegators,
                profile.max_weight,
                f"{profile.effective_num_voters:.0f}",
                "yes" if audit.holds else "NO",
                f"{estimate.gain:+.4f}",
            ]
        )

    print(
        render_table(
            ["mechanism", "delegators", "max_weight", "eff_voters",
             "lemma5_ok", "gain"],
            rows,
            title="DAO delegation dashboard",
        )
    )
    print(
        "\nReading: the eager local mechanism concentrates weight on hub "
        "accounts;\ncapping the per-delegate weight (the Lemma 5 condition) "
        "keeps the effective\nelectorate large while preserving most of the "
        "gain over direct voting."
    )


if __name__ == "__main__":
    main()
