#!/usr/bin/env python
"""Topology audit: which networks are safe for liquid democracy?

Section 6 of the paper proposes, as future work, empirically checking
its two variance-preserving conditions (Lemmas 3 and 5) on realistic
network models.  This example runs that audit across seven topologies
with identical competency distributions and reports, per topology:

* degree asymmetry (Gini of the degree sequence),
* the maximum delegate weight an eager local mechanism produces,
* whether the Lemma 5 condition (max weight < n^(1-eps)) holds,
* the measured gain over direct voting.

The takeaway matches the paper's thesis: liquid democracy is safe on
degree-symmetric graphs and dangerous where structure concentrates
delegation on hubs.

Run:  python examples/topology_audit.py
"""

from repro.experiments import ExperimentConfig, get_experiment


def main() -> None:
    result = get_experiment("X3")(ExperimentConfig(seed=11, scale="default"))
    print(result.to_table())
    print()

    # Actionable summary: rank topologies by safety margin.
    rows = sorted(result.rows, key=lambda r: r[6], reverse=True)
    print("ranking by measured gain:")
    for rank, row in enumerate(rows, 1):
        verdict = "SAFE" if row[5] and row[6] > -0.01 else "RISKY"
        print(f"  {rank}. {row[0]:<18} gain {row[6]:+.4f}  [{verdict}]")


if __name__ == "__main__":
    main()
