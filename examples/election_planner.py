#!/usr/bin/env python
"""Election planner: certify, simulate, audit and archive one election.

The workflow a deployment would run before turning on liquid democracy:

1. **Certify** — check which of the paper's guarantees (Theorems 2–5,
   Lemmas 3/5) apply to the planned (network, mechanism) configuration.
2. **Simulate** — measure the expected gain over direct voting.
3. **Audit power** — compute exact Banzhaf voting power of the induced
   delegation forest and flag concentration.
4. **Archive** — serialise the instance and the realised forest to JSON
   so the published numbers stay reproducible.

Run:  python examples/election_planner.py
"""

import os
import tempfile

import numpy as np

from repro import (
    ApprovalThreshold,
    ProblemInstance,
    approval_graph_stats,
    bounded_uniform_competencies,
    certify,
    complete_graph,
    dictator_index,
    forest_banzhaf,
    monte_carlo_gain,
    potential_hub_voters,
    power_concentration,
    summarize_certificates,
    weight_profile,
)
from repro import io as repro_io

SEED = 13


def main() -> None:
    n = 512
    instance = ProblemInstance(
        complete_graph(n),
        bounded_uniform_competencies(n, beta=0.35, seed=SEED),
        alpha=0.05,
    )
    mechanism = ApprovalThreshold(lambda deg: max(1.0, deg ** (1 / 3)))

    # 1. Certificates: which paper guarantees cover this configuration?
    print("=== 1. paper certificates ===")
    certificates = certify(instance, mechanism)
    print(summarize_certificates(certificates))
    print()

    # 1b. Static risk: what does the approval structure alone allow?
    print("=== 1b. approval-graph risk report ===")
    print(approval_graph_stats(instance).describe())
    print("potential hubs (by approval in-degree):",
          potential_hub_voters(instance, top=3))
    print()

    # 2. Simulation: the expected benefit.
    print("=== 2. simulated gain ===")
    estimate = monte_carlo_gain(instance, mechanism, rounds=150, seed=SEED)
    print(
        f"P(correct): direct {estimate.direct_probability:.4f} -> "
        f"delegated {estimate.mechanism_probability:.4f} "
        f"(gain {estimate.gain:+.4f})"
    )
    print()

    # 3. Power audit on one realised forest.
    print("=== 3. voting-power audit ===")
    forest = mechanism.sample_delegations(instance, SEED)
    profile = weight_profile(forest)
    power = forest_banzhaf(forest)
    top = np.argsort(power)[::-1][:5]
    print(
        f"sinks {profile.num_sinks}, max weight {profile.max_weight}, "
        f"dictator index {dictator_index(forest):.4f}, "
        f"power Gini {power_concentration(forest):.4f}"
    )
    print("top-5 voters by Banzhaf power:")
    for rank, voter in enumerate(top, 1):
        print(
            f"  {rank}. voter {int(voter):>4}  weight {forest.weight(int(voter)):>3}  "
            f"power {power[voter]:.4f}  competency {instance.competency(int(voter)):.3f}"
        )
    print()

    # 4. Archive for reproducibility.
    print("=== 4. archive ===")
    out_dir = tempfile.mkdtemp(prefix="election-")
    instance_path = os.path.join(out_dir, "instance.json")
    forest_path = os.path.join(out_dir, "forest.json")
    repro_io.save(instance, instance_path)
    repro_io.save(forest, forest_path)
    # round-trip check
    restored = repro_io.load(forest_path)
    assert restored.sinks == forest.sinks
    print(f"instance archived to {instance_path}")
    print(f"forest archived to   {forest_path} (round-trip verified)")


if __name__ == "__main__":
    main()
