"""Probabilistic analysis: bounds, desiderata estimation, condition audits.

Implements the paper's quantitative toolkit — Hoeffding/Chernoff bounds
(Theorem 1), the normal approximation (Lemma 4), Lemma 3's erf
anti-concentration bound, Lemma 5/6's max-weight concentration, exact and
Monte Carlo gain computation, empirical Do-No-Harm / Strong-Positive-Gain
verdicts (Definitions 3–5), the delegate restriction (Definition 2), and
the real-topology condition audits proposed in Section 6.
"""

from repro.analysis.bounds import (
    chernoff_lower_tail_bound,
    hoeffding_tail_bound,
    lemma5_deviation,
    lemma5_failure_probability,
    lemma6_min_sinks,
)
from repro.analysis.normal import (
    direct_vote_stats,
    lemma3_loss_probability_bound,
    normal_tail_probability,
)
from repro.analysis.gain import (
    GainEstimate,
    exact_gain,
    monte_carlo_gain,
)
from repro.analysis.desiderata import (
    DnhVerdict,
    SpgVerdict,
    check_delegate_restriction,
    empirical_dnh,
    empirical_spg,
)
from repro.analysis.conditions import (
    ConditionAudit,
    audit_lemma3_conditions,
    audit_lemma5_conditions,
)
from repro.analysis.certificates import (
    Certificate,
    certificates_for,
    certify,
    summarize_certificates,
)
from repro.analysis.power import (
    banzhaf_indices,
    dictator_index,
    forest_banzhaf,
    normalized_banzhaf,
    power_concentration,
    shapley_shubik_indices,
)

__all__ = [
    "hoeffding_tail_bound",
    "chernoff_lower_tail_bound",
    "lemma5_deviation",
    "lemma5_failure_probability",
    "lemma6_min_sinks",
    "direct_vote_stats",
    "normal_tail_probability",
    "lemma3_loss_probability_bound",
    "GainEstimate",
    "exact_gain",
    "monte_carlo_gain",
    "DnhVerdict",
    "SpgVerdict",
    "empirical_dnh",
    "empirical_spg",
    "check_delegate_restriction",
    "ConditionAudit",
    "audit_lemma3_conditions",
    "audit_lemma5_conditions",
    "Certificate",
    "certify",
    "certificates_for",
    "summarize_certificates",
    "banzhaf_indices",
    "normalized_banzhaf",
    "shapley_shubik_indices",
    "forest_banzhaf",
    "power_concentration",
    "dictator_index",
]
