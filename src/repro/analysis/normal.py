"""Normal approximation (Lemma 4) and Lemma 3's anti-concentration bound.

Lemma 3's argument: with competencies in ``(β, 1−β)``, direct voting's
correct-vote count ``X^D`` is approximately normal with standard
deviation at least ``√(n β (1−β))``.  If at most ``n^{1/2−ε}`` voters
delegate, a delegation can change the margin by at most ``2 n^{1/2−ε}``
votes, and the probability that ``X^D`` lies within that distance of the
``n/2`` decision boundary — the only event where delegation can flip the
outcome — is at most ``erf(n^{−ε} / (β'√2))``-shaped, which vanishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class DirectVoteStats:
    """Mean / variance of the direct-voting correct-vote count."""

    n: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        """Standard deviation of the correct-vote count."""
        return math.sqrt(self.variance)

    @property
    def normalized_std(self) -> float:
        """``σ / √n`` — bounded below by ``√(β(1−β))`` under Lemma 3."""
        if self.n == 0:
            return 0.0
        return self.std / math.sqrt(self.n)


def direct_vote_stats(competencies: Sequence[float]) -> DirectVoteStats:
    """Exact mean and variance of ``X^D = Σ Bernoulli(p_i)``."""
    p = np.asarray(competencies, dtype=float)
    return DirectVoteStats(
        n=p.size,
        mean=float(p.sum()),
        variance=float((p * (1.0 - p)).sum()),
    )


def normal_tail_probability(z: float) -> float:
    """``P[Z > z]`` for a standard normal ``Z``."""
    return 0.5 * (1.0 - math.erf(z / math.sqrt(2.0)))


def normal_band_probability(mean: float, std: float, low: float, high: float) -> float:
    """``P[low < N(mean, std²) < high]``."""
    if std <= 0:
        return 1.0 if low < mean < high else 0.0
    if high < low:
        raise ValueError(f"empty band ({low}, {high})")
    zl = (low - mean) / std
    zh = (high - mean) / std
    return 0.5 * (math.erf(zh / math.sqrt(2.0)) - math.erf(zl / math.sqrt(2.0)))


def lemma3_loss_probability_bound(n: int, epsilon: float, beta: float) -> float:
    """Lemma 3's bound on the probability that delegation flips the outcome.

    With at most ``n^{1/2−ε}`` delegations, the outcome can only change if
    the direct-voting margin lies within ``2 n^{1/2−ε}`` of ``n/2``; with
    ``σ ≥ √(n β(1−β))`` this band has normal mass at most
    ``erf(√2 · n^{−ε} / √(β(1−β)))``, which decays to 0 as ``n`` grows —
    this *is* the loss bound because loss ≤ P[outcome changed].
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < beta < 0.5:
        raise ValueError(f"beta must lie in (0, 1/2), got {beta}")
    sigma_min = math.sqrt(n * beta * (1.0 - beta))
    half_band = 2.0 * float(n) ** (0.5 - epsilon)
    # P[|N(0, σ²)| < b] = erf(b / (σ√2))
    return math.erf(half_band / (sigma_min * math.sqrt(2.0)))


def worst_case_loss_bound(n: int, num_delegations: int) -> float:
    """Trivial vote-count bound: delegation moves at most 2·d votes.

    ``d`` delegators all voting incorrectly instead of correctly shifts
    the correct count by at most ``2d``; used to express Lemma 3's "loss
    is in the worst case 2 n^{1/2−ε}" step in vote units.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if num_delegations < 0:
        raise ValueError(f"num_delegations must be non-negative, got {num_delegations}")
    return min(float(n), 2.0 * num_delegations)
