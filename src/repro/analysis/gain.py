"""Gain computation: ``gain(M, G) = P^M(G) − P^D(G)`` (Section 2.2).

Two evaluation modes:

* :func:`exact_gain` — for mechanisms with few distinct forests (or a
  deterministic forest, like :class:`~repro.mechanisms.GreedyBest`),
  enumerate/average exactly;
* :func:`monte_carlo_gain` — Rao–Blackwellised Monte Carlo over the
  mechanism's randomness with exact conditional correctness per forest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import ProblemInstance
from repro.voting.exact import direct_voting_probability, forest_correct_probability
from repro.voting.montecarlo import estimate_correct_probability
from repro.voting.outcome import TiePolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms.base import DelegationMechanism


@dataclass(frozen=True)
class GainEstimate:
    """A gain measurement with its components and uncertainty."""

    gain: float
    mechanism_probability: float
    direct_probability: float
    std_error: float
    rounds: int

    @property
    def ci_low(self) -> float:
        """Lower end of a 95% interval on the gain."""
        return self.gain - 1.96 * self.std_error

    @property
    def ci_high(self) -> float:
        """Upper end of a 95% interval on the gain."""
        return self.gain + 1.96 * self.std_error

    def is_positive(self, significance: float = 1.96) -> bool:
        """Whether the gain is positive beyond ``significance`` std errors."""
        return self.gain > significance * self.std_error

    def is_negative(self, significance: float = 1.96) -> bool:
        """Whether the gain is negative beyond ``significance`` std errors."""
        return self.gain < -significance * self.std_error


def exact_gain(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    rng: SeedLike = 0,
) -> GainEstimate:
    """Gain for a mechanism whose forest is deterministic.

    Samples the forest once (deterministic mechanisms ignore the seed)
    and computes both probabilities exactly.  For randomised mechanisms
    use :func:`monte_carlo_gain` instead.
    """
    forest = mechanism.sample_delegations(instance, as_generator(rng))
    pm = forest_correct_probability(forest, instance.competencies, tie_policy)
    pd = direct_voting_probability(instance.competencies, tie_policy)
    return GainEstimate(
        gain=pm - pd,
        mechanism_probability=pm,
        direct_probability=pd,
        std_error=0.0,
        rounds=1,
    )


def monte_carlo_gain(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    engine: str = "serial",
    n_jobs: int = 1,
    target_se: Optional[float] = None,
    max_rounds: Optional[int] = None,
    cache=None,
) -> GainEstimate:
    """Rao–Blackwellised gain estimate over mechanism randomness.

    Direct voting is exact; only the forest distribution is sampled, so
    ``std_error`` reflects purely the mechanism's randomness.  ``engine``
    and ``n_jobs`` select the Monte Carlo engine, ``target_se`` /
    ``max_rounds`` adaptive precision and ``cache`` on-disk persistence,
    see :func:`repro.voting.montecarlo.estimate_correct_probability`.
    ``rounds`` on the returned estimate is the count actually evaluated
    (smaller than the request when an adaptive run converges early).
    """
    est = estimate_correct_probability(
        instance,
        mechanism,
        rounds=rounds,
        seed=seed,
        tie_policy=tie_policy,
        engine=engine,
        n_jobs=n_jobs,
        target_se=target_se,
        max_rounds=max_rounds,
        cache=cache,
    )
    pd = direct_voting_probability(instance.competencies, tie_policy)
    return GainEstimate(
        gain=est.probability - pd,
        mechanism_probability=est.probability,
        direct_probability=pd,
        std_error=est.std_error,
        rounds=est.rounds,
    )
