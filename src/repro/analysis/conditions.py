"""Condition audits (Section 6's "practical considerations").

The paper proposes checking, on realistic network models, whether its two
variance-preserving sufficient conditions actually hold:

* **Lemma 3 condition** — competencies bounded in ``(β, 1−β)`` *and* the
  mechanism delegates at most ``n^{1/2−ε}`` votes;
* **Lemma 5 condition** — the maximum sink weight stays below
  ``n^{1−ε'}`` (so the deviation radius ``√(n^{1+ε}) · w`` stays ``o(n)``).

:func:`audit_lemma3_conditions` / :func:`audit_lemma5_conditions` measure
both on sampled mechanism runs and report whether the sufficient
condition certifies DNH for the configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING


from repro._util.rng import SeedLike, spawn_generators
from repro.core.competencies import competency_interval
from repro.core.instance import ProblemInstance
from repro.delegation.metrics import weight_profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms.base import DelegationMechanism


@dataclass(frozen=True)
class ConditionAudit:
    """Result of auditing one sufficient condition on one configuration."""

    condition: str
    holds: bool
    measured: float
    threshold: float
    detail: str

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "holds" if self.holds else "fails"
        return (
            f"{self.condition} {status}: measured {self.measured:.4g} vs "
            f"threshold {self.threshold:.4g} ({self.detail})"
        )


def audit_lemma3_conditions(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    epsilon: float = 0.1,
    rounds: int = 20,
    seed: SeedLike = 0,
) -> ConditionAudit:
    """Audit Lemma 3's sufficient condition on sampled mechanism runs.

    Measures the maximum number of delegators over ``rounds`` runs and
    compares it against ``n^{1/2−ε}``; also requires a positive bounded
    competency margin β.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError(f"epsilon must lie in (0, 1/2), got {epsilon}")
    n = instance.num_voters
    threshold = float(n) ** (0.5 - epsilon)
    beta = competency_interval(instance.competencies)
    worst = 0
    for gen in spawn_generators(seed, rounds):
        forest = mechanism.sample_delegations(instance, gen)
        worst = max(worst, forest.num_delegators)
    if beta is None:
        return ConditionAudit(
            condition="Lemma 3",
            holds=False,
            measured=float(worst),
            threshold=threshold,
            detail="competencies not bounded away from {0, 1}",
        )
    holds = worst < threshold
    return ConditionAudit(
        condition="Lemma 3",
        holds=holds,
        measured=float(worst),
        threshold=threshold,
        detail=f"max delegators over {rounds} runs; beta={beta:.3g}",
    )


def audit_lemma5_conditions(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    epsilon: float = 0.1,
    rounds: int = 20,
    seed: SeedLike = 0,
) -> ConditionAudit:
    """Audit Lemma 5's max-weight condition on sampled mechanism runs.

    The paper notes Lemma 5 is only useful when the maximum sink weight
    satisfies ``w < n^{1−ε}`` (otherwise the deviation radius
    ``√(n^{1+ε̃}) · w`` exceeds the Θ(n) decision margin).  We therefore
    measure the maximum sink weight over ``rounds`` runs and compare it
    against ``n^{1−ε}``.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    n = instance.num_voters
    threshold = float(n) ** (1.0 - epsilon)
    worst = 0
    for gen in spawn_generators(seed, rounds):
        forest = mechanism.sample_delegations(instance, gen)
        worst = max(worst, weight_profile(forest).max_weight)
    return ConditionAudit(
        condition="Lemma 5",
        holds=worst < threshold,
        measured=float(worst),
        threshold=threshold,
        detail=f"max sink weight over {rounds} runs",
    )


def lemma5_margin_ratio(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    epsilon: float = 0.05,
    rounds: int = 20,
    seed: SeedLike = 0,
) -> float:
    """Ratio of Lemma 5's deviation radius to the n/2 decision margin.

    ``√(n^{1+ε}) · w_max / (n/2)`` — below 1 means the concentration
    bound certifies the outcome cannot be flipped by weight noise alone;
    the smaller the ratio, the stronger the certificate.
    """
    n = instance.num_voters
    if n == 0:
        return 0.0
    worst = 0
    for gen in spawn_generators(seed, rounds):
        forest = mechanism.sample_delegations(instance, gen)
        worst = max(worst, forest.max_weight())
    radius = math.sqrt(float(n) ** (1.0 + epsilon)) * worst
    return radius / (n / 2.0)
