"""Voting-power indices on delegation forests.

The paper's diagnosis of liquid democracy failures is *concentration of
voting power* (Section 1.2 cites empirical studies of exactly this, and
Zhang & Grossi study power in liquid democracy formally).  This module
computes the classical power indices **exactly** for the weighted
majority game induced by a delegation forest:

* **Banzhaf index** — the probability a sink is pivotal when every other
  sink votes a fair coin;
* **Shapley–Shubik index** — the fraction of sink orderings in which the
  sink is pivotal.

Both are computed with subset-sum dynamic programs over sink weights
(O(m·W) and O(m²·W) respectively for m sinks of total weight W), so
forests with thousands of voters remain tractable.

A delegation forest where one sink holds a majority of the weight gives
that sink power index 1 — the "dictatorship" of Figure 1 made
quantitative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.delegation.graph import DelegationGraph
from repro.graphs.properties import gini_coefficient


def _strict_quota(total: int) -> float:
    """Weight strictly required to win: more than half the total."""
    return total / 2.0


def banzhaf_indices(weights: Sequence[int]) -> np.ndarray:
    """Exact (non-normalised) Banzhaf indices of a weighted majority game.

    ``weights[i]`` is player i's voting weight; a coalition wins iff its
    weight strictly exceeds half the total.  Returns, for each player,
    the probability that it is pivotal when all other players join a
    coalition independently with probability 1/2.
    """
    w = np.asarray(weights, dtype=np.int64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    m = len(w)
    total = int(w.sum())
    if m == 0 or total == 0:
        return np.zeros(m)
    quota = _strict_quota(total)
    out = np.empty(m)
    # Players with equal weight are interchangeable, so compute one index
    # per *distinct* weight.  For each, build the coin-flip weight
    # distribution of the other players directly (numerically safe,
    # unlike deconvolving the full distribution).
    cache = {}
    for i, wi in enumerate(w):
        wi = int(wi)
        if wi == 0:
            out[i] = 0.0
            continue
        if wi not in cache:
            # The others' weights sum to exactly total - wi, so an array
            # of that length holds the entire distribution.
            others = [int(x) for j, x in enumerate(w) if j != i]
            dist = np.zeros(total - wi + 1)
            dist[0] = 1.0
            reach = 0
            for wj in others:
                if wj == 0:
                    continue
                new = dist * 0.5
                new[wj : reach + wj + 1] += dist[: reach + 1] * 0.5
                dist = new
                reach += wj
            # Pivotal iff others' sum S satisfies S <= quota < S + wi.
            ks = np.arange(total - wi + 1)
            pivotal = (ks <= quota) & (ks + wi > quota)
            cache[wi] = float(dist[pivotal].sum())
        out[i] = cache[wi]
    return np.clip(out, 0.0, 1.0)


def normalized_banzhaf(weights: Sequence[int]) -> np.ndarray:
    """Banzhaf indices normalised to sum to 1 (all-zero if degenerate)."""
    raw = banzhaf_indices(weights)
    total = raw.sum()
    if total == 0:
        return raw
    return raw / total


def shapley_shubik_indices(weights: Sequence[int]) -> np.ndarray:
    """Exact Shapley–Shubik indices of a weighted majority game.

    Returns, per player, the fraction of the m! player orderings in
    which that player's arrival makes the growing coalition winning.
    Uses the standard size-stratified subset-sum DP.
    """
    w = np.asarray(weights, dtype=np.int64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    m = len(w)
    total = int(w.sum())
    if m == 0 or total == 0:
        return np.zeros(m)
    quota = _strict_quota(total)
    # factorial weights s!(m-s-1)!/m! computed in log space for stability
    log_fact = np.concatenate(([0.0], np.cumsum(np.log(np.arange(1, m + 1)))))

    def perm_weight(s: int) -> float:
        return float(np.exp(log_fact[s] + log_fact[m - s - 1] - log_fact[m]))

    out = np.empty(m)
    cache = {}
    for i, wi in enumerate(w):
        wi = int(wi)
        if wi == 0:
            out[i] = 0.0
            continue
        if wi in cache:
            out[i] = cache[wi]
            continue
        # counts[s][k] = number of s-subsets of the other players with
        # total weight k.  Rolled over players.
        others = [int(x) for j, x in enumerate(w) if j != i]
        max_k = total - wi
        counts = np.zeros((m, max_k + 1))
        counts[0][0] = 1.0
        for wj in others:
            # iterate sizes downwards to avoid reuse
            for s in range(m - 2, -1, -1):
                row = counts[s]
                if not row.any():
                    continue
                counts[s + 1][wj:] += row[: max_k + 1 - wj]
        acc = 0.0
        for s in range(m):
            row = counts[s]
            ks = np.arange(max_k + 1)
            pivotal = (ks <= quota) & (ks + wi > quota)
            cnt = float(row[pivotal].sum())
            if cnt:
                acc += cnt * perm_weight(s)
        cache[wi] = acc
        out[i] = acc
    return np.clip(out, 0.0, 1.0)


def forest_banzhaf(delegation: DelegationGraph) -> np.ndarray:
    """Per-voter Banzhaf power under a delegation forest.

    Non-sink voters have surrendered their pivotality: their power is 0,
    and sinks carry the power of their accumulated weight.
    """
    n = delegation.num_voters
    out = np.zeros(n)
    sinks = list(delegation.sinks)
    weights = [delegation.weight(s) for s in sinks]
    values = banzhaf_indices(weights)
    for s, v in zip(sinks, values):
        out[s] = v
    return out


def power_concentration(delegation: DelegationGraph) -> float:
    """Gini coefficient of the normalised Banzhaf power across sinks.

    0 for direct voting with equal competencies/weights; → 1 as a single
    sink becomes a dictator.  The quantitative form of the paper's
    "concentration of power in the hands of a few voters".
    """
    sinks = list(delegation.sinks)
    if not sinks:
        return 0.0
    weights = [delegation.weight(s) for s in sinks]
    values = normalized_banzhaf(weights)
    return gini_coefficient(values.tolist())


def dictator_index(delegation: DelegationGraph) -> float:
    """The largest normalised Banzhaf index among sinks (1 = dictator)."""
    sinks = list(delegation.sinks)
    if not sinks:
        return 0.0
    weights = [delegation.weight(s) for s in sinks]
    values = normalized_banzhaf(weights)
    return float(values.max()) if len(values) else 0.0
