"""Theorem certificates: which of the paper's guarantees apply, and why.

Given a problem instance and a mechanism, this module checks the
*hypotheses* of each positive theorem (Theorems 2–5) and of the two DNH
lemmas (3 and 5), returning structured certificates with the guarantee
the paper then provides.  This is the "can I trust delegation on this
network?" API a deployment would call before an election.

A certificate is advisory: it confirms that the paper's sufficient
conditions hold for the configuration, quoting the statement that then
applies.  It never simulates — pair it with
:mod:`repro.analysis.desiderata` for empirical verdicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.competencies import competency_interval, plausible_changeability
from repro.core.instance import ProblemInstance
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.sampled import SampledNeighbourhood
from repro.mechanisms.threshold import ApprovalThreshold

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms.base import DelegationMechanism


@dataclass(frozen=True)
class Certificate:
    """One applicable (or inapplicable) paper guarantee."""

    statement: str  # e.g. "Theorem 2 (SPG)"
    applies: bool
    guarantee: str  # what the paper promises when it applies
    reason: str  # why it applies / fails here

    def describe(self) -> str:
        """One-line rendering for reports."""
        mark = "✔" if self.applies else "✘"
        return f"{mark} {self.statement}: {self.reason}"


def _epsilon_for_max_degree(n: int, max_degree: int) -> Optional[float]:
    """Solve ``Δ ≤ n^{ε/(2+ε)}`` for the smallest workable ε, if any.

    ``Δ = n^{ε/(2+ε)}`` gives ``ε = 2·log Δ / (log n − log Δ)``;
    a valid (finite, positive) ε exists iff ``Δ < √n`` roughly — we
    require the solved ε to be at most 1 for the certificate.
    """
    if max_degree <= 1:
        return 0.0
    if n <= max_degree:
        return None
    log_ratio = math.log(max_degree) / math.log(n)
    if log_ratio >= 1.0 / 3.0:  # eps/(2+eps) < 1/3 for eps <= 1
        return None
    eps = 2.0 * log_ratio / (1.0 - log_ratio)
    return eps


def certify(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    pc_target: float = 0.05,
) -> List[Certificate]:
    """All paper certificates for ``(instance, mechanism)``.

    ``pc_target`` is the plausible-changeability level used when
    checking the SPG theorems' ``PC = a`` hypothesis.
    """
    certificates: List[Certificate] = []
    graph = instance.graph
    n = instance.num_voters
    p = instance.competencies
    beta = competency_interval(p)
    pc = plausible_changeability(p)

    is_threshold = isinstance(mechanism, ApprovalThreshold)
    is_sampled = isinstance(mechanism, SampledNeighbourhood)
    is_fraction = isinstance(mechanism, FractionApproved)
    is_direct = isinstance(mechanism, DirectVoting)

    # ---- Theorem 2: complete graph + Algorithm 1 ----------------------------
    if graph.is_complete() and is_threshold:
        ok = pc <= pc_target
        certificates.append(
            Certificate(
                statement="Theorem 2 (K_n, Algorithm 1)",
                applies=ok,
                guarantee=(
                    "SPG: gain >= gamma > 0 whenever >= n/k voters delegate; "
                    "DNH on all complete graphs"
                ),
                reason=(
                    f"complete graph with Algorithm 1; PC witness {pc:.3f} "
                    + ("<=" if ok else ">")
                    + f" target {pc_target}"
                ),
            )
        )
    elif graph.is_complete() or is_threshold:
        certificates.append(
            Certificate(
                statement="Theorem 2 (K_n, Algorithm 1)",
                applies=False,
                guarantee="",
                reason=(
                    "requires both a complete graph and the Algorithm 1 "
                    "mechanism"
                ),
            )
        )

    # ---- Theorem 3: random d-regular + Algorithm 2 --------------------------
    if graph.is_regular() and graph.num_vertices > 1 and is_sampled:
        ok = pc <= pc_target
        d = graph.degree(0)
        certificates.append(
            Certificate(
                statement="Theorem 3 (Rand(n, d), Algorithm 2)",
                applies=ok,
                guarantee=(
                    "SPG with >= n/k delegations and DNH on random "
                    "d-regular graphs"
                ),
                reason=(
                    f"{d}-regular graph with Algorithm 2; PC witness "
                    f"{pc:.3f} vs target {pc_target}"
                ),
            )
        )

    # ---- Theorem 4: bounded maximum degree (any mechanism) -----------------
    eps = _epsilon_for_max_degree(n, graph.max_degree())
    certificates.append(
        Certificate(
            statement="Theorem 4 (Δ bounded, any mechanism)",
            applies=eps is not None and beta is not None,
            guarantee=(
                "SPG for Delegate(n) >= t and DNH with bounded competencies"
            ),
            reason=(
                f"max degree {graph.max_degree()} vs n={n}: "
                + (
                    f"Δ ≤ n^(ε/(2+ε)) holds with ε≈{eps:.3f}"
                    if eps is not None
                    else "degree too large relative to n"
                )
                + (
                    "; competencies bounded"
                    if beta is not None
                    else "; competencies touch {0, 1} or cross the bound"
                )
            ),
        )
    )

    # ---- Theorem 5: bounded minimal degree + half-fraction mechanism --------
    if is_fraction:
        delta = graph.min_degree()
        ok = delta >= max(2.0, n**0.25) and beta is not None
        certificates.append(
            Certificate(
                statement="Theorem 5 (δ ≥ n^ε, half-neighbourhood mechanism)",
                applies=ok,
                guarantee=(
                    "SPG with >= sqrt(n) delegations; DNH with bounded "
                    "competencies"
                ),
                reason=(
                    f"min degree {delta} vs n^0.25={n ** 0.25:.1f}; bounded "
                    f"competencies: {beta is not None}"
                ),
            )
        )

    # ---- Lemma 3: bounded competencies + few delegations --------------------
    if is_direct:
        lemma3_ok = beta is not None
        reason = (
            f"direct voting delegates 0 <= n^(1/2-ε) votes; β="
            f"{beta if beta is not None else 'none'}"
        )
    else:
        # The volume hypothesis is distributional; certify only the
        # competency part and defer volume to the runtime audit.
        lemma3_ok = False
        reason = (
            "delegation volume must be checked at runtime "
            "(see analysis.audit_lemma3_conditions)"
            + ("; competencies bounded" if beta is not None else "")
        )
    certificates.append(
        Certificate(
            statement="Lemma 3 (anti-concentration DNH)",
            applies=lemma3_ok,
            guarantee="DNH for any mechanism delegating < n^(1/2-ε) votes",
            reason=reason,
        )
    )

    # ---- Lemma 5: max-weight cap ------------------------------------------
    cap = getattr(mechanism, "max_weight", None)
    if isinstance(cap, int):
        ok = cap < n ** 0.9
        certificates.append(
            Certificate(
                statement="Lemma 5 (max-weight DNH)",
                applies=ok,
                guarantee=(
                    "outcome within sqrt(n^(1+ε))·w of its mean with "
                    "overwhelming probability"
                ),
                reason=f"mechanism caps sink weight at {cap} vs n^0.9={n**0.9:.0f}",
            )
        )
    else:
        certificates.append(
            Certificate(
                statement="Lemma 5 (max-weight DNH)",
                applies=False,
                guarantee="",
                reason=(
                    "mechanism declares no weight cap; measure max weight "
                    "at runtime (see analysis.audit_lemma5_conditions)"
                ),
            )
        )

    return certificates


def certificates_for(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    pc_target: float = 0.05,
) -> List[Certificate]:
    """All paper certificates for ``(instance, mechanism)``.

    The named public entry point over :func:`certify` — "what does the
    paper guarantee *for this configuration*?".  Identical semantics;
    exists so the top-level surface reads as a query
    (``repro.certificates_for(instance, mechanism)``) and so the verb
    form can grow keyword-only options without breaking either name.
    """
    return certify(instance, mechanism, pc_target=pc_target)


def summarize_certificates(certificates: List[Certificate]) -> str:
    """Render certificates as a short multi-line report."""
    if not certificates:
        return "no paper guarantee evaluated"
    return "\n".join(c.describe() for c in certificates)
