"""Empirical Do-No-Harm and Strong-Positive-Gain verdicts (Defs 2–5).

The paper's desiderata are asymptotic; finite experiments verify their
finite-``n`` signatures instead:

* **DNH** (Definition 3): the worst measured loss over an instance family
  shrinks as ``n`` grows (monotone trend, final loss below tolerance).
* **SPG** (Definition 5): over *every* sampled instance satisfying the
  delegate restriction, the measured gain stays above a positive ``γ``.
* **Delegate restriction** (Definition 2): at least ``f(n)`` voters
  delegate, checked either in expectation or per realisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Sequence, Tuple

import numpy as np

from repro._util.rng import SeedLike, spawn_generators
from repro.analysis.gain import monte_carlo_gain
from repro.core.instance import ProblemInstance

if TYPE_CHECKING:  # pragma: no cover
    from repro.mechanisms.base import DelegationMechanism


@dataclass(frozen=True)
class DnhVerdict:
    """Outcome of an empirical do-no-harm check over growing ``n``."""

    sizes: Tuple[int, ...]
    losses: Tuple[float, ...]  # max(0, -gain) at each size
    final_loss: float
    trend_decreasing: bool
    satisfied: bool

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "DNH holds" if self.satisfied else "DNH VIOLATED"
        return (
            f"{status}: worst loss {max(self.losses):.4g} -> "
            f"final loss {self.final_loss:.4g} over n={list(self.sizes)}"
        )


@dataclass(frozen=True)
class SpgVerdict:
    """Outcome of an empirical strong-positive-gain check."""

    gamma: float
    gains: Tuple[float, ...]
    min_gain: float
    num_instances: int
    satisfied: bool

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "SPG holds" if self.satisfied else "SPG FAILS"
        return (
            f"{status}: min gain {self.min_gain:.4g} vs gamma={self.gamma:.4g} "
            f"over {self.num_instances} instances"
        )


def check_delegate_restriction(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    minimum: float,
    rounds: int = 20,
    seed: SeedLike = None,
) -> bool:
    """Definition 2: does ``(M, G)`` satisfy ``Delegate(n) ≥ minimum``?

    Checked on ``rounds`` sampled forests; every realisation must meet
    the minimum (the definition quantifies over induced delegation
    graphs).
    """
    if minimum < 0:
        raise ValueError(f"minimum must be non-negative, got {minimum}")
    gens = spawn_generators(seed, rounds)
    for gen in gens:
        forest = mechanism.sample_delegations(instance, gen)
        if forest.num_delegators < minimum:
            return False
    return True


def empirical_dnh(
    instance_factory: Callable[[int, np.random.Generator], ProblemInstance],
    mechanism: "DelegationMechanism",
    sizes: Sequence[int],
    rounds: int = 200,
    seed: SeedLike = 0,
    tolerance: float = 0.02,
) -> DnhVerdict:
    """Empirical DNH over an instance family indexed by size.

    ``instance_factory(n, rng)`` builds the (possibly random) instance at
    size ``n``.  The verdict requires the loss at the largest size to be
    below ``tolerance`` and the loss trend not to be increasing (last
    loss no larger than the first beyond ``tolerance``).
    """
    sizes = list(sizes)
    if len(sizes) < 2:
        raise ValueError("need at least two sizes to assess a trend")
    gens = spawn_generators(seed, len(sizes))
    losses: List[float] = []
    for n, gen in zip(sizes, gens):
        instance = instance_factory(n, gen)
        est = monte_carlo_gain(instance, mechanism, rounds=rounds, seed=gen)
        losses.append(max(0.0, -est.gain))
    final = losses[-1]
    trend_ok = final <= losses[0] + tolerance
    return DnhVerdict(
        sizes=tuple(sizes),
        losses=tuple(losses),
        final_loss=final,
        trend_decreasing=trend_ok,
        satisfied=final <= tolerance and trend_ok,
    )


def empirical_spg(
    instances: Sequence[ProblemInstance],
    mechanism: "DelegationMechanism",
    gamma: float,
    delegate_minimum: Callable[[int], float],
    rounds: int = 200,
    seed: SeedLike = 0,
) -> SpgVerdict:
    """Empirical SPG (Definition 5) over a collection of instances.

    Instances that fail the delegate restriction are excluded — the
    definition only quantifies over ``(M, G)`` pairs satisfying
    ``Delegate(n) ≥ f(n)``.  The verdict holds when every remaining
    instance's measured gain is at least ``gamma`` (within 2 standard
    errors).
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    gens = spawn_generators(seed, len(instances))
    gains: List[float] = []
    for instance, gen in zip(instances, gens):
        if not check_delegate_restriction(
            instance, mechanism, delegate_minimum(instance.num_voters),
            rounds=5, seed=gen,
        ):
            continue
        est = monte_carlo_gain(instance, mechanism, rounds=rounds, seed=gen)
        gains.append(est.gain + 2.0 * est.std_error)
    if not gains:
        return SpgVerdict(gamma, (), float("nan"), 0, False)
    min_gain = min(gains)
    return SpgVerdict(
        gamma=gamma,
        gains=tuple(gains),
        min_gain=min_gain,
        num_instances=len(gains),
        satisfied=min_gain >= gamma,
    )
