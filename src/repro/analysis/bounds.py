"""Classical tail bounds and the paper's Lemma 5/6 instantiations.

Lemma 6: with sinks of weights ``w_1 … w_m`` (max ``w``, total ``n``),
Hoeffding over the at-least-``n/w`` sinks gives

    P[|X − μ(X)| ≥ √(n^{1+ε}) · w / c]  ≤  e^{−Ω(n^ε)}.

These functions return the paper's predicted deviation radii and failure
probabilities so experiments can compare measured deviations against
them.
"""

from __future__ import annotations

import math
from typing import Sequence


def hoeffding_tail_bound(ranges_sq_sum: float, t: float) -> float:
    """Two-sided Hoeffding bound ``P[|S − E S| ≥ t] ≤ 2 e^{−2t²/Σ(b−a)²}``."""
    if ranges_sq_sum <= 0:
        raise ValueError(f"sum of squared ranges must be positive, got {ranges_sq_sum}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    return min(1.0, 2.0 * math.exp(-2.0 * t * t / ranges_sq_sum))


def chernoff_lower_tail_bound(mu: float, delta: float) -> float:
    """Multiplicative Chernoff lower tail ``P[X ≤ (1−δ)μ] ≤ e^{−δ²μ/2}``."""
    if mu < 0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return min(1.0, math.exp(-delta * delta * mu / 2.0))


def lemma6_min_sinks(n: int, max_weight: int) -> float:
    """The sink-count lower bound ``n / w`` used in Lemma 6's proof."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_weight <= 0:
        raise ValueError(f"max_weight must be positive, got {max_weight}")
    return n / max_weight


def lemma5_deviation(n: int, epsilon: float, max_weight: int, c: float = 1.0) -> float:
    """Lemma 5's deviation radius ``(1/c) · √(n^{1+ε}) · w``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if max_weight <= 0:
        raise ValueError(f"max_weight must be positive, got {max_weight}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    return math.sqrt(float(n) ** (1.0 + epsilon)) * max_weight / c


def lemma5_failure_probability(n: int, epsilon: float, constant: float = 1.0) -> float:
    """Lemma 5's failure probability shape ``e^{−constant · n^ε}``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")
    return math.exp(-constant * float(n) ** epsilon)


def theorem4_weight_bound(max_degree: int, alpha: float) -> float:
    """Theorem 4's structural cap on any sink's weight.

    Delegation chains have length at most ``⌈1/α⌉`` (each hop gains ≥ α
    competency), and each voter has at most Δ neighbours, so a sink
    gathers at most ``Σ_{d=0..D} Δ^d < Δ^{D+1}`` votes with
    ``D = ⌈1/α⌉``.  Small Δ therefore caps every sink's weight — the
    mechanism-independent engine behind Theorem 4.
    """
    import math

    if max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")
    if not alpha > 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    depth = math.ceil(1.0 / alpha)
    if max_degree <= 1:
        return float(depth + 1)
    return float(max_degree) ** (depth + 1)


def hoeffding_weighted_deviation_bound(
    weights: Sequence[float], t: float
) -> float:
    """Hoeffding bound for a weighted Bernoulli sum with the given weights.

    Each summand ``w_i · x_i`` ranges over ``[0, w_i]``, so
    ``Σ (b_i − a_i)² = Σ w_i²``.
    """
    sq = sum(float(w) ** 2 for w in weights)
    if sq == 0:
        return 0.0 if t > 0 else 1.0
    return hoeffding_tail_bound(sq, t)
