"""Exact expectations of mechanism behaviour, without sampling.

Local mechanisms expose their per-voter output distribution
(:meth:`~repro.mechanisms.base.LocalDelegationMechanism.distribution`),
so several quantities the experiments estimate by Monte Carlo have
closed forms:

* the expected number of delegators (Definition 2's quantity in
  expectation),
* each voter's expected delegated *inflow* (how many delegators name
  it),
* the expected one-step increase in the number of correct votes — the
  Lemma 7 quantity ``μ(Y) − μ(X) = Σ_i (1 − z_i)(p̄_{J(i)} − p_i)``.

Tests cross-check the Monte Carlo estimators against these exact
values; experiments use them for sanity columns.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.instance import ProblemInstance
from repro.mechanisms.base import LocalDelegationMechanism


def delegation_probabilities(
    instance: ProblemInstance, mechanism: LocalDelegationMechanism
) -> np.ndarray:
    """Per-voter probability of delegating (1 − mass on "vote")."""
    out = np.empty(instance.num_voters)
    for voter in range(instance.num_voters):
        dist = mechanism.distribution(instance.local_view(voter))
        out[voter] = 1.0 - dist.get(None, 0.0)
    return out


def expected_num_delegators(
    instance: ProblemInstance, mechanism: LocalDelegationMechanism
) -> float:
    """Exact ``E[#delegators]`` under one mechanism draw."""
    return float(delegation_probabilities(instance, mechanism).sum())


def expected_inflow(
    instance: ProblemInstance, mechanism: LocalDelegationMechanism
) -> np.ndarray:
    """Expected number of voters delegating *directly* to each voter.

    The one-step version of sink weight: the full transitive weight has
    no product form (delegations chain), but the direct inflow already
    identifies where weight will concentrate.
    """
    inflow = np.zeros(instance.num_voters)
    for voter in range(instance.num_voters):
        dist = mechanism.distribution(instance.local_view(voter))
        for target, mass in dist.items():
            if target is not None:
                inflow[target] += mass
    return inflow


def expected_vote_lift(
    instance: ProblemInstance, mechanism: LocalDelegationMechanism
) -> float:
    """Exact one-step increase in expected correct votes.

    ``Σ_i Σ_{j ∈ J(i)} P[i → j] (p_j − p_i)`` — each delegation replaces
    the delegator's Bernoulli parameter with its delegate's.  This is a
    *lower bound* on the full lift of the realised process (delegates may
    themselves delegate upward, only increasing the final parameter), and
    it already dominates ``α · E[#delegators]`` — Lemma 7's floor.
    """
    p = instance.competencies
    lift = 0.0
    for voter in range(instance.num_voters):
        dist = mechanism.distribution(instance.local_view(voter))
        for target, mass in dist.items():
            if target is not None:
                lift += mass * (float(p[target]) - float(p[voter]))
    return lift


def lemma7_floor(
    instance: ProblemInstance, mechanism: LocalDelegationMechanism
) -> float:
    """Lemma 7's guaranteed lift: ``α · E[#delegators]``."""
    return instance.alpha * expected_num_delegators(instance, mechanism)


def expected_weight_histogram(
    instance: ProblemInstance,
    mechanism: LocalDelegationMechanism,
    rounds: int,
    seed=None,
) -> Dict[int, float]:
    """Empirical mean histogram of sink weights over sampled forests.

    Convenience for experiments: maps weight value → average count per
    forest.  (Exact weight distributions have no product form.)
    """
    from repro._util.rng import spawn_generators

    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    totals: Dict[int, float] = {}
    for gen in spawn_generators(seed, rounds):
        forest = mechanism.sample_delegations(instance, gen)
        for sink in forest.sinks:
            w = forest.weight(sink)
            totals[w] = totals.get(w, 0.0) + 1.0
    return {w: c / rounds for w, c in sorted(totals.items())}
