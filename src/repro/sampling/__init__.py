"""Recycle sampling (Section 3.1): the paper's dependency model.

Provides the :class:`RecycleSamplingGraph` of Definition 6, a sampler
realizing the associated random variable ``X_n``, partition machinery,
the Lemma 1/2 concentration bounds, and a builder that converts a
delegation-mechanism run into its recycle-sampling abstraction (the step
Lemma 7 performs for Algorithm 1).
"""

from repro.sampling.recycle import RecycleNode, RecycleSamplingGraph
from repro.sampling.partitions import competency_partitions, partition_complexity
from repro.sampling.concentration import (
    lemma1_deviation_bound,
    lemma2_lower_bound,
    recycle_failure_probability_bound,
)
from repro.sampling.builders import recycle_graph_from_mechanism_run

__all__ = [
    "RecycleNode",
    "RecycleSamplingGraph",
    "competency_partitions",
    "partition_complexity",
    "lemma1_deviation_bound",
    "lemma2_lower_bound",
    "recycle_failure_probability_bound",
    "recycle_graph_from_mechanism_run",
]
