"""Partitions of voters by competency level (the Lemma 7 construction).

The proof of Lemma 7 splits ``[0, 1]`` into intervals of width ``α``; no
voter approves another voter in its own interval, so each interval is an
antichain of the approval order and the partition complexity of the
induced recycle-sampling graph is at most ``⌈1/α⌉``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.sampling.recycle import RecycleSamplingGraph


def competency_partitions(
    competencies: Sequence[float], alpha: float
) -> List[List[int]]:
    """Partition voter indices into ``α``-width competency bands.

    Band ``t`` contains voters with ``p ∈ [t·α, (t+1)·α)`` (the top band
    is closed at 1).  Empty bands are dropped; bands are returned from the
    highest competency level downwards, matching the realisation order of
    the delegation recycle graph (most competent first).
    """
    if not alpha > 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    num_bands = max(1, math.ceil(1.0 / alpha))
    bands: List[List[int]] = [[] for _ in range(num_bands)]
    for voter, p in enumerate(competencies):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"competency {p} of voter {voter} outside [0, 1]")
        band = min(int(p / alpha), num_bands - 1)
        bands[band].append(voter)
    return [band for band in reversed(bands) if band]


def partition_complexity(graph: RecycleSamplingGraph) -> int:
    """Partition complexity ``c`` of a recycle sampling graph.

    Alias of :meth:`RecycleSamplingGraph.partition_complexity`, exposed
    here so analysis code can treat it as a free function.
    """
    return graph.partition_complexity()


def max_partition_complexity(alpha: float) -> int:
    """The trivial mechanism-independent bound ``c ≤ ⌈1/α⌉``."""
    if not alpha > 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    return math.ceil(1.0 / alpha)
