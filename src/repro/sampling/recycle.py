"""Recycle sampling graphs (Definition 6).

A ``(j, c, n)``-recycle sampling graph has ordered vertices
``v_0 … v_{n-1}`` (index 0 plays the role of the paper's ``v_1``) where:

* the first ``j`` vertices have no out-edges — they are always "fresh"
  Bernoulli draws (in the delegation application these are the top-``j``
  voters, who never delegate);
* each later vertex ``v_i`` may have directed edges to a prefix of
  earlier vertices (its *successors* — the voters it could delegate to);
* vertex ``v_i`` carries a pair ``(z_i, p_i)``: with probability ``z_i``
  its variable ``x_i`` is a fresh Bernoulli(``p_i``) draw, with
  probability ``1 − z_i`` it *recycles* the realised value of a uniformly
  random successor;
* the longest directed path (the *partition complexity*) has at most
  ``c`` vertices.

``X_n = Σ x_i`` is the recycle sampling random variable — the abstraction
of the number of correct votes under a delegation mechanism.  Lemma 2
shows ``X_n`` concentrates almost as well as an independent sum, degraded
only by a factor proportional to ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_probability


@dataclass(frozen=True)
class RecycleNode:
    """One vertex of a recycle sampling graph.

    Attributes
    ----------
    fresh_prob:
        ``z_i`` — probability the node draws a fresh Bernoulli rather
        than recycling a successor's value.
    bernoulli_param:
        ``p_i`` — parameter of the fresh Bernoulli draw.
    successors:
        Indices of earlier vertices whose realised value may be recycled,
        chosen uniformly.  Must all be strictly smaller than this node's
        own index; empty iff the node is always fresh.
    """

    fresh_prob: float
    bernoulli_param: float
    successors: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_probability("fresh_prob", self.fresh_prob)
        check_probability("bernoulli_param", self.bernoulli_param)
        if not self.successors and self.fresh_prob < 1.0:
            raise ValueError(
                "a node without successors must be always fresh (fresh_prob=1)"
            )


class RecycleSamplingGraph:
    """A ``(j, c, n)``-recycle sampling graph and its sampler.

    Parameters
    ----------
    nodes:
        The ordered vertices.  ``nodes[i].successors`` must contain only
        indices ``< i``.
    independent_prefix:
        The parameter ``j``: the first ``j`` nodes must have no
        successors.  Defaults to the largest prefix without successors.
    """

    def __init__(
        self,
        nodes: Sequence[RecycleNode],
        independent_prefix: int = 0,
    ) -> None:
        self._nodes: Tuple[RecycleNode, ...] = tuple(nodes)
        n = len(self._nodes)
        for i, node in enumerate(self._nodes):
            for s in node.successors:
                if not 0 <= s < i:
                    raise ValueError(
                        f"node {i} has successor {s}; successors must be "
                        f"earlier vertices"
                    )
        if not 0 <= independent_prefix <= n:
            raise ValueError(
                f"independent_prefix must lie in [0, {n}], got {independent_prefix}"
            )
        for i in range(independent_prefix):
            if self._nodes[i].successors:
                raise ValueError(
                    f"node {i} lies in the independent prefix of size "
                    f"{independent_prefix} but has successors"
                )
        self._j = independent_prefix

    # -- structure ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of vertices ``n``."""
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[RecycleNode, ...]:
        """The ordered vertices."""
        return self._nodes

    @property
    def independent_prefix(self) -> int:
        """The parameter ``j`` — size of the successor-free prefix."""
        return self._j

    def partition_complexity(self) -> int:
        """Number of vertices on the longest directed path (``c``).

        Computed by DP over the DAG (edges point to smaller indices); an
        isolated vertex has complexity 1.
        """
        n = self.num_nodes
        if n == 0:
            return 0
        depth = [1] * n
        for i, node in enumerate(self._nodes):
            for s in node.successors:
                depth[i] = max(depth[i], depth[s] + 1)
        return max(depth)

    def is_recycle_graph(self, j: int, c: int) -> bool:
        """Whether this is a valid ``(j, c, n)``-recycle sampling graph."""
        return self._j >= j and self.partition_complexity() <= c

    # -- distributional quantities -----------------------------------------

    def expectations(self) -> np.ndarray:
        """``E[x_i]`` for every node, by the recycling recurrence.

        ``E[x_i] = z_i p_i + (1 − z_i) · mean_{s ∈ succ(i)} E[x_s]``.
        """
        out = np.empty(self.num_nodes)
        for i, node in enumerate(self._nodes):
            fresh = node.fresh_prob * node.bernoulli_param
            if node.successors:
                recycled = (1.0 - node.fresh_prob) * float(
                    np.mean([out[s] for s in node.successors])
                )
            else:
                recycled = 0.0
            out[i] = fresh + recycled
        return out

    def mean_sum(self, upto: int = -1) -> float:
        """``μ(X_i) = E[Σ_{k ≤ i} x_k]`` (full sum when ``upto`` is -1)."""
        exp = self.expectations()
        if upto == -1:
            return float(exp.sum())
        if not 0 <= upto <= self.num_nodes:
            raise ValueError(f"upto must lie in [0, {self.num_nodes}], got {upto}")
        return float(exp[:upto].sum())

    # -- sampling -------------------------------------------------------------

    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Realise the graph once; returns the 0/1 vector ``(x_0 … x_{n-1})``.

        Realisation follows Definition 6: for increasing ``i``, ``x_i`` is
        fresh with probability ``z_i``, otherwise equal to the already
        realised value of a uniformly random successor.
        """
        gen = as_generator(rng)
        n = self.num_nodes
        values = np.empty(n, dtype=np.int8)
        fresh_draws = gen.random(n)
        bern_draws = gen.random(n)
        for i, node in enumerate(self._nodes):
            if not node.successors or fresh_draws[i] < node.fresh_prob:
                values[i] = 1 if bern_draws[i] < node.bernoulli_param else 0
            else:
                pick = node.successors[int(gen.integers(len(node.successors)))]
                values[i] = values[pick]
        return values

    def sample_sum(self, rng: SeedLike = None) -> int:
        """One realisation of ``X_n``."""
        return int(self.sample(rng).sum())

    def sample_prefix_sums(self, rng: SeedLike = None) -> np.ndarray:
        """One realisation of the prefix sums ``(X_1 … X_n)``."""
        return np.cumsum(self.sample(rng))

    def __repr__(self) -> str:
        return (
            f"RecycleSamplingGraph(n={self.num_nodes}, j={self._j}, "
            f"c={self.partition_complexity()})"
        )

    # -- constructors ------------------------------------------------------------

    @classmethod
    def independent(
        cls, params: Sequence[float]
    ) -> "RecycleSamplingGraph":
        """A recycle graph with no edges: an ordinary independent sum."""
        nodes = [RecycleNode(1.0, float(p)) for p in params]
        return cls(nodes, independent_prefix=len(nodes))

    @classmethod
    def layered(
        cls,
        layer_params: Sequence[Sequence[float]],
        fresh_prob: float,
    ) -> "RecycleSamplingGraph":
        """Synthetic layered graph used by the Lemma 1/2 experiments.

        Layer 0 nodes are independent; each node in layer ``t > 0``
        recycles (with probability ``1 − fresh_prob``) a uniformly random
        node of layer ``t − 1``.  The partition complexity equals the
        number of layers.
        """
        check_probability("fresh_prob", fresh_prob)
        nodes: List[RecycleNode] = []
        prev_layer: List[int] = []
        for t, layer in enumerate(layer_params):
            if not layer:
                raise ValueError(f"layer {t} is empty")
            current: List[int] = []
            for p in layer:
                idx = len(nodes)
                if t == 0:
                    nodes.append(RecycleNode(1.0, float(p)))
                else:
                    nodes.append(
                        RecycleNode(fresh_prob, float(p), tuple(prev_layer))
                    )
                current.append(idx)
            prev_layer = current
        return cls(nodes, independent_prefix=len(layer_params[0]))
