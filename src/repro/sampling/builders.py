"""Build recycle-sampling graphs from delegation mechanisms.

This is the abstraction step of Lemma 7: running a local delegation
mechanism on an instance induces exactly a recycle-sampling process —
order voters from most to least competent; a voter either votes fresh
(Bernoulli with its own competency) or recycles the realised outcome of
a uniformly random approved neighbour, all of whom appear earlier in the
order.  The builder extracts ``(z_i, p_i, successors)`` from the
mechanism's per-voter output distribution.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.instance import ProblemInstance
from repro.mechanisms.base import LocalDelegationMechanism
from repro.sampling.recycle import RecycleNode, RecycleSamplingGraph


def recycle_graph_from_mechanism_run(
    instance: ProblemInstance,
    mechanism: LocalDelegationMechanism,
    tolerance: float = 1e-9,
) -> Tuple[RecycleSamplingGraph, np.ndarray]:
    """The recycle-sampling abstraction of ``mechanism`` on ``instance``.

    Returns ``(graph, order)`` where ``order[k]`` is the voter occupying
    recycle-node ``k`` (voters sorted descending by competency, ties by
    index).  Requires the mechanism's delegation mass to be uniform over
    the approved neighbours — the structure Definition 6 models; a
    non-uniform mechanism raises ``ValueError``.
    """
    p = instance.competencies
    # Descending competency; stable on ties so the map is deterministic.
    order = np.argsort(-p, kind="stable")
    position = np.empty(instance.num_voters, dtype=np.int64)
    position[order] = np.arange(instance.num_voters)

    nodes: List[RecycleNode] = []
    prefix = 0
    prefix_open = True
    for k, voter in enumerate(order):
        voter = int(voter)
        view = instance.local_view(voter)
        dist = mechanism.distribution(view)
        z = float(dist.get(None, 0.0))
        targets = [t for t in dist if t is not None]
        if targets:
            masses = [dist[t] for t in targets]
            expected = (1.0 - z) / len(targets)
            if any(abs(m - expected) > tolerance for m in masses):
                raise ValueError(
                    f"voter {voter} delegates non-uniformly; recycle "
                    f"sampling models uniform delegation only"
                )
        successors = tuple(sorted(int(position[t]) for t in targets))
        if successors and max(successors) >= k:
            raise ValueError(
                f"voter {voter} may delegate to an equally-or-less "
                f"competent voter; approval with alpha > 0 should prevent this"
            )
        if z >= 1.0 - tolerance or not successors:
            node = RecycleNode(1.0, float(p[voter]))
        else:
            node = RecycleNode(z, float(p[voter]), successors)
        nodes.append(node)
        if prefix_open and not node.successors:
            prefix = k + 1
        else:
            prefix_open = False
    graph = RecycleSamplingGraph(nodes, independent_prefix=prefix)
    return graph, order
