"""Concentration bounds for recycle sampling (Lemmas 1 and 2).

These functions compute the paper's *predicted* deviation thresholds and
failure probabilities so that experiments can check empirical samples
against them.  The Ω/Θ constants hidden in the paper's asymptotics are
exposed as explicit parameters (default 1) — the experiments measure the
decay exponents, not the constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sampling.recycle import RecycleSamplingGraph


def lemma1_deviation_bound(mu: float, j: int, epsilon: float) -> float:
    """Lemma 1 threshold: ``(1 − ε / j^{1/3}) · μ(X_i)``.

    With probability at least ``1 − e^{−Ω(j^{1/3})}``, every prefix sum
    ``X_i`` with ``i > j`` stays above this fraction of its mean.
    """
    if j <= 0:
        raise ValueError(f"j must be positive, got {j}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return (1.0 - epsilon / j ** (1.0 / 3.0)) * mu


def lemma2_lower_bound(
    mu_n: float, n: int, j: int, c: int, epsilon: float
) -> float:
    """Lemma 2 threshold: ``μ(X_n) − c · ε · n / j^{1/3}``.

    A ``(j, c, n)``-recycle-sampled sum exceeds this with probability at
    least ``1 − e^{−Ω(j^{1/3})}``.
    """
    if j <= 0 or n <= 0 or c <= 0:
        raise ValueError(f"n, j, c must be positive, got n={n}, j={j}, c={c}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return mu_n - c * epsilon * n / j ** (1.0 / 3.0)


def recycle_failure_probability_bound(
    j: int, constant: float = 1.0
) -> float:
    """The Lemma 1/2 failure probability shape ``e^{−constant · j^{1/3}}``."""
    if j <= 0:
        raise ValueError(f"j must be positive, got {j}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")
    return math.exp(-constant * j ** (1.0 / 3.0))


def empirical_failure_rate(
    graph: RecycleSamplingGraph,
    epsilon: float,
    rounds: int,
    rng,
) -> float:
    """Empirical probability that ``X_n`` falls below the Lemma 2 bound.

    Samples ``rounds`` realisations and counts how often the sum drops
    below ``μ(X_n) − c · ε · n / j^{1/3}``.  Used by the L1L2 experiment
    to confirm the failure probability decays in ``j``.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    n = graph.num_nodes
    j = max(1, graph.independent_prefix)
    c = graph.partition_complexity()
    mu = graph.mean_sum()
    bound = lemma2_lower_bound(mu, n, j, c, epsilon)
    failures = 0
    for _ in range(rounds):
        if graph.sample_sum(rng) < bound:
            failures += 1
    return failures / rounds


def chernoff_lower_tail(mu: float, delta: float) -> float:
    """Multiplicative Chernoff bound ``P[X ≤ (1−δ)μ] ≤ e^{−δ²μ/2}``.

    The classical bound Lemma 1 builds on, for independent Bernoulli sums.
    """
    if mu < 0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return math.exp(-delta * delta * mu / 2.0)


def deviation_exponent_fit(js: np.ndarray, failure_rates: np.ndarray) -> float:
    """Fit ``log failure ≈ −a · j^{1/3}`` and return the slope ``a``.

    Zero failure rates are clipped to one-half observation so the log is
    defined; a positive fitted slope confirms the Lemma 1/2 decay shape.
    """
    js = np.asarray(js, dtype=float)
    rates = np.asarray(failure_rates, dtype=float)
    if js.shape != rates.shape or js.size < 2:
        raise ValueError("need at least two (j, rate) points of equal shape")
    rates = np.clip(rates, 1e-12, 1.0)
    x = js ** (1.0 / 3.0)
    y = np.log(rates)
    slope = np.polyfit(x, y, 1)[0]
    return float(-slope)
