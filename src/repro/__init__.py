"""repro — a reproduction of *When is Liquid Democracy Possible?*
(Chatterjee, Gilbert, Schmid, Svoboda, Yeo; PODC 2025).

A simulation and analysis library for liquid democracy over voting
graphs: problem instances with competency vectors, local delegation
mechanisms (the paper's Algorithms 1–2 and Theorem 5 mechanism plus
baselines and Section 6 extensions), exact and Monte Carlo evaluation of
the correct-decision probability, the recycle-sampling dependency model
(Definition 6), and experiment harnesses reproducing every figure, lemma
and theorem of the paper.

Quickstart::

    from repro import (
        ProblemInstance, complete_graph, linear_competencies,
        ApprovalThreshold, monte_carlo_gain,
    )

    n = 500
    instance = ProblemInstance(
        complete_graph(n), linear_competencies(n, 0.3, 0.7), alpha=0.05
    )
    mechanism = ApprovalThreshold(lambda nn: nn ** (1 / 3))
    estimate = monte_carlo_gain(instance, mechanism, rounds=200, seed=7)
    print(f"gain over direct voting: {estimate.gain:+.4f}")
"""

from repro.core import (
    ApprovalGraphStats,
    ApprovalOracle,
    approval_graph_stats,
    potential_hub_voters,
    BoundedCompetency,
    CompleteGraph,
    GraphRestriction,
    LocalView,
    MaxDegreeAtMost,
    MinDegreeAtLeast,
    PlausibleChangeability,
    ProblemInstance,
    RandomRegular,
    RestrictionSet,
    bounded_uniform_competencies,
    constant_competencies,
    linear_competencies,
    plausible_changeability,
    two_block_competencies,
)
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    complete_graph,
    connected_caveman_graph,
    cycle_graph,
    degree_statistics,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_bounded_degree_graph,
    random_min_degree_graph,
    random_regular_graph,
    star_graph,
    star_of_cliques_graph,
    structural_asymmetry,
    watts_strogatz_graph,
)
from repro.mechanisms import (
    AbstentionMechanism,
    AdversarialConcentrator,
    ApprovalThreshold,
    Ballot,
    CappedRandomApproved,
    DelegationMechanism,
    DirectVoting,
    FractionApproved,
    GreedyBest,
    LeastCompetentApproved,
    LocalDelegationMechanism,
    MultiDelegateWeighted,
    RandomApproved,
    SampledNeighbourhood,
)
from repro.delegation import (
    DelegationCycleError,
    DelegationGraph,
    WeightProfile,
    render_forest,
    render_summary,
    weight_profile,
)
from repro.cache import EstimateCache
from repro.voting import (
    BatchEstimator,
    CorrectnessEstimate,
    TiePolicy,
    direct_voting_probability,
    estimate_correct_probability,
    forest_correct_probability,
)
from repro.sampling import (
    RecycleNode,
    RecycleSamplingGraph,
    recycle_graph_from_mechanism_run,
)
from repro.analysis import (
    Certificate,
    ConditionAudit,
    DnhVerdict,
    GainEstimate,
    SpgVerdict,
    audit_lemma3_conditions,
    audit_lemma5_conditions,
    banzhaf_indices,
    certificates_for,
    certify,
    check_delegate_restriction,
    dictator_index,
    empirical_dnh,
    empirical_spg,
    exact_gain,
    forest_banzhaf,
    lemma3_loss_probability_bound,
    monte_carlo_gain,
    normalized_banzhaf,
    power_concentration,
    shapley_shubik_indices,
    summarize_certificates,
)
from repro.core.distributions import (
    BetaCompetency,
    CompetencyDistribution,
    MixtureCompetency,
    PointMass,
    TruncatedNormalCompetency,
    UniformCompetency,
)
from repro.mechanisms.weighted_majority import WeightedMajorityDelegation
from repro.simulation import (
    ElectionSeries,
    NoDrift,
    OrnsteinUhlenbeckDrift,
    RandomWalkDrift,
    ShockDrift,
)
from repro.voting.dag import DelegateWeights, WeightedDelegationDag
from repro.attacks import (
    AdaptiveLemmaProbe,
    AttackMove,
    AttackResult,
    AttackScenario,
    AttackSearch,
    CollusionRing,
    CompetencyMisreport,
    SybilFlood,
    VerificationReport,
    ViolationCertificate,
    benign_star_instance,
    build_scenario,
    scenario_spec,
    verify_certificate,
)
from repro.service import (
    BackgroundServer,
    EstimationServer,
    PowerThreshold,
    ServerConfig,
    ServiceClient,
    ServiceError,
    mechanism_spec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ProblemInstance",
    "LocalView",
    "ApprovalOracle",
    "GraphRestriction",
    "RestrictionSet",
    "CompleteGraph",
    "RandomRegular",
    "MaxDegreeAtMost",
    "MinDegreeAtLeast",
    "PlausibleChangeability",
    "BoundedCompetency",
    "constant_competencies",
    "linear_competencies",
    "bounded_uniform_competencies",
    "two_block_competencies",
    "plausible_changeability",
    # graphs
    "Graph",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "connected_caveman_graph",
    "star_of_cliques_graph",
    "random_bounded_degree_graph",
    "random_min_degree_graph",
    "degree_statistics",
    "structural_asymmetry",
    # mechanisms
    "DelegationMechanism",
    "LocalDelegationMechanism",
    "Ballot",
    "DirectVoting",
    "ApprovalThreshold",
    "RandomApproved",
    "SampledNeighbourhood",
    "FractionApproved",
    "GreedyBest",
    "CappedRandomApproved",
    "AbstentionMechanism",
    "MultiDelegateWeighted",
    # delegation
    "DelegationGraph",
    "DelegationCycleError",
    "WeightProfile",
    "weight_profile",
    "render_forest",
    "render_summary",
    "ApprovalGraphStats",
    "approval_graph_stats",
    "potential_hub_voters",
    # voting
    "TiePolicy",
    "direct_voting_probability",
    "forest_correct_probability",
    "estimate_correct_probability",
    "BatchEstimator",
    "CorrectnessEstimate",
    # persistent estimate cache
    "EstimateCache",
    # sampling
    "RecycleNode",
    "RecycleSamplingGraph",
    "recycle_graph_from_mechanism_run",
    # analysis
    "GainEstimate",
    "exact_gain",
    "monte_carlo_gain",
    "DnhVerdict",
    "SpgVerdict",
    "empirical_dnh",
    "empirical_spg",
    "check_delegate_restriction",
    "ConditionAudit",
    "audit_lemma3_conditions",
    "audit_lemma5_conditions",
    "lemma3_loss_probability_bound",
    "Certificate",
    "certify",
    "certificates_for",
    "summarize_certificates",
    # distributions (probabilistic-competency extension)
    "CompetencyDistribution",
    "PointMass",
    "UniformCompetency",
    "BetaCompetency",
    "TruncatedNormalCompetency",
    "MixtureCompetency",
    # weighted-majority DAG extension
    "DelegateWeights",
    "WeightedDelegationDag",
    "WeightedMajorityDelegation",
    # adversaries and power analysis
    "AdversarialConcentrator",
    "LeastCompetentApproved",
    "banzhaf_indices",
    "normalized_banzhaf",
    "shapley_shubik_indices",
    "forest_banzhaf",
    "power_concentration",
    "dictator_index",
    # adversarial manipulation (repro.attacks)
    "AttackScenario",
    "AttackMove",
    "AttackSearch",
    "AttackResult",
    "CompetencyMisreport",
    "CollusionRing",
    "SybilFlood",
    "AdaptiveLemmaProbe",
    "ViolationCertificate",
    "VerificationReport",
    "verify_certificate",
    "scenario_spec",
    "build_scenario",
    "benign_star_instance",
    # repeated-election simulation
    "ElectionSeries",
    "NoDrift",
    "RandomWalkDrift",
    "OrnsteinUhlenbeckDrift",
    "ShockDrift",
    # estimation service
    "ServiceClient",
    "ServiceError",
    "ServerConfig",
    "EstimationServer",
    "BackgroundServer",
    "PowerThreshold",
    "mechanism_spec",
]
