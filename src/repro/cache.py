"""Persistent content-addressed cache for Monte Carlo estimates.

Re-running an experiment sweep recomputes every grid point from scratch
even though nothing changed: the instance, the mechanism, the estimator
parameters and the seed fully determine the estimate.  This module keys
each estimate by a SHA-256 digest of exactly those inputs and stores the
result on disk (default ``.repro-cache/``), so repeated sweeps skip
already-computed grid points and interrupted runs resume where they
died.

Key schema (``SCHEMA_VERSION`` is part of the digest, so any change to
the semantics of a component invalidates old entries wholesale):

* **instance** — voter count, ``alpha``, a digest of the competency
  array bytes and of the graph's CSR adjacency;
* **mechanism** — :meth:`~repro.mechanisms.base.DelegationMechanism.
  cache_token`: a stable description of the mechanism's behaviour *on
  this instance* (threshold mechanisms tokenise their per-degree
  threshold values, so two lambdas computing the same ``j`` share
  entries; unpicklable mechanisms without a token bypass the cache);
* **seed** — the integer / ``SeedSequence`` identity, or for a live
  ``Generator`` its bit-generator state *at call time*;
* **estimator params** — estimator name, rounds, adaptive knobs,
  effective engine, tie policy, ``exact_conditional``.  ``n_jobs`` is
  deliberately excluded: estimates are ``n_jobs``-invariant, so entries
  are shared across worker counts.

Entries additionally record the generator state *after* the estimate
when the caller passed a live ``Generator``: on a cache hit the caller's
generator is fast-forwarded to that state, so a cache-warm sweep leaves
every downstream stream — and therefore every downstream number —
bit-identical to the cold run.

Corrupt or truncated entries (killed mid-write, disk errors, stale
schema) are treated as misses and deleted; the estimate is recomputed
and rewritten.

**Concurrent writers.**  The store is safe for any number of concurrent
processes sharing one directory — the sharded estimation service points
every worker at the same cache.  Each write goes to an ``O_EXCL``
temporary file first, then *claims* the entry atomically: a hard link
from the temp file to the final name succeeds for exactly one writer
(first writer wins; losers discard their temp file — by construction
both hold the identical deterministic entry for that digest).  Where
hard links are unavailable the claim falls back to ``os.replace``,
which is still atomic (last writer wins, same bytes).  Readers never
see a partial entry: the final name either does not exist or holds a
fully-written file, and anything torn by a crash mid-``mkstemp`` stays
behind as an ignored ``.tmp-*`` file.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

SCHEMA_VERSION = 1
"""Bumped whenever digest components or the entry layout change."""

DEFAULT_CACHE_DIR = ".repro-cache"
"""Where estimates land unless the caller picks a directory."""

DEFAULT_OP = "estimate"
"""Op label charged for lookups outside any :func:`label_cache_ops`."""

OPSTATS_DIR = ".opstats"
"""Subdirectory of the cache root holding per-process op-stat sidecars."""

_OPSTATS_FLUSH_EVERY = 64
"""Lookups between sidecar flushes (also flushed on every ``stats()``)."""

_op_label = threading.local()
_sidecar_ids = itertools.count()


@contextmanager
def label_cache_ops(op: str) -> Iterator[None]:
    """Attribute cache lookups on this thread to operation ``op``.

    The estimation service wraps each request's compute in the request's
    op (``estimate``, ``sweep``, ``delta``, …) so hit/miss counters can
    be reported per operation.  Thread-local on purpose: the service
    runs each request synchronously on one worker thread, and a
    ``contextvars`` context would *not* propagate into executor threads.
    Nestable; the previous label is restored on exit.
    """
    previous = getattr(_op_label, "op", None)
    _op_label.op = op
    try:
        yield
    finally:
        _op_label.op = previous


def current_cache_op() -> str:
    """The op label charged for cache lookups on this thread."""
    return getattr(_op_label, "op", None) or DEFAULT_OP

_ESTIMATE_FIELDS = (
    "probability",
    "rounds",
    "std_error",
    "ci_low",
    "ci_high",
    "converged",
)


def _sha256_hex(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def _canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def seed_token(seed: Any) -> Optional[Any]:
    """A JSON-able identity of ``seed``, or ``None`` when uncacheable.

    ``None`` seeds mean fresh entropy — two calls never see the same
    stream, so caching them would never hit and only pollute the store.
    A live :class:`~numpy.random.Generator` is identified by its
    bit-generator state at call time, which is exactly what determines
    the estimate the serial engine produces.
    """
    if seed is None:
        return None
    if isinstance(seed, (int, np.integer)):
        return ["int", int(seed)]
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:
            return None
        if isinstance(entropy, (int, np.integer)):
            entropy_token: Any = int(entropy)
        else:
            entropy_token = [int(e) for e in entropy]
        return [
            "seed_sequence",
            entropy_token,
            [int(k) for k in seed.spawn_key],
            int(seed.pool_size),
        ]
    if isinstance(seed, np.random.Generator):
        return ["generator", seed.bit_generator.state]
    return None


def instance_token(instance: Any) -> Dict[str, Any]:
    """Digest components of a :class:`~repro.core.instance.ProblemInstance`."""
    indptr, indices = instance.graph.adjacency_csr()
    return {
        "num_voters": int(instance.num_voters),
        "alpha": float(instance.alpha),
        "competencies": _sha256_hex(
            np.ascontiguousarray(instance.competencies, dtype=np.float64).tobytes()
        ),
        "graph": _sha256_hex(
            np.ascontiguousarray(indptr, dtype=np.int64).tobytes(),
            np.ascontiguousarray(indices, dtype=np.int64).tobytes(),
        ),
    }


def estimate_digest(
    instance: Any,
    mechanism: Any,
    seed: Any,
    params: Mapping[str, Any],
) -> Optional[str]:
    """The cache key for one estimate, or ``None`` when uncacheable.

    Uncacheable means: fresh-entropy seed, or a mechanism whose
    behaviour cannot be tokenised stably (see
    :meth:`~repro.mechanisms.base.DelegationMechanism.cache_token`).
    """
    stoken = seed_token(seed)
    if stoken is None:
        return None
    token_fn = getattr(mechanism, "cache_token", None)
    mtoken = token_fn(instance) if token_fn is not None else None
    if mtoken is None:
        return None
    payload = {
        "schema": SCHEMA_VERSION,
        "instance": instance_token(instance),
        "mechanism": mtoken,
        "seed": stoken,
        "params": dict(params),
    }
    return _sha256_hex(_canonical_json(payload).encode())


class EstimateCache:
    """On-disk store of estimates, one JSON file per digest.

    The store layout is flat — ``<root>/<digest>.json`` — and the entry
    body repeats the digest and schema version so torn or foreign files
    are detected and discarded.  ``hits``/``misses`` count this object's
    lookups (the files themselves are shared by every cache instance
    pointed at the same directory).

    ``max_entries`` bounds the store: after every write the oldest
    entries (by file modification time, ties by name) are pruned until
    at most ``max_entries`` remain, so long-lived processes — the
    estimation service keeps one warm cache for its whole lifetime —
    cannot grow the directory without bound.  ``None`` (the default)
    means unbounded, the previous behaviour.
    """

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_CACHE_DIR,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.op_stats: Dict[str, Dict[str, int]] = {}
        self._sidecar_name = f"{os.getpid()}-{next(_sidecar_ids)}.json"
        self._unflushed = 0

    def path_for(self, digest: str) -> Path:
        """Where the entry for ``digest`` lives."""
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``digest``, or ``None``.

        Any defect — missing file, invalid JSON, wrong schema, wrong
        digest, missing estimate fields — is a miss; defective files
        are deleted so the recomputed entry replaces them cleanly.
        """
        path = self.path_for(digest)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            self._record("misses")
            return None
        except (OSError, ValueError):
            self._discard(path)
            self._record("misses")
            return None
        if not self._valid(data, digest):
            self._discard(path)
            self._record("misses")
            return None
        self._record("hits")
        return data

    def _record(self, kind: str) -> None:
        """Charge one lookup to the aggregate and per-op counters."""
        op = current_cache_op()
        per_op = self.op_stats.setdefault(op, {"hits": 0, "misses": 0})
        per_op[kind] += 1
        if kind == "hits":
            self.hits += 1
        else:
            self.misses += 1
        self._unflushed += 1
        if self._unflushed >= _OPSTATS_FLUSH_EVERY:
            self.flush_op_stats()

    def flush_op_stats(self) -> None:
        """Persist this object's per-op counters to its sidecar file.

        One file per cache object per process under ``.opstats/``,
        overwritten atomically, so any number of service workers sharing
        a cache directory publish their counters without coordination;
        ``repro info`` aggregates them via :func:`aggregate_op_stats`.
        Best-effort: an unwritable cache directory never fails a lookup.
        """
        self._unflushed = 0
        if not self.op_stats:
            return
        stats_dir = self.root / OPSTATS_DIR
        try:
            stats_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(stats_dir), prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump({"schema": SCHEMA_VERSION, "ops": self.op_stats}, handle)
            os.replace(tmp, stats_dir / self._sidecar_name)
        except OSError:  # pragma: no cover - stats are advisory
            pass

    def put(
        self,
        digest: str,
        estimate: Dict[str, Any],
        rng_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``estimate`` (and optionally a post-call RNG state).

        Safe under concurrent multi-process writers: the entry is
        written to an ``O_EXCL`` temp file and claimed with an atomic
        hard link — exactly one of N racing writers of the same digest
        lands the entry, the rest quietly discard their (identical)
        copies.  See the module docstring for the full story.
        """
        entry = {
            "schema": SCHEMA_VERSION,
            "digest": digest,
            "estimate": dict(estimate),
            "rng_state": rng_state,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            self._claim(tmp, self.path_for(digest))
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        if self.max_entries is not None:
            self._prune()

    @staticmethod
    def _claim(tmp: str, final: Path) -> None:
        """Atomically install ``tmp`` at ``final`` (first writer wins).

        ``os.link`` is the claim: it fails with ``FileExistsError`` when
        another process already landed the entry, in which case this
        writer's copy is redundant (same digest → same deterministic
        content) and is simply dropped by the caller's cleanup.  On
        filesystems without hard links the claim degrades to the
        previous ``os.replace`` behaviour — still atomic, last writer
        wins with identical bytes.
        """
        try:
            os.link(tmp, final)
        except FileExistsError:
            return  # another writer landed the identical entry first
        except OSError:
            os.replace(tmp, final)

    def _entries(self) -> List[Path]:
        """All entry files (excluding in-flight ``.tmp-*`` writes)."""
        if not self.root.is_dir():
            return []
        return [
            path
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        ]

    def _prune(self) -> None:
        """Drop oldest entries (mtime, then name) past ``max_entries``."""
        entries = []
        for path in self._entries():
            try:
                mtime = path.stat().st_mtime_ns
            except OSError:  # pragma: no cover - racing deletes are benign
                continue
            entries.append((mtime, path.name, path))
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, _, path in entries[:excess]:
            self._discard(path)

    def stats(self) -> Dict[str, Any]:
        """Entry count, on-disk bytes, and this process's hit/miss counts.

        ``entries``/``bytes`` describe the shared on-disk store right
        now; ``hits``/``misses`` count this object's lookups only.
        Surfaced by the estimation service's ``/metrics`` endpoint and
        by ``repro info``.
        """
        entries = 0
        size = 0
        for path in self._entries():
            try:
                size += path.stat().st_size
            except OSError:  # pragma: no cover - racing deletes are benign
                continue
            entries += 1
        self.flush_op_stats()
        return {
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "max_entries": self.max_entries,
            "by_op": {op: dict(counts) for op, counts in sorted(self.op_stats.items())},
        }

    def __len__(self) -> int:
        return len(self._entries())

    def clear(self) -> None:
        """Delete every entry and reset the counters."""
        for path in self._entries():
            self._discard(path)
        stats_dir = self.root / OPSTATS_DIR
        if stats_dir.is_dir():
            for path in stats_dir.glob("*.json"):
                self._discard(path)
        self.hits = 0
        self.misses = 0
        self.op_stats = {}
        self._unflushed = 0

    @staticmethod
    def _valid(data: Any, digest: str) -> bool:
        if not isinstance(data, dict):
            return False
        if data.get("schema") != SCHEMA_VERSION or data.get("digest") != digest:
            return False
        estimate = data.get("estimate")
        if not isinstance(estimate, dict):
            return False
        return all(field in estimate for field in _ESTIMATE_FIELDS)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deletes are benign
            pass


def aggregate_op_stats(root: Union[str, Path]) -> Dict[str, Dict[str, int]]:
    """Merge every process's op-stat sidecar under ``root``.

    Returns ``{op: {"hits": int, "misses": int}}`` summed across all
    sidecars in ``<root>/.opstats/`` — the store-wide per-operation view
    ``repro info`` reports.  Torn or foreign files are skipped.
    """
    stats_dir = Path(root) / OPSTATS_DIR
    merged: Dict[str, Dict[str, int]] = {}
    if not stats_dir.is_dir():
        return merged
    for path in sorted(stats_dir.glob("*.json")):
        if path.name.startswith("."):
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        ops = data.get("ops") if isinstance(data, dict) else None
        if not isinstance(ops, dict):
            continue
        for op, counts in ops.items():
            if not isinstance(counts, dict):
                continue
            bucket = merged.setdefault(str(op), {"hits": 0, "misses": 0})
            for kind in ("hits", "misses"):
                value = counts.get(kind)
                if isinstance(value, int) and value >= 0:
                    bucket[kind] += value
    return merged
