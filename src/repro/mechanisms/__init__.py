"""Delegation mechanisms (Section 2.2) and Section 6 extensions.

Paper algorithms
----------------
* :class:`ApprovalThreshold` — Algorithm 1 (complete-graph mechanism):
  delegate to a uniform approved neighbour when the approved count meets a
  threshold ``j(·)``.
* :class:`SampledNeighbourhood` — Algorithm 2 (random d-regular view):
  sample ``d`` random neighbours, delegate if at least ``j(d)`` approved.
* :class:`FractionApproved` — Theorem 5's mechanism: delegate when at
  least a fraction (default ½) of neighbours are approved.

Baselines and counterexamples
-----------------------------
* :class:`DirectVoting` — Example 2 (nobody delegates).
* :class:`RandomApproved` — delegate whenever any neighbour is approved
  (Algorithm 1 with threshold 1); on a star this is the Figure 1 failure.
* :class:`GreedyBest` — *non-local* delegate-to-most-competent-neighbour;
  the dictatorship-style mechanism behind impossibility examples.
* :class:`CappedRandomApproved` — weight-capped delegation in the spirit
  of Gölz et al.'s max-weight minimisation.

Extensions (Section 6)
----------------------
* :class:`AbstentionMechanism` — voters who could delegate may abstain.
* :class:`MultiDelegateWeighted` — best-of-k delegate sampling, the
  paper's reading of weighted majority delegation.
"""

from repro.mechanisms.base import (
    Ballot,
    DelegationMechanism,
    LocalDelegationMechanism,
)
from repro.mechanisms.direct import DirectVoting
from repro.mechanisms.threshold import ApprovalThreshold, RandomApproved
from repro.mechanisms.sampled import SampledNeighbourhood
from repro.mechanisms.fraction import FractionApproved
from repro.mechanisms.greedy import CappedRandomApproved, GreedyBest
from repro.mechanisms.adversarial import (
    AdversarialConcentrator,
    LeastCompetentApproved,
)
from repro.mechanisms.extensions import AbstentionMechanism, MultiDelegateWeighted
from repro.mechanisms.weighted_majority import WeightedMajorityDelegation

__all__ = [
    "Ballot",
    "DelegationMechanism",
    "LocalDelegationMechanism",
    "DirectVoting",
    "ApprovalThreshold",
    "RandomApproved",
    "SampledNeighbourhood",
    "FractionApproved",
    "GreedyBest",
    "CappedRandomApproved",
    "AbstentionMechanism",
    "MultiDelegateWeighted",
    "AdversarialConcentrator",
    "LeastCompetentApproved",
    "WeightedMajorityDelegation",
]
