"""Algorithm 2: sampled-neighbourhood delegation (random d-regular view).

In the paper, Algorithm 2 *creates* ``Rand(n, d)`` and delegates in one
step: each voter samples ``d`` random neighbours and delegates to a
random approved one if at least ``j(d)`` of the sampled neighbours are
approved.  Here the graph is an input (generated separately with
:func:`repro.graphs.random_regular_graph`), and the mechanism samples
``d`` of the voter's neighbours — on a d-regular graph that is the whole
neighbourhood, exactly Algorithm 2's behaviour after the graph is fixed;
on general graphs it is the natural "poll a random subsample" variant.
"""

from __future__ import annotations
# reprolint: sparse-safe

from functools import lru_cache
from math import comb
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import LocalDelegationMechanism, uniform_offset

ThresholdFn = Callable[[int], float]


@lru_cache(maxsize=None)
def _hypergeom_cdf(good: int, bad: int, size: int) -> np.ndarray:
    """CDF of the hypergeometric count of approved in a size-``s`` sample.

    Shared by the batched kernel and its per-voter reference so both
    invert the *same* float CDF (via ``searchsorted``) and agree bit for
    bit on every uniform.  Indexed ``k = 0 .. min(size, good)``.
    """
    kmax = min(size, good)
    denom = comb(good + bad, size)
    cdf = np.cumsum(
        [comb(good, k) * comb(bad, size - k) / denom for k in range(kmax + 1)]
    )
    cdf.setflags(write=False)
    return cdf


class SampledNeighbourhood(LocalDelegationMechanism):
    """Algorithm 2: sample ``d`` neighbours, delegate if ``>= j(d)`` approved.

    Parameters
    ----------
    d:
        Number of neighbours each voter polls.  ``None`` means "poll the
        whole neighbourhood" (the d-regular case where the graph already
        encodes the sample).
    threshold:
        Constant or function ``j(d) -> float``; the paper uses a fraction
        of ``d`` (e.g. ``j(d) = j(n) * d / n`` to mirror Algorithm 1).
    """

    def __init__(
        self,
        threshold: Union[int, float, ThresholdFn],
        d: Optional[int] = None,
    ) -> None:
        if d is not None and d < 1:
            raise ValueError(f"d must be positive when given, got {d}")
        self._d = d
        if callable(threshold):
            self._threshold: ThresholdFn = threshold
            self._label = getattr(threshold, "__name__", "fn")
        else:
            value = float(threshold)
            self._threshold = lambda _d: value
            self._label = repr(threshold)

    @property
    def name(self) -> str:
        d_label = "deg" if self._d is None else str(self._d)
        return f"sampled-neighbourhood(d={d_label}, j={self._label})"

    def sample_size(self, view: LocalView) -> int:
        """How many neighbours this voter polls."""
        if self._d is None:
            return view.num_neighbors
        return min(self._d, view.num_neighbors)

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: ``d`` plus thresholds per distinct sample size.

        Everything else the mechanism does (hypergeometric counts,
        uniform approved targets) is a pure function of the instance,
        already part of the cache digest.
        """
        degrees = instance.approval_structure().degrees
        sizes = np.unique(
            degrees if self._d is None else np.minimum(self._d, degrees)
        )
        pairs = tuple(
            (int(s), float(self._threshold(int(s)))) for s in sizes
        )
        return (
            type(self).__qualname__,
            "deg" if self._d is None else int(self._d),
            pairs,
        )

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        size = self.sample_size(view)
        if size == 0:
            return None
        if size == view.num_neighbors:
            sampled = view.neighbors
        else:
            idx = rng.choice(view.num_neighbors, size=size, replace=False)
            sampled = tuple(view.neighbors[int(i)] for i in idx)
        approved_set = frozenset(view.approved)
        sampled_approved = [v for v in sampled if v in approved_set]
        if not sampled_approved or len(sampled_approved) < self._threshold(size):
            return None
        return sampled_approved[int(rng.integers(len(sampled_approved)))]

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``.

        The number of approved neighbours in a uniform without-replacement
        sample of size ``s`` is hypergeometric; conditioned on delegating,
        exchangeability makes the delegate uniform over *all* approved
        neighbours.  Both facts let us skip materialising the sample.
        """
        gen = as_generator(rng)
        structure = instance.approval_structure()
        degrees = structure.degrees
        counts = structure.approved_counts
        n = instance.num_voters
        delegates = np.full(n, SELF, dtype=np.int64)
        active = np.nonzero(degrees > 0)[0]
        if active.size == 0:
            return DelegationGraph(delegates)
        deg = degrees[active]
        cnt = counts[active]
        if self._d is None:
            sizes = deg
        else:
            sizes = np.minimum(self._d, deg)
        full = sizes == deg
        approved_in_sample = np.empty(active.size, dtype=np.int64)
        approved_in_sample[full] = cnt[full]
        partial = ~full
        if np.any(partial):
            approved_in_sample[partial] = gen.hypergeometric(
                cnt[partial], deg[partial] - cnt[partial], sizes[partial]
            )
        thresholds = np.array([self._threshold(int(s)) for s in sizes])
        mask = (approved_in_sample > 0) & (approved_in_sample >= thresholds)
        movers = active[mask]
        if movers.size:
            delegates[movers] = structure.sample_approved_many(movers, gen)
        return DelegationGraph(delegates)

    # -- batched kernel ----------------------------------------------------

    def batch_uniform_rows(self) -> int:
        return 2

    def decide_from_uniforms(
        self, view: LocalView, u: np.ndarray
    ) -> Optional[int]:
        """Row 0 inverts the hypergeometric CDF; row 1 picks the target.

        Like :meth:`sample_delegations` (and unlike :meth:`decide`), the
        delegate is uniform over *all* approved neighbours — valid by
        exchangeability of the uniform sample.
        """
        size = self.sample_size(view)
        if size == 0:
            return None
        cnt = view.approval_count
        if size == view.num_neighbors:
            approved_in_sample = cnt
        else:
            cdf = _hypergeom_cdf(cnt, view.num_neighbors - cnt, size)
            approved_in_sample = min(
                int(np.searchsorted(cdf, float(u[0]), side="right")),
                len(cdf) - 1,
            )
        if approved_in_sample == 0 or approved_in_sample < self._threshold(size):
            return None
        return view.approved[uniform_offset(float(u[1]), cnt)]

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        compiled = instance.compiled()
        degrees = compiled.degrees
        counts = compiled.approved_counts
        n_rounds = uniforms.shape[0]
        delegates = np.full(
            (n_rounds, instance.num_voters), SELF, dtype=compiled.index_dtype
        )
        active = np.nonzero(degrees > 0)[0]
        if active.size == 0:
            return delegates
        deg = degrees[active]
        cnt = counts[active]
        sizes = deg if self._d is None else np.minimum(self._d, deg)
        full = sizes == deg
        u0 = uniforms[:, 0, :][:, active]
        approved_in_sample = np.empty((n_rounds, active.size), dtype=np.int64)
        approved_in_sample[:, full] = cnt[full]
        partial_cols = np.nonzero(~full)[0]
        if partial_cols.size:
            # One CDF (and one vectorised searchsorted) per *distinct*
            # (approved, degree, sample size) triple.
            triples = np.stack(
                [cnt[partial_cols], deg[partial_cols], sizes[partial_cols]],
                axis=1,
            )
            unique_triples, inv = np.unique(triples, axis=0, return_inverse=True)
            for t, (good, d_t, s_t) in enumerate(unique_triples):
                cols = partial_cols[inv == t]
                cdf = _hypergeom_cdf(int(good), int(d_t - good), int(s_t))
                hits = np.searchsorted(cdf, u0[:, cols].ravel(), side="right")
                approved_in_sample[:, cols] = np.minimum(
                    hits, len(cdf) - 1
                ).reshape(n_rounds, cols.size)
        unique_sizes, inv_s = np.unique(sizes, return_inverse=True)
        thresholds = np.array(
            [self._threshold(int(s)) for s in unique_sizes], dtype=float
        )[inv_s]
        mask = (approved_in_sample > 0) & (approved_in_sample >= thresholds)
        pos = cnt > 0
        cand = active[pos]
        if cand.size:
            u1 = uniforms[:, 1, :][:, cand]
            offsets = np.minimum(
                (u1 * cnt[pos]).astype(np.int64), cnt[pos] - 1
            )
            targets = compiled.resolve_approved_offsets(cand[None, :], offsets)
            delegates[:, cand] = np.where(mask[:, pos], targets, SELF)
        return delegates

    def distribution(self, view: LocalView) -> Dict[Optional[int], float]:
        """Exact output distribution (hypergeometric over the sample).

        For the full-neighbourhood case the distribution is deterministic
        in the condition; for subsampling we compute the probability that
        the drawn sample contains at least ``j`` approved neighbours and,
        by symmetry, split the delegation mass uniformly over approved
        neighbours.
        """
        from math import comb

        size = self.sample_size(view)
        n_nbrs = view.num_neighbors
        n_app = view.approval_count
        if size == 0 or n_app == 0:
            return {None: 1.0}
        j = self._threshold(size)
        if size == n_nbrs:
            if n_app >= j:
                share = 1.0 / n_app
                return {v: share for v in view.approved}
            return {None: 1.0}
        # P[sample has a approved] hypergeometric; delegate mass for a >= j
        # splits uniformly over the approved by exchangeability.
        delegate_mass = 0.0
        for a in range(max(1, int(np.ceil(j))), min(size, n_app) + 1):
            delegate_mass += (
                comb(n_app, a) * comb(n_nbrs - n_app, size - a) / comb(n_nbrs, size)
            )
        dist: Dict[Optional[int], float] = {None: 1.0 - delegate_mass}
        if delegate_mass > 0:
            share = delegate_mass / n_app
            for v in view.approved:
                dist[v] = share
        return dist
