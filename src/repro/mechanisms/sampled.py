"""Algorithm 2: sampled-neighbourhood delegation (random d-regular view).

In the paper, Algorithm 2 *creates* ``Rand(n, d)`` and delegates in one
step: each voter samples ``d`` random neighbours and delegates to a
random approved one if at least ``j(d)`` of the sampled neighbours are
approved.  Here the graph is an input (generated separately with
:func:`repro.graphs.random_regular_graph`), and the mechanism samples
``d`` of the voter's neighbours — on a d-regular graph that is the whole
neighbourhood, exactly Algorithm 2's behaviour after the graph is fixed;
on general graphs it is the natural "poll a random subsample" variant.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import LocalDelegationMechanism

ThresholdFn = Callable[[int], float]


class SampledNeighbourhood(LocalDelegationMechanism):
    """Algorithm 2: sample ``d`` neighbours, delegate if ``>= j(d)`` approved.

    Parameters
    ----------
    d:
        Number of neighbours each voter polls.  ``None`` means "poll the
        whole neighbourhood" (the d-regular case where the graph already
        encodes the sample).
    threshold:
        Constant or function ``j(d) -> float``; the paper uses a fraction
        of ``d`` (e.g. ``j(d) = j(n) * d / n`` to mirror Algorithm 1).
    """

    def __init__(
        self,
        threshold: Union[int, float, ThresholdFn],
        d: Optional[int] = None,
    ) -> None:
        if d is not None and d < 1:
            raise ValueError(f"d must be positive when given, got {d}")
        self._d = d
        if callable(threshold):
            self._threshold: ThresholdFn = threshold
            self._label = getattr(threshold, "__name__", "fn")
        else:
            value = float(threshold)
            self._threshold = lambda _d: value
            self._label = repr(threshold)

    @property
    def name(self) -> str:
        d_label = "deg" if self._d is None else str(self._d)
        return f"sampled-neighbourhood(d={d_label}, j={self._label})"

    def sample_size(self, view: LocalView) -> int:
        """How many neighbours this voter polls."""
        if self._d is None:
            return view.num_neighbors
        return min(self._d, view.num_neighbors)

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        size = self.sample_size(view)
        if size == 0:
            return None
        if size == view.num_neighbors:
            sampled = view.neighbors
        else:
            idx = rng.choice(view.num_neighbors, size=size, replace=False)
            sampled = tuple(view.neighbors[int(i)] for i in idx)
        approved_set = frozenset(view.approved)
        sampled_approved = [v for v in sampled if v in approved_set]
        if not sampled_approved or len(sampled_approved) < self._threshold(size):
            return None
        return sampled_approved[int(rng.integers(len(sampled_approved)))]

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``.

        The number of approved neighbours in a uniform without-replacement
        sample of size ``s`` is hypergeometric; conditioned on delegating,
        exchangeability makes the delegate uniform over *all* approved
        neighbours.  Both facts let us skip materialising the sample.
        """
        gen = as_generator(rng)
        structure = instance.approval_structure()
        degrees = structure.degrees
        counts = structure.approved_counts
        n = instance.num_voters
        delegates = np.full(n, SELF, dtype=np.int64)
        active = np.nonzero(degrees > 0)[0]
        if active.size == 0:
            return DelegationGraph(delegates)
        deg = degrees[active]
        cnt = counts[active]
        if self._d is None:
            sizes = deg
        else:
            sizes = np.minimum(self._d, deg)
        full = sizes == deg
        approved_in_sample = np.empty(active.size, dtype=np.int64)
        approved_in_sample[full] = cnt[full]
        partial = ~full
        if np.any(partial):
            approved_in_sample[partial] = gen.hypergeometric(
                cnt[partial], deg[partial] - cnt[partial], sizes[partial]
            )
        thresholds = np.array([self._threshold(int(s)) for s in sizes])
        mask = (approved_in_sample > 0) & (approved_in_sample >= thresholds)
        movers = active[mask]
        if movers.size:
            delegates[movers] = structure.sample_approved_many(movers, gen)
        return DelegationGraph(delegates)

    def distribution(self, view: LocalView) -> Dict[Optional[int], float]:
        """Exact output distribution (hypergeometric over the sample).

        For the full-neighbourhood case the distribution is deterministic
        in the condition; for subsampling we compute the probability that
        the drawn sample contains at least ``j`` approved neighbours and,
        by symmetry, split the delegation mass uniformly over approved
        neighbours.
        """
        from math import comb

        size = self.sample_size(view)
        n_nbrs = view.num_neighbors
        n_app = view.approval_count
        if size == 0 or n_app == 0:
            return {None: 1.0}
        j = self._threshold(size)
        if size == n_nbrs:
            if n_app >= j:
                share = 1.0 / n_app
                return {v: share for v in view.approved}
            return {None: 1.0}
        # P[sample has a approved] hypergeometric; delegate mass for a >= j
        # splits uniformly over the approved by exchangeability.
        delegate_mass = 0.0
        for a in range(max(1, int(np.ceil(j))), min(size, n_app) + 1):
            delegate_mass += (
                comb(n_app, a) * comb(n_nbrs - n_app, size - a) / comb(n_nbrs, size)
            )
        dist: Dict[Optional[int], float] = {None: 1.0 - delegate_mass}
        if delegate_mass > 0:
            share = delegate_mass / n_app
            for v in view.approved:
                dist[v] = share
        return dist
