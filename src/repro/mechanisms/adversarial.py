"""Adversarial delegation: legal moves chosen to maximise harm.

The paper's negative results are driven by adversaries who exploit the
delegation rules — every delegation is still to an *approved* (strictly
more competent) neighbour, yet the pattern of who delegates where
concentrates power.  These mechanisms make that adversary executable so
DNH experiments can stress mechanisms against the worst legal inputs,
not just random ones.

* :class:`AdversarialConcentrator` — pick the voter that the most
  neighbours approve, and have (up to a budget of) those neighbours
  delegate to it; the single-sink concentration behind Figure 1.
* :class:`LeastCompetentApproved` — every voter delegates to its *worst*
  approved neighbour: legal, upward, but extracting the minimum possible
  expectation gain per delegation (≈ α instead of the average).
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import Optional

import numpy as np

from repro._util.rng import SeedLike
from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import DelegationMechanism


class AdversarialConcentrator(DelegationMechanism):
    """Concentrate as many votes as legally possible on one voter.

    Picks the target ``t`` maximising the number of neighbours that
    approve ``t``; up to ``budget`` of those neighbours delegate to
    ``t`` (all of them when ``budget`` is None).  Everyone else votes
    directly.  Deterministic (ties broken by vertex index).

    This is the worst case Lemma 3 reasons about: ``budget`` delegations
    that all land on a single sink.  With ``budget < n^{1/2-ε}`` and
    bounded competencies the lemma still guarantees vanishing harm —
    the stress test the L3 experiments run.
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self._budget = budget

    @property
    def name(self) -> str:
        b = "all" if self._budget is None else str(self._budget)
        return f"adversarial-concentrator(budget={b})"

    @property
    def is_local(self) -> bool:
        return False  # coordinated adversary

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: the budget fully determines the forest.

        Target choice and the set of delegating neighbours are pure
        functions of the instance (already part of the cache digest).
        """
        budget = "all" if self._budget is None else int(self._budget)
        return (type(self).__qualname__, budget)

    def pick_target(self, instance: ProblemInstance) -> Optional[int]:
        """The voter approved by the most neighbours (None if nobody is).

        Approval in-degrees come from one array pass: on general graphs a
        ``bincount`` over the precomputed approved-neighbour CSR, on
        complete graphs (whose approval structure stores the O(n) suffix
        form) a ``searchsorted`` of each competency against the sorted
        ``p + alpha`` thresholds — the same ``p[v] + α <= p[t]`` float
        comparison as the per-vertex reference, vertex by vertex.  Ties
        break to the lowest index (``argmax`` returns the first maximum),
        matching the sequential scan.
        """
        n = instance.num_voters
        if n == 0:
            return None
        structure = instance.approval_structure()
        if structure.is_complete_form:
            thresholds = np.sort(instance.competencies + instance.alpha)
            counts = np.searchsorted(
                thresholds, instance.competencies, side="right"
            )
        else:
            _, approved = structure.approved_csr()
            counts = np.bincount(
                np.asarray(approved, dtype=np.int64), minlength=n
            )
        best = int(np.argmax(counts))
        return best if int(counts[best]) > 0 else None

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        n = instance.num_voters
        delegates = np.full(n, SELF, dtype=np.int64)
        target = self.pick_target(instance)
        if target is None:
            return DelegationGraph(delegates)
        limit = n if self._budget is None else self._budget
        indptr, indices = instance.graph.adjacency_csr()
        nbrs = np.asarray(
            indices[int(indptr[target]) : int(indptr[target + 1])],
            dtype=np.int64,
        )
        p = instance.competencies
        approvers = nbrs[p[nbrs] + instance.alpha <= p[target]]
        delegates[approvers[:limit]] = target
        return DelegationGraph(delegates)


class LeastCompetentApproved(DelegationMechanism):
    """Delegate to the *least* competent approved neighbour.

    Still upward (gains ≥ α per delegation — the Lemma 7 floor) but
    extracts the minimum legal improvement; the pessimistic counterpart
    of :class:`~repro.mechanisms.greedy.GreedyBest`.  Deterministic.
    """

    @property
    def name(self) -> str:
        return "least-competent-approved"

    @property
    def is_local(self) -> bool:
        return False

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        # Approved segments are stored competency-ascending with ties by
        # index, so "least competent approved" is offset 0 of each
        # non-empty segment — one vectorised resolve, no Python loop.
        compiled = instance.compiled()
        n = instance.num_voters
        delegates = np.full(n, SELF, dtype=np.int64)
        movers = np.flatnonzero(compiled.approved_counts > 0)
        if movers.size:
            delegates[movers] = compiled.resolve_approved_offsets(
                movers, np.zeros(movers.size, dtype=np.int64)
            )
        return DelegationGraph(delegates)
