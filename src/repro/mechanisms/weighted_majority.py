"""The full weighted-majority multi-delegation mechanism (Section 6).

Unlike :class:`~repro.mechanisms.extensions.MultiDelegateWeighted`
(which applies the paper's best-of-k *reduction* and stays inside the
single-delegate forest model), this mechanism realises the complete
Section 6 setting: each voter names up to ``k`` distinct approved
neighbours with a local weight function, and effective votes resolve as
weighted majorities over the resulting DAG
(:class:`~repro.voting.dag.WeightedDelegationDag`).

Weight functions implemented:

* ``"uniform"`` — equal weights (pure majority-of-advisors);
* ``"rank"`` — weights proportional to 1, 2, …, k by the voter's local
  ranking of the chosen delegates (better-ranked advisors count more).

Footnote 3 of the paper notes any non-trivial weight function assumes
extra information; the ``rank`` option uses only the local ranking the
model already grants.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import ProblemInstance
from repro.voting.dag import DelegateWeights, WeightedDelegationDag

_WEIGHTINGS = ("uniform", "rank")


class WeightedMajorityDelegation:
    """Multi-delegate mechanism producing a weighted delegation DAG.

    Parameters
    ----------
    k:
        Maximum number of delegates per voter; a voter with fewer
        approved neighbours names all of them.
    threshold:
        Minimum approved-neighbour count required to delegate at all
        (Algorithm 1's condition, reused).
    weighting:
        ``"uniform"`` or ``"rank"`` (see module docstring).
    """

    def __init__(
        self, k: int, threshold: float = 1.0, weighting: str = "uniform"
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if weighting not in _WEIGHTINGS:
            raise ValueError(
                f"weighting must be one of {_WEIGHTINGS}, got {weighting!r}"
            )
        self._k = int(k)
        self._threshold = float(threshold)
        self._weighting = weighting

    @property
    def name(self) -> str:
        """Identifier used in reports."""
        return (
            f"weighted-majority(k={self._k}, j={self._threshold:.3g}, "
            f"{self._weighting})"
        )

    @property
    def k(self) -> int:
        """Maximum delegates per voter."""
        return self._k

    def sample_dag(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> WeightedDelegationDag:
        """Draw one weighted delegation DAG for ``instance``."""
        gen = as_generator(rng)
        choices: Dict[int, DelegateWeights] = {}
        for voter in range(instance.num_voters):
            view = instance.local_view(voter)
            if not view.approved or view.approval_count < self._threshold:
                continue
            count = min(self._k, view.approval_count)
            picks = gen.choice(view.approval_count, size=count, replace=False)
            picks = np.sort(picks)  # ascending local rank
            delegates = tuple(int(view.approved[int(i)]) for i in picks)
            if self._weighting == "uniform":
                weights = tuple(1.0 for _ in delegates)
            else:  # rank: better-ranked (higher) advisors weigh more
                weights = tuple(float(r + 1) for r in range(len(delegates)))
            choices[voter] = DelegateWeights(delegates, weights)
        return WeightedDelegationDag(instance.num_voters, choices)

    def estimate_correct_probability(
        self,
        instance: ProblemInstance,
        dag_rounds: int = 20,
        vote_rounds: int = 200,
        seed: SeedLike = None,
    ) -> float:
        """Average Monte Carlo correctness over sampled DAGs."""
        if dag_rounds <= 0:
            raise ValueError(f"dag_rounds must be positive, got {dag_rounds}")
        gen = as_generator(seed)
        total = 0.0
        for _ in range(dag_rounds):
            dag = self.sample_dag(instance, gen)
            estimate, _, _ = dag.estimate_correct_probability(
                instance.competencies, rounds=vote_rounds, seed=gen
            )
            total += estimate
        return total / dag_rounds

    def __repr__(self) -> str:
        return f"WeightedMajorityDelegation(name={self.name!r})"
