"""Direct voting (Example 2): the mechanism that never delegates."""

from __future__ import annotations
# reprolint: sparse-safe

from typing import Dict, Optional

import numpy as np

from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF
from repro.graphs.graph import csr_index_dtype
from repro.mechanisms.base import LocalDelegationMechanism


class DirectVoting(LocalDelegationMechanism):
    """Every voter casts their own vote; ``P^D(G)`` is its correctness.

    The baseline against which gain (Section 2.2) is measured.  It is a
    *local* delegation mechanism — Example 2 makes the point explicitly.
    """

    @property
    def name(self) -> str:
        return "direct"

    def should_delegate(self, view: LocalView) -> bool:
        return False

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        return None

    def distribution(self, view: LocalView) -> Dict[Optional[int], float]:
        return {None: 1.0}

    # -- batched kernel ----------------------------------------------------

    def batch_uniform_rows(self) -> int:
        return 0

    def decide_from_uniforms(
        self, view: LocalView, u: np.ndarray
    ) -> Optional[int]:
        return None

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        n = instance.num_voters
        dtype = csr_index_dtype(n, 2 * instance.graph.num_edges)
        return np.full((uniforms.shape[0], n), SELF, dtype=dtype)
