"""Non-local baselines: greedy-best delegation and weight-capped delegation.

:class:`GreedyBest` is the "dictatorship" mechanism behind impossibility
results: every voter delegates to its most competent approved neighbour.
It needs competencies, so it is *not* local in the paper's sense; it
exists to reproduce the Figure 1 / Kahng-et-al. failure modes.

:class:`CappedRandomApproved` delegates like the threshold mechanism but
refuses any delegation that would push a sink's weight above a cap — the
style of intervention Gölz et al. study and Lemma 5 justifies: keeping the
maximum weight at ``w`` keeps the outcome within ``√(n^{1+ε}) · w`` of its
mean, preserving DNH.
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import List

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import DelegationMechanism


class GreedyBest(DelegationMechanism):
    """Delegate to the most competent approved neighbour (non-local).

    Ties in competency are broken by the lowest vertex index, making the
    induced forest deterministic — convenient for exact counterexample
    computations (Figure 1).
    """

    @property
    def name(self) -> str:
        return "greedy-best"

    @property
    def is_local(self) -> bool:
        return False

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        # The compiled target table implements exactly this mechanism's
        # deterministic choice (most competent approved neighbour, ties
        # by lowest index); no per-voter Python loop.
        return DelegationGraph(instance.compiled().greedy_targets)

    @staticmethod
    def _reference_sample_delegations(instance: ProblemInstance) -> List[int]:
        """Seed sampler: per-voter max over approved neighbours.

        Kept as the equivalence-test oracle for the compiled
        ``greedy_targets`` fast path.
        """
        comp = instance.competencies
        delegates: List[int] = []
        for voter in range(instance.num_voters):
            approved = instance.approved_neighbors(voter)
            if not approved:
                delegates.append(SELF)
                continue
            best = max(approved, key=lambda v: (comp[v], -v))
            delegates.append(int(best))
        return delegates

    # -- batched kernel ----------------------------------------------------

    def batch_uniform_rows(self) -> int:
        return 0

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        # The forest is deterministic: one precomputed target row, tiled.
        targets = instance.compiled().greedy_targets
        return np.tile(targets, (uniforms.shape[0], 1))


class CappedRandomApproved(DelegationMechanism):
    """Random approved delegation subject to a maximum sink weight.

    Voters are processed in a random order; each delegates to a uniformly
    random approved neighbour *unless* attaching its current subtree would
    push the receiving sink's weight above ``max_weight``, in which case it
    votes directly.  The cap requires knowing accumulated weights, so the
    mechanism is coordinated (non-local); it serves as the Lemma 5
    reference point showing how capping ``w`` restores DNH on bad
    topologies.
    """

    def __init__(self, max_weight: int) -> None:
        if max_weight < 1:
            raise ValueError(f"max_weight must be >= 1, got {max_weight}")
        self._max_weight = int(max_weight)

    @property
    def name(self) -> str:
        return f"capped-random-approved(w<={self._max_weight})"

    @property
    def is_local(self) -> bool:
        return False

    @property
    def max_weight(self) -> int:
        """The per-sink weight cap."""
        return self._max_weight

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: the weight cap is the only free parameter."""
        return (type(self).__qualname__, self._max_weight)

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        gen = as_generator(rng)
        n = instance.num_voters
        delegates = [SELF] * n
        carried = [1] * n  # weight currently landing on each sink

        def sink_of(v: int) -> int:
            while delegates[v] != SELF:
                v = delegates[v]
            return v

        for voter in gen.permutation(n):
            voter = int(voter)
            approved = instance.approved_neighbors(voter)
            if not approved:
                continue
            target = int(approved[int(gen.integers(len(approved)))])
            sink = sink_of(target)
            if sink == voter:
                continue  # would create a cycle through stale approval
            if carried[sink] + carried[voter] > self._max_weight:
                continue
            delegates[voter] = target
            carried[sink] += carried[voter]
        return DelegationGraph(delegates)
