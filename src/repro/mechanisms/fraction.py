"""Theorem 5's mechanism: delegate when a fraction of neighbours approve.

"Let M be a delegation mechanism where a voter delegates if at least half
of its neighbors are approved."  On bounded-minimal-degree graphs
(``δ ≥ n^ε``) this achieves SPG and DNH.  The fraction is a parameter
(default ½) so ablations can sweep it.
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_fraction
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import (
    LocalDelegationMechanism,
    batched_uniform_approved_targets,
    uniform_choice,
    uniform_offset,
)


class FractionApproved(LocalDelegationMechanism):
    """Delegate iff ``|approved| >= fraction * num_neighbors``.

    Delegation target is a uniformly random approved neighbour.
    """

    def __init__(self, fraction: float = 0.5) -> None:
        self._fraction = check_fraction("fraction", fraction)

    @property
    def name(self) -> str:
        return f"fraction-approved({self._fraction})"

    @property
    def fraction(self) -> float:
        """The neighbourhood fraction that must be approved."""
        return self._fraction

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: the fraction is the only free parameter."""
        return (type(self).__qualname__, self._fraction)

    def should_delegate(self, view: LocalView) -> bool:
        if view.num_neighbors == 0:
            return False
        return view.approval_count >= self._fraction * view.num_neighbors

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        if not view.approved or not self.should_delegate(view):
            return None
        return uniform_choice(view.approved, rng)

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``."""
        gen = as_generator(rng)
        structure = instance.approval_structure()
        degrees = structure.degrees
        counts = structure.approved_counts
        mask = (counts > 0) & (degrees > 0) & (
            counts >= self._fraction * degrees
        )
        delegates = np.full(instance.num_voters, SELF, dtype=np.int64)
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[movers] = structure.sample_approved_many(movers, gen)
        return DelegationGraph(delegates)

    # -- batched kernel ----------------------------------------------------

    def batch_uniform_rows(self) -> int:
        return 1

    def decide_from_uniforms(
        self, view: LocalView, u: np.ndarray
    ) -> Optional[int]:
        if not view.approved or not self.should_delegate(view):
            return None
        return view.approved[uniform_offset(float(u[0]), view.approval_count)]

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        compiled = instance.compiled()
        degrees = compiled.degrees
        counts = compiled.approved_counts
        mask = (counts > 0) & (degrees > 0) & (
            counts >= self._fraction * degrees
        )
        delegates = np.full(
            (uniforms.shape[0], instance.num_voters), SELF,
            dtype=compiled.index_dtype,
        )
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[:, movers] = batched_uniform_approved_targets(
                compiled, movers, uniforms[:, 0, :]
            )
        return delegates
