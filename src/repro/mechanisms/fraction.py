"""Theorem 5's mechanism: delegate when a fraction of neighbours approve.

"Let M be a delegation mechanism where a voter delegates if at least half
of its neighbors are approved."  On bounded-minimal-degree graphs
(``δ ≥ n^ε``) this achieves SPG and DNH.  The fraction is a parameter
(default ½) so ablations can sweep it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_fraction
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import LocalDelegationMechanism, uniform_choice


class FractionApproved(LocalDelegationMechanism):
    """Delegate iff ``|approved| >= fraction * num_neighbors``.

    Delegation target is a uniformly random approved neighbour.
    """

    def __init__(self, fraction: float = 0.5) -> None:
        self._fraction = check_fraction("fraction", fraction)

    @property
    def name(self) -> str:
        return f"fraction-approved({self._fraction})"

    @property
    def fraction(self) -> float:
        """The neighbourhood fraction that must be approved."""
        return self._fraction

    def should_delegate(self, view: LocalView) -> bool:
        if view.num_neighbors == 0:
            return False
        return view.approval_count >= self._fraction * view.num_neighbors

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        if not view.approved or not self.should_delegate(view):
            return None
        return uniform_choice(view.approved, rng)

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``."""
        gen = as_generator(rng)
        structure = instance.approval_structure()
        degrees = structure.degrees
        counts = structure.approved_counts
        mask = (counts > 0) & (degrees > 0) & (
            counts >= self._fraction * degrees
        )
        delegates = np.full(instance.num_voters, SELF, dtype=np.int64)
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[movers] = structure.sample_approved_many(movers, gen)
        return DelegationGraph(delegates)
