"""Section 6 extensions: abstention and weighted (multi-delegate) voting.

**Abstention.** The paper's restricted model: a voter may abstain *only
if it could delegate* (its approved neighbourhood is non-empty).  This
models decision-agnostic voters while provably preserving DNH — in
contrast to unrestricted abstention, which can empty the electorate.

**Weighted majority / multi-delegate.**  The paper conjectures its SPG
analysis transfers because multi-delegation "is similar to sampling the
random delegate multiple times and taking the best outcome".  We
implement exactly that reading: sample ``k`` approved candidates with
replacement and delegate to the best of them.  "Best" is resolved by the
voter's local ranking over approved neighbours, which we instantiate as
the competency order (any fixed ranking is allowed by the model).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_probability
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import (
    Ballot,
    DelegationMechanism,
    LocalDelegationMechanism,
)


class AbstentionMechanism(DelegationMechanism):
    """Wrap a local mechanism with restricted abstention.

    Each voter first runs the base mechanism.  A voter whose approved
    neighbourhood is non-empty (i.e. who *could* delegate) abstains with
    probability ``abstain_prob``; abstaining replaces whatever the base
    mechanism decided.  Voters with empty approval sets can never abstain,
    matching the paper's footnote-4 restriction.
    """

    def __init__(
        self, base: LocalDelegationMechanism, abstain_prob: float
    ) -> None:
        self._base = base
        self._abstain_prob = check_probability("abstain_prob", abstain_prob)

    @property
    def name(self) -> str:
        return f"abstaining({self._base.name}, q={self._abstain_prob})"

    @property
    def base(self) -> LocalDelegationMechanism:
        """The wrapped mechanism."""
        return self._base

    @property
    def abstain_prob(self) -> float:
        """Probability an abstention-eligible voter abstains."""
        return self._abstain_prob

    def cache_token(self, instance: ProblemInstance):
        """Wrap the base mechanism's token with the abstention rate.

        Cacheability follows the base mechanism: if the base is
        tokenisable, adding the (float) abstention probability pins the
        wrapper's full behaviour.
        """
        base = self._base.cache_token(instance)
        if base is None:
            return None
        return (type(self).__qualname__, self._abstain_prob, base)

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        return self.sample_ballot(instance, rng).forest

    def sample_ballot(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> Ballot:
        """Sample the base forest, then overwrite abstainers.

        The abstention coin is independent of the base mechanism's
        choice, so sampling the base forest first and replacing the
        decisions of abstaining voters is distributionally identical to
        interleaving the draws voter by voter (and reuses the base
        mechanism's fast sampler).
        """
        gen = as_generator(rng)
        base_forest = self._base.sample_delegations(instance, gen)
        counts = instance.approval_structure().approved_counts
        eligible = counts > 0
        coins = gen.random(instance.num_voters)
        abstains = eligible & (coins < self._abstain_prob)
        delegates = np.array(base_forest.delegates, dtype=np.int64)
        delegates[abstains] = SELF
        return Ballot(
            DelegationGraph(delegates),
            frozenset(int(v) for v in np.nonzero(abstains)[0]),
        )


class MultiDelegateWeighted(LocalDelegationMechanism):
    """Best-of-k delegation: the weighted-majority extension, reduced.

    Runs the base condition of Algorithm 1 (``|approved| >= threshold``),
    then samples ``k`` approved candidates with replacement and delegates
    to the best-ranked of them.  With ``k = 1`` this is exactly the
    uniform random approved delegate; larger ``k`` stochastically improves
    the delegate's competency, matching the paper's claim that SPG
    transfers with gain at least as large.
    """

    def __init__(self, k: int, threshold: float = 1.0) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = int(k)
        self._threshold = float(threshold)

    @property
    def name(self) -> str:
        return f"multi-delegate(k={self._k}, j={self._threshold})"

    @property
    def k(self) -> int:
        """Number of candidate delegates sampled."""
        return self._k

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: ``k`` and the delegation threshold.

        The candidate ranking is the instance's fixed competency order,
        already pinned by the instance component of the digest.
        """
        return (type(self).__qualname__, self._k, self._threshold)

    def should_delegate(self, view: LocalView) -> bool:
        return bool(view.approved) and view.approval_count >= self._threshold

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        if not self.should_delegate(view):
            return None
        candidates = [
            view.approved[int(i)]
            for i in rng.integers(len(view.approved), size=self._k)
        ]
        # The view lists approved neighbours in the voter's fixed local
        # ranking (ascending); "best" is the highest-ranked candidate.
        rank = {v: i for i, v in enumerate(view.approved)}
        return max(candidates, key=lambda v: rank[v])

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``."""
        gen = as_generator(rng)
        structure = instance.approval_structure()
        counts = structure.approved_counts
        mask = (counts > 0) & (counts >= self._threshold)
        delegates = np.full(instance.num_voters, SELF, dtype=np.int64)
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[movers] = structure.sample_best_of_k_many(
                movers, self._k, gen
            )
        return DelegationGraph(delegates)
