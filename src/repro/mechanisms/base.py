"""Mechanism abstractions.

A delegation mechanism maps a problem instance to, per voter, a
probability distribution over "delegate to j" / "vote directly"
(Section 2.2).  The executable form here is sampling: a mechanism draws
one delegation forest per call.

*Local* mechanisms (the paper's focus) are a subclass whose per-voter
decision receives only a :class:`~repro.core.instance.LocalView` —
locality is enforced structurally, not by convention.

Ballots generalise forests with an abstaining set so the Section 6
abstention extension shares the same evaluation pipeline.
"""

from __future__ import annotations
# reprolint: sparse-safe

import abc
import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro._util.rng import (
    SeedLike,
    as_generator,
    as_seed_sequence,
    child_seed_sequence,
)
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.graphs.graph import csr_index_dtype

UNIFORM_CHUNK_BUDGET_BYTES = 256 * 1024 * 1024
"""Default per-call budget for the batched kernels' uniform cube.

``sample_delegations_batch`` streams rounds in chunks sized so the
``(chunk, rows, n)`` uniform block stays under this budget — peak memory
is O(E + chunk·n) instead of O(rounds·n).  Chunking is invisible in the
output: round ``r`` draws only from child seed ``r``, so any partition
of rounds into chunks produces bit-identical delegate matrices."""


@dataclass(frozen=True)
class Ballot:
    """A resolved election input: a delegation forest plus abstainers.

    ``abstaining`` must be a subset of the forest's sinks — a voter who
    delegated cannot also abstain.  Votes delegated to an abstaining sink
    are lost (the footnote-4 hazard the paper's restricted abstention
    model is designed around).
    """

    forest: DelegationGraph
    abstaining: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        sinks = set(self.forest.sinks)
        extra = set(self.abstaining) - sinks
        if extra:
            raise ValueError(
                f"abstaining voters must be sinks, but {sorted(extra)} delegated"
            )

    @property
    def participating_weight(self) -> int:
        """Total weight carried by non-abstaining sinks.

        Computed from the forest's sink-weight array with a vectorised
        abstain mask rather than a per-sink Python sum.
        """
        weights = self.forest.sink_weight_array
        if not self.abstaining:
            return int(weights.sum())
        mask = np.isin(
            self.forest.sink_indices, np.fromiter(self.abstaining, dtype=np.int64)
        )
        return int(weights[~mask].sum())


class DelegationMechanism(abc.ABC):
    """Base class for all delegation mechanisms."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment reports."""

    @property
    def is_local(self) -> bool:
        """Whether the mechanism uses only local views (Section 2.2)."""
        return isinstance(self, LocalDelegationMechanism)

    @abc.abstractmethod
    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Draw one delegation forest for ``instance``."""

    def sample_ballot(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> Ballot:
        """Draw one ballot; default mechanisms never abstain."""
        return Ballot(self.sample_delegations(instance, rng))

    def cache_token(self, instance: ProblemInstance) -> Optional[Tuple[Any, ...]]:
        """A stable token of this mechanism's behaviour on ``instance``.

        Used by the persistent estimate cache (:mod:`repro.cache`) as
        the mechanism component of the digest.  The default tokenises
        the mechanism's pickled bytes — parameterised mechanisms built
        from plain data hash stably.  Mechanisms holding unpicklable
        state (lambda thresholds) return ``None`` — uncacheable — unless
        they override this with a behavioural token (the threshold
        mechanisms tokenise their per-degree threshold values, which is
        what actually determines the sampled forests).
        """
        try:
            blob = pickle.dumps(self, protocol=4)
        except Exception:
            return None
        return ("pickle", type(self).__qualname__, hashlib.sha256(blob).hexdigest())

    # -- batched sampling --------------------------------------------------

    def batch_uniform_rows(self) -> Optional[int]:
        """Per-voter uniform rows the batched kernel consumes, or ``None``.

        A mechanism with a vectorised batch kernel declares here how many
        uniform draws per voter one round costs (round ``r`` consumes
        exactly ``rng_r.random((rows, n))``); mechanisms without a kernel
        return ``None`` and :meth:`sample_delegations_batch` falls back
        to the per-voter loop transparently.
        """
        return None

    @property
    def supports_batch_sampling(self) -> bool:
        """Whether :meth:`sample_delegations_batch` uses a vectorised kernel."""
        return self.batch_uniform_rows() is not None

    def sample_delegations_batch(
        self,
        instance: ProblemInstance,
        n_rounds: int,
        seed: SeedLike = None,
        first_round: int = 0,
        chunk_rounds: Optional[int] = None,
    ) -> np.ndarray:
        """Draw ``n_rounds`` delegation forests as one ``(rounds, n)`` matrix.

        Round ``i`` draws from the absolute child seed ``first_round + i``
        of ``seed``'s root (:func:`repro._util.rng.child_seed_sequence`),
        the batch engine's determinism contract: results are independent
        of how rounds are partitioned across calls or workers.

        Kernel mechanisms map each round's block of per-voter uniforms
        through :meth:`~LocalDelegationMechanism.decide_from_uniforms`'s
        vectorised counterpart; mechanisms without a kernel run the
        ordinary per-round :meth:`sample_delegations` on the same child
        seeds (so their forests match the per-round engine exactly).

        The uniform cube is generated in round chunks (``chunk_rounds``
        rounds at a time; default sized to
        :data:`UNIFORM_CHUNK_BUDGET_BYTES`), so peak transient memory
        scales with the chunk, not with ``n_rounds``.  Because each
        round's uniforms come from its own child seed, the output is
        bit-identical for every chunking.  The returned matrix uses the
        instance's CSR index dtype (int32 below 2^31 voters).
        """
        if n_rounds < 0:
            raise ValueError(f"n_rounds must be non-negative, got {n_rounds}")
        if chunk_rounds is not None and chunk_rounds < 1:
            raise ValueError(f"chunk_rounds must be >= 1, got {chunk_rounds}")
        root = as_seed_sequence(seed)
        n = instance.num_voters
        out_dtype = csr_index_dtype(n, 2 * instance.graph.num_edges)
        rows = self.batch_uniform_rows()
        if rows is None:
            out = np.empty((n_rounds, n), dtype=out_dtype)
            for i in range(n_rounds):
                rng = np.random.default_rng(
                    child_seed_sequence(root, first_round + i)
                )
                out[i] = self.sample_delegations(instance, rng).delegates
            return out
        if chunk_rounds is None:
            per_round = max(1, rows) * max(1, n) * 8
            chunk_rounds = max(1, UNIFORM_CHUNK_BUDGET_BYTES // per_round)
        if chunk_rounds >= n_rounds:
            uniforms = self._uniform_block(root, first_round, n_rounds, rows, n)
            return self._delegations_from_uniforms(instance, uniforms)
        out = np.empty((n_rounds, n), dtype=out_dtype)
        for cstart in range(0, n_rounds, chunk_rounds):
            cstop = min(cstart + chunk_rounds, n_rounds)
            uniforms = self._uniform_block(
                root, first_round + cstart, cstop - cstart, rows, n
            )
            out[cstart:cstop] = self._delegations_from_uniforms(
                instance, uniforms
            )
        return out

    @staticmethod
    def _uniform_block(
        root: np.random.SeedSequence,
        first_round: int,
        n_rounds: int,
        rows: int,
        n: int,
    ) -> np.ndarray:
        """The ``(n_rounds, rows, n)`` uniforms for one contiguous chunk."""
        uniforms = np.empty((n_rounds, rows, n))
        for i in range(n_rounds):
            rng = np.random.default_rng(child_seed_sequence(root, first_round + i))
            if rows:
                uniforms[i] = rng.random((rows, n))
        return uniforms

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        """Vectorised kernel: uniforms ``(rounds, rows, n)`` → delegates.

        Must produce, for every round and voter, *exactly* the delegate
        that ``decide_from_uniforms(view, uniforms[r, :, voter])`` picks —
        the exact-equivalence suite pins batched forests bit-identically
        to the per-voter reference given shared uniforms.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares batch_uniform_rows() but no kernel"
        )

    def delegations_from_uniforms_subset(
        self,
        instance: ProblemInstance,
        uniforms: np.ndarray,
        voters: np.ndarray,
    ) -> np.ndarray:
        """Delegates for ``voters`` only, given the full uniform cube.

        The incremental engine (:mod:`repro.incremental`) retains each
        round's uniforms and, after a localised instance edit, re-derives
        delegates only for the dirtied voters — every other voter's
        decision provably cannot have changed.  ``uniforms`` is the full
        ``(rounds, rows, n)`` cube (column ``v`` is voter ``v``'s draws,
        so the subset consumes the *same* uniforms the full kernel
        would); the result is the ``(rounds, len(voters))`` slice of the
        full delegate matrix, bit-identical to
        ``_delegations_from_uniforms(...)[:, voters]``.

        The default implementation runs the full kernel and slices —
        always correct, O(n).  Mechanisms whose per-voter decision has no
        cross-voter coupling override this with a true subset kernel
        (the threshold family restricts its mask and target resolution
        to ``voters``, making a patch O(|voters|)).
        """
        if self.batch_uniform_rows() is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no uniform-based decision kernel"
            )
        return self._delegations_from_uniforms(instance, uniforms)[:, voters]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class LocalDelegationMechanism(DelegationMechanism):
    """A mechanism whose per-voter choice sees only the local view.

    Subclasses implement :meth:`decide`; :meth:`distribution` has a
    default Monte Carlo-free implementation for mechanisms whose decision
    is "delegate uniformly over approved when condition holds", which
    subclasses with richer behaviour override.
    """

    @abc.abstractmethod
    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        """Return the delegate chosen by ``view.voter`` or ``None`` to vote."""

    def should_delegate(self, view: LocalView) -> bool:
        """Whether the voter's *deterministic* condition to delegate holds.

        Only meaningful for mechanisms where the delegate/vote decision is
        a deterministic function of the view (true for Algorithm 1,
        Theorem 5's mechanism, direct voting).  Mechanisms with random
        conditions override :meth:`distribution` instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a deterministic condition"
        )

    def distribution(self, view: LocalView) -> Dict[Optional[int], float]:
        """The mechanism's output distribution for one voter.

        Keys are delegate indices plus ``None`` for "vote directly";
        values sum to 1.  Default: uniform over approved neighbours when
        :meth:`should_delegate` holds, else vote.
        """
        if self.should_delegate(view) and view.approved:
            share = 1.0 / len(view.approved)
            return {j: share for j in view.approved}
        return {None: 1.0}

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        gen = as_generator(rng)
        delegates: List[int] = []
        for voter in range(instance.num_voters):
            choice = self.decide(instance.local_view(voter), gen)
            delegates.append(SELF if choice is None else int(choice))
        return DelegationGraph(delegates)

    def decide_from_uniforms(
        self, view: LocalView, u: np.ndarray
    ) -> Optional[int]:
        """Deterministic form of :meth:`decide` over explicit uniforms.

        ``u`` holds this voter's :meth:`batch_uniform_rows` uniform draws
        for one round.  Factoring the decision into a pure function of
        ``(view, u)`` is what lets the batched kernel and the per-voter
        reference consume *the same* uniforms and be compared forest by
        forest, bit for bit.  (The rng-based :meth:`decide` keeps its own
        draw order untouched — serial-engine streams are pinned by tests.)
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no uniform-based decision kernel"
        )

    def _reference_sample_delegations_batch(
        self,
        instance: ProblemInstance,
        n_rounds: int,
        seed: SeedLike = None,
        first_round: int = 0,
    ) -> np.ndarray:
        """Per-voter oracle for :meth:`sample_delegations_batch`.

        Draws the identical per-round uniform blocks and routes each
        voter through :meth:`decide_from_uniforms`; the batched kernels
        are pinned to this loop exactly (not statistically).
        """
        rows = self.batch_uniform_rows()
        if rows is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no uniform-based decision kernel"
            )
        root = as_seed_sequence(seed)
        n = instance.num_voters
        out = np.full((n_rounds, n), SELF, dtype=np.int64)
        views = [instance.local_view(v) for v in range(n)]
        for i in range(n_rounds):
            rng = np.random.default_rng(child_seed_sequence(root, first_round + i))
            block = rng.random((rows, n)) if rows else np.empty((0, n))
            for voter in range(n):
                choice = self.decide_from_uniforms(views[voter], block[:, voter])
                if choice is not None:
                    out[i, voter] = int(choice)
        return out


def uniform_choice(
    options: tuple, rng: np.random.Generator
) -> int:
    """Uniformly choose one element of a non-empty tuple."""
    if not options:
        raise ValueError("cannot choose from an empty option set")
    return int(options[int(rng.integers(len(options)))])


def uniform_offset(u: float, count: int) -> int:
    """Map one uniform draw to an index in ``0 .. count - 1``.

    The shared offset formula of the batched kernels and their
    :meth:`~LocalDelegationMechanism.decide_from_uniforms` references:
    ``min(floor(u * count), count - 1)`` (the clamp guards ``u = 1.0``
    never produced by ``random()`` but allowed by the contract).
    """
    return min(int(u * count), count - 1)


def batched_uniform_approved_targets(
    compiled, movers: np.ndarray, u_rows: np.ndarray
) -> np.ndarray:
    """Vectorised "uniform approved neighbour" picks for many rounds.

    ``u_rows`` is the ``(rounds, n)`` uniform block; ``movers`` the voters
    whose delegation condition holds (every one must have a non-empty
    approved set).  Returns the ``(rounds, len(movers))`` delegate
    matrix.  Offsets follow :func:`uniform_offset`, and the approved
    segments are ordered exactly like ``LocalView.approved`` (competency
    ascending, ties by index), so each entry equals
    ``view.approved[uniform_offset(u, count)]``.
    """
    counts = compiled.approved_counts[movers]
    offsets = np.minimum((u_rows[:, movers] * counts).astype(np.int64), counts - 1)
    return compiled.resolve_approved_offsets(movers[None, :], offsets)
