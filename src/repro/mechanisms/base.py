"""Mechanism abstractions.

A delegation mechanism maps a problem instance to, per voter, a
probability distribution over "delegate to j" / "vote directly"
(Section 2.2).  The executable form here is sampling: a mechanism draws
one delegation forest per call.

*Local* mechanisms (the paper's focus) are a subclass whose per-voter
decision receives only a :class:`~repro.core.instance.LocalView` —
locality is enforced structurally, not by convention.

Ballots generalise forests with an abstaining set so the Section 6
abstention extension shares the same evaluation pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph


@dataclass(frozen=True)
class Ballot:
    """A resolved election input: a delegation forest plus abstainers.

    ``abstaining`` must be a subset of the forest's sinks — a voter who
    delegated cannot also abstain.  Votes delegated to an abstaining sink
    are lost (the footnote-4 hazard the paper's restricted abstention
    model is designed around).
    """

    forest: DelegationGraph
    abstaining: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        sinks = set(self.forest.sinks)
        extra = set(self.abstaining) - sinks
        if extra:
            raise ValueError(
                f"abstaining voters must be sinks, but {sorted(extra)} delegated"
            )

    @property
    def participating_weight(self) -> int:
        """Total weight carried by non-abstaining sinks."""
        return sum(
            self.forest.weight(s)
            for s in self.forest.sinks
            if s not in self.abstaining
        )


class DelegationMechanism(abc.ABC):
    """Base class for all delegation mechanisms."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in experiment reports."""

    @property
    def is_local(self) -> bool:
        """Whether the mechanism uses only local views (Section 2.2)."""
        return isinstance(self, LocalDelegationMechanism)

    @abc.abstractmethod
    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Draw one delegation forest for ``instance``."""

    def sample_ballot(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> Ballot:
        """Draw one ballot; default mechanisms never abstain."""
        return Ballot(self.sample_delegations(instance, rng))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class LocalDelegationMechanism(DelegationMechanism):
    """A mechanism whose per-voter choice sees only the local view.

    Subclasses implement :meth:`decide`; :meth:`distribution` has a
    default Monte Carlo-free implementation for mechanisms whose decision
    is "delegate uniformly over approved when condition holds", which
    subclasses with richer behaviour override.
    """

    @abc.abstractmethod
    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        """Return the delegate chosen by ``view.voter`` or ``None`` to vote."""

    def should_delegate(self, view: LocalView) -> bool:
        """Whether the voter's *deterministic* condition to delegate holds.

        Only meaningful for mechanisms where the delegate/vote decision is
        a deterministic function of the view (true for Algorithm 1,
        Theorem 5's mechanism, direct voting).  Mechanisms with random
        conditions override :meth:`distribution` instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a deterministic condition"
        )

    def distribution(self, view: LocalView) -> Dict[Optional[int], float]:
        """The mechanism's output distribution for one voter.

        Keys are delegate indices plus ``None`` for "vote directly";
        values sum to 1.  Default: uniform over approved neighbours when
        :meth:`should_delegate` holds, else vote.
        """
        if self.should_delegate(view) and view.approved:
            share = 1.0 / len(view.approved)
            return {j: share for j in view.approved}
        return {None: 1.0}

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        gen = as_generator(rng)
        delegates: List[int] = []
        for voter in range(instance.num_voters):
            choice = self.decide(instance.local_view(voter), gen)
            delegates.append(SELF if choice is None else int(choice))
        return DelegationGraph(delegates)


def uniform_choice(
    options: tuple, rng: np.random.Generator
) -> int:
    """Uniformly choose one element of a non-empty tuple."""
    if not options:
        raise ValueError("cannot choose from an empty option set")
    return int(options[int(rng.integers(len(options)))])
