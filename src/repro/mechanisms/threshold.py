"""Algorithm 1: approval-set-size threshold delegation.

Voter ``v_i`` counts its approved neighbours; if the count reaches the
threshold ``j(deg)`` (a function of the neighbourhood size — on the
complete graph the neighbourhood size is ``n - 1 ≈ n``), it delegates to
a uniformly random approved neighbour, otherwise it votes directly.

Theorem 2 proves this mechanism achieves SPG and DNH on complete graphs;
the threshold should satisfy ``j(n) ∈ o(n)`` but grow with ``n`` — large
enough that delegation never concentrates on a handful of experts, small
enough that most voters delegate.
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import Callable, Optional, Union

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.core.instance import LocalView, ProblemInstance
from repro.delegation.graph import SELF, DelegationGraph
from repro.mechanisms.base import (
    LocalDelegationMechanism,
    batched_uniform_approved_targets,
    uniform_choice,
    uniform_offset,
)

ThresholdFn = Callable[[int], float]


class _ConstantThreshold:
    """Degree-independent threshold.

    A class rather than a closure so that mechanisms built from constant
    thresholds stay picklable — the batched Monte Carlo engine ships the
    mechanism to worker processes when ``n_jobs > 1``.
    """

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __call__(self, _deg: int) -> float:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


def _as_threshold_fn(threshold: Union[int, float, ThresholdFn]) -> ThresholdFn:
    if callable(threshold):
        return threshold
    return _ConstantThreshold(float(threshold))


class ApprovalThreshold(LocalDelegationMechanism):
    """Algorithm 1 with threshold ``j``.

    Parameters
    ----------
    threshold:
        Either a constant or a function ``j(num_neighbors) -> float``.
        The voter delegates iff ``|approved| >= j(num_neighbors)``.
        Common paper-motivated choices: ``lambda n: n ** (1/3)`` or
        ``lambda n: math.log2(n + 1)`` (both ``o(n)``).
    """

    def __init__(self, threshold: Union[int, float, ThresholdFn]) -> None:
        self._threshold = _as_threshold_fn(threshold)
        self._label = (
            getattr(threshold, "__name__", "fn")
            if callable(threshold)
            else repr(threshold)
        )

    @property
    def name(self) -> str:
        return f"approval-threshold(j={self._label})"

    def threshold_at(self, num_neighbors: int) -> float:
        """The numeric threshold ``j`` applied at this neighbourhood size."""
        return float(self._threshold(num_neighbors))

    def cache_token(self, instance: ProblemInstance):
        """Behavioural token: the threshold evaluated per distinct degree.

        The sampled forest distribution depends on the threshold only
        through its values at the instance's degrees, so tokenising
        those keeps lambda-thresholded mechanisms cacheable (and lets
        distinct callables computing the same ``j`` share entries).
        """
        degrees = np.unique(instance.approval_structure().degrees)
        pairs = tuple(
            (int(d), self.threshold_at(int(d))) for d in degrees
        )
        return (type(self).__qualname__, pairs)

    def should_delegate(self, view: LocalView) -> bool:
        return view.approval_count >= self.threshold_at(view.num_neighbors)

    def decide(self, view: LocalView, rng: np.random.Generator) -> Optional[int]:
        if not view.approved:
            return None
        if not self.should_delegate(view):
            return None
        return uniform_choice(view.approved, rng)

    def sample_delegations(
        self, instance: ProblemInstance, rng: SeedLike = None
    ) -> DelegationGraph:
        """Vectorised sampler, distributionally identical to ``decide``.

        Uses the instance's cached approval structure: the per-voter
        decision depends only on ``(degree, approved count)`` and the
        delegate is uniform over the approved neighbours.
        """
        gen = as_generator(rng)
        structure = instance.approval_structure()
        degrees = structure.degrees
        counts = structure.approved_counts
        # Evaluate the threshold once per *distinct* degree: on regular
        # and complete graphs this is a single Python call instead of n.
        unique_degrees, inverse = np.unique(degrees, return_inverse=True)
        per_degree = np.array(
            [self.threshold_at(int(d)) for d in unique_degrees], dtype=float
        )
        thresholds = per_degree[inverse]
        mask = (counts > 0) & (counts >= thresholds)
        delegates = np.full(instance.num_voters, SELF, dtype=np.int64)
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[movers] = structure.sample_approved_many(movers, gen)
        return DelegationGraph(delegates)

    # -- batched kernel ----------------------------------------------------

    def batch_uniform_rows(self) -> int:
        return 1

    def decide_from_uniforms(
        self, view: LocalView, u: np.ndarray
    ) -> Optional[int]:
        if not view.approved or not self.should_delegate(view):
            return None
        return view.approved[uniform_offset(float(u[0]), view.approval_count)]

    def _per_degree_thresholds(self, compiled) -> np.ndarray:
        """Threshold evaluated once per distinct degree, memoised when safe.

        Constant thresholds memoise on the compiled instance keyed by the
        value (the table survives :meth:`CompiledInstance.adopt_degree_tables`
        across degree-preserving incremental patches); callable thresholds
        are re-evaluated per call because their identity has no stable
        token to key a shared memo by.
        """
        unique_degrees, _ = compiled.unique_degrees()

        def build() -> np.ndarray:
            return np.array(
                [self.threshold_at(int(d)) for d in unique_degrees], dtype=float
            )

        if isinstance(self._threshold, _ConstantThreshold):
            return compiled.memo(
                (
                    "per_degree_thresholds",
                    type(self).__qualname__,
                    self._threshold.value,
                ),
                build,
            )
        return build()

    def _delegations_from_uniforms(
        self, instance: ProblemInstance, uniforms: np.ndarray
    ) -> np.ndarray:
        compiled = instance.compiled()
        counts = compiled.approved_counts
        _, inverse = compiled.unique_degrees()
        per_degree = self._per_degree_thresholds(compiled)
        thresholds = per_degree[inverse]
        mask = (counts > 0) & (counts >= thresholds)
        delegates = np.full(
            (uniforms.shape[0], instance.num_voters), SELF,
            dtype=compiled.index_dtype,
        )
        movers = np.nonzero(mask)[0]
        if movers.size:
            delegates[:, movers] = batched_uniform_approved_targets(
                compiled, movers, uniforms[:, 0, :]
            )
        return delegates

    def delegations_from_uniforms_subset(
        self,
        instance: ProblemInstance,
        uniforms: np.ndarray,
        voters: np.ndarray,
    ) -> np.ndarray:
        """True subset kernel: O(rounds × |voters|), not O(rounds × n).

        Restricts the full kernel's mask and target resolution to
        ``voters``; every formula (threshold comparison, offset clamp,
        segment resolution) is the full kernel's own restricted
        elementwise, so the result is bit-identical to slicing the full
        delegate matrix.
        """
        compiled = instance.compiled()
        voters = np.asarray(voters, dtype=np.int64)
        counts = compiled.approved_counts[voters]
        _, inverse = compiled.unique_degrees()
        per_degree = self._per_degree_thresholds(compiled)
        thresholds = per_degree[inverse[voters]]
        mask = (counts > 0) & (counts >= thresholds)
        delegates = np.full(
            (uniforms.shape[0], voters.size), SELF, dtype=compiled.index_dtype
        )
        movers = voters[mask]
        if movers.size:
            delegates[:, mask] = batched_uniform_approved_targets(
                compiled, movers, uniforms[:, 0, :]
            )
        return delegates


class RandomApproved(ApprovalThreshold):
    """Delegate whenever *any* neighbour is approved (threshold 1).

    The maximally eager local mechanism.  On a star with a competent hub
    this is exactly the Figure 1 counterexample: every leaf delegates to
    the hub, voting power collapses onto one voter, and DNH fails.
    """

    def __init__(self) -> None:
        super().__init__(1)

    @property
    def name(self) -> str:
        return "random-approved"
