"""Delegation graphs: resolving mechanism outputs into weighted sinks.

A delegation mechanism outputs, per voter, a distribution over "delegate
to neighbour j" / "vote directly".  Sampling those choices yields a
functional digraph; with an approval threshold ``α > 0`` it is a forest
whose roots ("sinks") cast weighted votes.  This package materialises
that forest, computes sink weights, verifies acyclicity, and measures
the weight-concentration statistics the paper's variance conditions are
about.
"""

from repro.delegation.graph import DelegationCycleError, DelegationGraph
from repro.delegation.metrics import WeightProfile, weight_profile
from repro.delegation.render import render_forest, render_summary

__all__ = [
    "DelegationGraph",
    "DelegationCycleError",
    "WeightProfile",
    "weight_profile",
    "render_forest",
    "render_summary",
]
