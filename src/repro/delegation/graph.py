"""The induced delegation graph (Section 2.2, "Delegation").

Each voter either votes directly (a *sink*) or delegates to exactly one
other voter; following delegations transitively, each voter's vote lands
on a unique sink.  The sink's *weight* is the number of votes it carries,
including its own.

Because approval requires strictly higher competency (``α > 0``),
delegation graphs induced by approval mechanisms are acyclic.  The
resolver nevertheless detects cycles explicitly — non-approval mechanisms
(used in counterexample experiments) could create them, and votes caught
in a cycle would otherwise silently vanish.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SELF = -1
"""Sentinel delegate value meaning "vote directly" (no delegation)."""


class DelegationCycleError(ValueError):
    """Raised when delegation choices contain a cycle.

    Carries the offending ``cycle`` as a list of voter indices in
    delegation order.
    """

    def __init__(self, cycle: List[int]) -> None:
        self.cycle = cycle
        super().__init__(f"delegation cycle detected: {' -> '.join(map(str, cycle))}")


class DelegationGraph:
    """Resolved delegation choices with sink assignment and weights.

    Parameters
    ----------
    delegates:
        ``delegates[i]`` is the voter ``i`` delegates to, or ``SELF``
        (= -1) when ``i`` votes directly.  Delegating to oneself is
        normalised to ``SELF``.

    Raises
    ------
    DelegationCycleError
        If following delegations from some voter never reaches a sink.
    """

    __slots__ = ("_delegates", "_sink_of", "_sinks", "_weights", "_depths")

    def __init__(self, delegates: Sequence[int]) -> None:
        n = len(delegates)
        normalised = np.empty(n, dtype=np.int64)
        for i, target in enumerate(delegates):
            t = int(target)
            if t == i:
                t = SELF
            if t != SELF and not 0 <= t < n:
                raise ValueError(
                    f"voter {i} delegates to out-of-range target {target}"
                )
            normalised[i] = t
        self._delegates = normalised
        self._delegates.setflags(write=False)
        self._sink_of = self._resolve_sinks(normalised)
        self._sink_of.setflags(write=False)
        sinks = np.nonzero(normalised == SELF)[0]
        self._sinks: Tuple[int, ...] = tuple(int(s) for s in sinks)
        weights = np.bincount(self._sink_of, minlength=n)
        self._weights = weights
        self._weights.setflags(write=False)
        self._depths: Optional[np.ndarray] = None

    @staticmethod
    def _resolve_sinks(delegates: np.ndarray) -> np.ndarray:
        """Follow chains with iterative path compression; detect cycles."""
        n = len(delegates)
        sink_of = np.full(n, -2, dtype=np.int64)  # -2 = unresolved
        for start in range(n):
            if sink_of[start] != -2:
                continue
            path = []
            v = start
            while True:
                if sink_of[v] != -2:
                    terminal = int(sink_of[v])
                    break
                path.append(v)
                nxt = int(delegates[v])
                if nxt == SELF:
                    terminal = v
                    break
                if nxt in path:
                    # Walked back onto the current path: a cycle.
                    idx = path.index(nxt)
                    raise DelegationCycleError(path[idx:] + [nxt])
                v = nxt
            for u in path:
                sink_of[u] = terminal
        return sink_of

    # -- accessors ----------------------------------------------------------

    @property
    def num_voters(self) -> int:
        """Number of voters ``n``."""
        return len(self._delegates)

    @property
    def delegates(self) -> np.ndarray:
        """Per-voter delegate array (``SELF`` for direct voters)."""
        return self._delegates

    @property
    def sinks(self) -> Tuple[int, ...]:
        """Voters that vote directly, ascending."""
        return self._sinks

    @property
    def num_sinks(self) -> int:
        """Number of sinks."""
        return len(self._sinks)

    def sink_of(self, voter: int) -> int:
        """The sink that ultimately carries ``voter``'s vote."""
        return int(self._sink_of[voter])

    def weight(self, voter: int) -> int:
        """Votes carried by ``voter`` (0 unless ``voter`` is a sink)."""
        return int(self._weights[voter])

    def sink_weights(self) -> Dict[int, int]:
        """Mapping sink → weight; weights sum to ``n``."""
        return {s: int(self._weights[s]) for s in self._sinks}

    @property
    def num_delegators(self) -> int:
        """Number of voters that delegated (Definition 2's ``Delegate(n)``)."""
        return self.num_voters - self.num_sinks

    def max_weight(self) -> int:
        """Maximum sink weight ``w`` — the quantity Lemma 5 bounds."""
        if self.num_voters == 0:
            return 0
        return int(self._weights.max())

    def depth(self, voter: int) -> int:
        """Number of delegation hops from ``voter`` to its sink."""
        self._compute_depths()
        assert self._depths is not None
        return int(self._depths[voter])

    def max_depth(self) -> int:
        """Longest delegation chain in the forest."""
        if self.num_voters == 0:
            return 0
        self._compute_depths()
        assert self._depths is not None
        return int(self._depths.max())

    def _compute_depths(self) -> None:
        if self._depths is not None:
            return
        n = self.num_voters
        depths = np.full(n, -1, dtype=np.int64)
        for start in range(n):
            path = []
            v = start
            while depths[v] == -1 and int(self._delegates[v]) != SELF:
                path.append(v)
                v = int(self._delegates[v])
            if depths[v] == -1:
                depths[v] = 0  # v is a sink
            base = int(depths[v])
            for u in reversed(path):
                base += 1
                depths[u] = base
        self._depths = depths

    def is_acyclic(self) -> bool:
        """Always True for constructed instances (cycles raise on build)."""
        return True

    def __repr__(self) -> str:
        return (
            f"DelegationGraph(n={self.num_voters}, sinks={self.num_sinks}, "
            f"max_weight={self.max_weight()})"
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def direct(cls, n: int) -> "DelegationGraph":
        """The trivial delegation graph where everyone votes directly."""
        return cls([SELF] * n)
