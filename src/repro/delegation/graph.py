"""The induced delegation graph (Section 2.2, "Delegation").

Each voter either votes directly (a *sink*) or delegates to exactly one
other voter; following delegations transitively, each voter's vote lands
on a unique sink.  The sink's *weight* is the number of votes it carries,
including its own.

Because approval requires strictly higher competency (``α > 0``),
delegation graphs induced by approval mechanisms are acyclic.  The
resolver nevertheless detects cycles explicitly — non-approval mechanisms
(used in counterexample experiments) could create them, and votes caught
in a cycle would otherwise silently vanish.

Resolution and depth computation are vectorised pointer doubling over
the whole delegate array: ``O(log n)`` rounds of NumPy fancy indexing
instead of a per-voter Python walk.  The original walking resolver is
retained as :meth:`DelegationGraph._reference_resolve_sinks` and pinned
to the fast path by the equivalence suite.
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SELF = -1
"""Sentinel delegate value meaning "vote directly" (no delegation)."""


class DelegationCycleError(ValueError):
    """Raised when delegation choices contain a cycle.

    Carries the offending ``cycle`` as a list of voter indices in
    delegation order.
    """

    def __init__(self, cycle: List[int]) -> None:
        self.cycle = cycle
        super().__init__(f"delegation cycle detected: {' -> '.join(map(str, cycle))}")


# reprolint: reference=_reference_resolve_sinks
def resolve_forests_batch(
    delegates: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve a whole ``(rounds, n)`` batch of delegate arrays at once.

    Returns ``(sink_of, weights)``, both ``(rounds, n)``: ``sink_of[r, i]``
    is the sink carrying voter ``i``'s vote in round ``r`` and
    ``weights[r, i]`` the votes carried by ``i`` (0 unless a sink).

    Pointer doubling runs over *flattened global* indices — every voter
    of every round is one cell of a single array — so each round of
    fancy indexing is one flat gather instead of a per-row
    ``take_along_axis``.  Only columns that delegate in at least one
    round participate in the doubling (direct voters self-point and
    never move), and pointers are 32-bit while the flat index space
    fits, halving gather traffic.  Integer delegate matrices of any
    width (the batch kernels emit the instance's CSR index dtype,
    int32 below 2^31 voters) are consumed as-is — no int64 upcast
    copy.  Cycles raise :class:`DelegationCycleError` (reported via
    the per-round reference walk).
    """
    delegates = np.asarray(delegates)
    if delegates.dtype.kind != "i":
        delegates = delegates.astype(np.int64)
    if delegates.ndim != 2:
        raise ValueError("delegates must be a (rounds, n) matrix")
    rounds, n = delegates.shape
    if n == 0 or rounds == 0:
        empty = np.zeros((rounds, n), dtype=np.int64)
        return empty, empty.copy()
    idx = np.arange(n, dtype=np.int64)
    bad = (delegates != SELF) & ((delegates < 0) | (delegates >= n))
    if bad.any():
        r, i = np.argwhere(bad)[0]
        raise ValueError(
            f"voter {i} delegates to out-of-range target {delegates[r, i]}"
        )
    moving = (delegates != SELF) & (delegates != idx)
    ptr_dtype = np.int32 if rounds * n <= np.iinfo(np.int32).max else np.int64
    base = (np.arange(rounds, dtype=ptr_dtype) * n)[:, None]
    ptr = delegates.astype(ptr_dtype)
    np.copyto(ptr, idx.astype(ptr_dtype), where=~moving)
    ptr += base
    active = np.flatnonzero(moving.any(axis=0))
    if active.size:
        sub = ptr[:, active]
        for _ in range(int(n).bit_length() + 1):
            nxt = ptr.ravel()[sub]
            if np.array_equal(nxt, sub):
                break
            ptr[:, active] = nxt
            sub = nxt
        # A pointer is resolved iff it landed on a cell that does not
        # delegate in its round; checking the active columns alone
        # suffices (every other column self-points at a sink).
        unresolved = moving.ravel()[sub]
        if unresolved.any():
            r, k = np.argwhere(unresolved)[0]
            DelegationGraph._raise_cycle(delegates[r], int(active[k]))
    flat = ptr.ravel()
    weights = np.bincount(flat, minlength=rounds * n).reshape(rounds, n)
    sink_of = (ptr - base).astype(np.int64, copy=False)
    return sink_of, weights


class DelegationGraph:
    """Resolved delegation choices with sink assignment and weights.

    Parameters
    ----------
    delegates:
        ``delegates[i]`` is the voter ``i`` delegates to, or ``SELF``
        (= -1) when ``i`` votes directly.  Delegating to oneself is
        normalised to ``SELF``.

    Raises
    ------
    DelegationCycleError
        If following delegations from some voter never reaches a sink.
    """

    __slots__ = (
        "_delegates",
        "_sink_of",
        "_sinks",
        "_sink_indices",
        "_weights",
        "_depths",
    )

    def __init__(self, delegates: Sequence[int]) -> None:
        raw = np.asarray(delegates)
        if raw.ndim != 1:
            raise ValueError("delegates must be a one-dimensional sequence")
        n = len(raw)
        normalised = raw.astype(np.int64, copy=True) if n else np.empty(0, np.int64)
        if n:
            idx = np.arange(n, dtype=np.int64)
            normalised[normalised == idx] = SELF
            bad = (normalised != SELF) & ((normalised < 0) | (normalised >= n))
            if bad.any():
                i = int(np.argmax(bad))
                raise ValueError(
                    f"voter {i} delegates to out-of-range target {raw[i]}"
                )
        self._delegates = normalised
        self._delegates.setflags(write=False)
        self._sink_of = self._resolve_sinks(normalised)
        self._sink_of.setflags(write=False)
        sink_indices = np.nonzero(normalised == SELF)[0]
        self._sink_indices = sink_indices
        self._sink_indices.setflags(write=False)
        self._sinks: Tuple[int, ...] = tuple(sink_indices.tolist())
        weights = np.bincount(self._sink_of, minlength=n) if n else np.zeros(0, np.int64)
        self._weights = weights
        self._weights.setflags(write=False)
        self._depths: Optional[np.ndarray] = None

    @staticmethod
    def _resolve_sinks(delegates: np.ndarray) -> np.ndarray:
        """Vectorised pointer doubling; detects cycles.

        Each round replaces every pointer with its pointer's pointer, so
        after ``k`` rounds each voter points ``2^k`` delegation hops
        ahead (absorbed at sinks).  ``ceil(log2 n) + 1`` rounds suffice
        for any forest; voters still not pointing at a sink afterwards
        are necessarily caught in a cycle.
        """
        n = len(delegates)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        idx = np.arange(n, dtype=np.int64)
        ptr = np.where(delegates == SELF, idx, delegates)
        for _ in range(int(n).bit_length() + 1):
            nxt = ptr[ptr]
            if np.array_equal(nxt, ptr):
                break
            ptr = nxt
        unresolved = delegates[ptr] != SELF
        if unresolved.any():
            DelegationGraph._raise_cycle(delegates, int(idx[unresolved][0]))
        return ptr

    @staticmethod
    def _raise_cycle(delegates: np.ndarray, start: int) -> None:
        """Walk from ``start`` (known to feed a cycle) and report it."""
        order: Dict[int, int] = {}
        v = start
        while v not in order:
            order[v] = len(order)
            v = int(delegates[v])
        path = list(order)
        raise DelegationCycleError(path[order[v]:] + [v])

    @staticmethod
    def _reference_resolve_sinks(delegates: np.ndarray) -> np.ndarray:
        """Seed resolver: per-voter walk with path compression.

        Kept as the equivalence-test oracle for :meth:`_resolve_sinks`.
        """
        n = len(delegates)
        sink_of = np.full(n, -2, dtype=np.int64)  # -2 = unresolved
        for start in range(n):
            if sink_of[start] != -2:
                continue
            path = []
            v = start
            while True:
                if sink_of[v] != -2:
                    terminal = int(sink_of[v])
                    break
                path.append(v)
                nxt = int(delegates[v])
                if nxt == SELF:
                    terminal = v
                    break
                if nxt in path:
                    # Walked back onto the current path: a cycle.
                    idx = path.index(nxt)
                    raise DelegationCycleError(path[idx:] + [nxt])
                v = nxt
            for u in path:
                sink_of[u] = terminal
        return sink_of

    # -- accessors ----------------------------------------------------------

    @property
    def num_voters(self) -> int:
        """Number of voters ``n``."""
        return len(self._delegates)

    @property
    def delegates(self) -> np.ndarray:
        """Per-voter delegate array (``SELF`` for direct voters)."""
        return self._delegates

    @property
    def sinks(self) -> Tuple[int, ...]:
        """Voters that vote directly, ascending."""
        return self._sinks

    @property
    def sink_indices(self) -> np.ndarray:
        """Sink voter indices as a read-only array, ascending."""
        return self._sink_indices

    @property
    def sink_weight_array(self) -> np.ndarray:
        """Weights of :attr:`sink_indices`, aligned; sums to ``n``."""
        return self._weights[self._sink_indices]

    @property
    def num_sinks(self) -> int:
        """Number of sinks."""
        return len(self._sinks)

    def sink_of(self, voter: int) -> int:
        """The sink that ultimately carries ``voter``'s vote."""
        return int(self._sink_of[voter])

    def weight(self, voter: int) -> int:
        """Votes carried by ``voter`` (0 unless ``voter`` is a sink)."""
        return int(self._weights[voter])

    def sink_weights(self) -> Dict[int, int]:
        """Mapping sink → weight; weights sum to ``n``."""
        return {s: int(self._weights[s]) for s in self._sinks}

    @property
    def num_delegators(self) -> int:
        """Number of voters that delegated (Definition 2's ``Delegate(n)``)."""
        return self.num_voters - self.num_sinks

    def max_weight(self) -> int:
        """Maximum sink weight ``w`` — the quantity Lemma 5 bounds."""
        if self.num_voters == 0:
            return 0
        return int(self._weights.max())

    def depth(self, voter: int) -> int:
        """Number of delegation hops from ``voter`` to its sink."""
        self._compute_depths()
        assert self._depths is not None
        return int(self._depths[voter])

    def max_depth(self) -> int:
        """Longest delegation chain in the forest."""
        if self.num_voters == 0:
            return 0
        self._compute_depths()
        assert self._depths is not None
        return int(self._depths.max())

    def _compute_depths(self) -> None:
        """Pointer-doubling hop counts: ``depth[i]`` = hops to the sink.

        Maintains the invariant that ``dist[i]`` is the number of hops
        from ``i`` to ``ptr[i]``; squaring the pointers adds the two hop
        counts.  Sinks self-point with distance 0, absorbing the walk.
        """
        if self._depths is not None:
            return
        n = self.num_voters
        if n == 0:
            self._depths = np.empty(0, dtype=np.int64)
            return
        idx = np.arange(n, dtype=np.int64)
        ptr = np.where(self._delegates == SELF, idx, self._delegates)
        dist = (self._delegates != SELF).astype(np.int64)
        while True:
            nxt = ptr[ptr]
            if np.array_equal(nxt, ptr):
                break
            dist += dist[ptr]
            ptr = nxt
        self._depths = dist

    def is_acyclic(self) -> bool:
        """Always True for constructed instances (cycles raise on build)."""
        return True

    def __repr__(self) -> str:
        return (
            f"DelegationGraph(n={self.num_voters}, sinks={self.num_sinks}, "
            f"max_weight={self.max_weight()})"
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def direct(cls, n: int) -> "DelegationGraph":
        """The trivial delegation graph where everyone votes directly."""
        return cls([SELF] * n)
