"""ASCII rendering of delegation forests.

Small forests are easiest to debug visually; :func:`render_forest`
draws each delegation tree root-first with weights and competencies,
the format used by the Figure 2 experiment and the docs.

Example output::

    v1 [p=0.80, w=9]
    ├── v2 [p=0.60]
    │   ├── v4 [p=0.40]
    │   │   └── v8 [p=0.20]
    │   └── v5 [p=0.30]
    ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.delegation.graph import SELF, DelegationGraph


def _children(forest: DelegationGraph) -> Dict[int, List[int]]:
    kids: Dict[int, List[int]] = {v: [] for v in range(forest.num_voters)}
    for v in range(forest.num_voters):
        target = int(forest.delegates[v])
        if target != SELF:
            kids[target].append(v)
    return kids


def _label(
    voter: int,
    forest: DelegationGraph,
    competencies: Optional[Sequence[float]],
    one_based: bool,
) -> str:
    name = f"v{voter + 1}" if one_based else f"v{voter}"
    parts = []
    if competencies is not None:
        parts.append(f"p={float(competencies[voter]):.2f}")
    if int(forest.delegates[voter]) == SELF:
        parts.append(f"w={forest.weight(voter)}")
    return f"{name} [{', '.join(parts)}]" if parts else name


def render_forest(
    forest: DelegationGraph,
    competencies: Optional[Sequence[float]] = None,
    one_based: bool = True,
) -> str:
    """Render ``forest`` as an ASCII tree, one block per sink.

    Parameters
    ----------
    forest:
        The delegation forest to draw.
    competencies:
        Optional per-voter competencies shown as ``p=…``.
    one_based:
        Label voters ``v1 …`` (paper convention) instead of ``v0 …``.
    """
    if competencies is not None and len(competencies) != forest.num_voters:
        raise ValueError(
            f"competency vector length {len(competencies)} does not match "
            f"{forest.num_voters} voters"
        )
    kids = _children(forest)
    lines: List[str] = []

    def draw(voter: int, prefix: str, is_last: bool, is_root: bool) -> None:
        label = _label(voter, forest, competencies, one_based)
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("    " if is_last else "│   ")
        children = sorted(kids[voter])
        for i, child in enumerate(children):
            draw(child, child_prefix, i == len(children) - 1, False)

    for sink in forest.sinks:
        draw(sink, "", True, True)
    return "\n".join(lines)


def render_summary(forest: DelegationGraph) -> str:
    """One-line structural summary of a forest."""
    return (
        f"{forest.num_voters} voters, {forest.num_sinks} sinks, "
        f"{forest.num_delegators} delegations, max weight "
        f"{forest.max_weight()}, max depth {forest.max_depth()}"
    )
