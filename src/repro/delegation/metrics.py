"""Weight-concentration metrics of a delegation forest.

The paper's variance conditions are statements about how concentrated
delegated voting power is: Lemma 5 bounds the maximum sink weight, the
star counterexample maximises it, and Section 6 asks how these quantities
behave on realistic topologies.  :func:`weight_profile` gathers them all
in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.delegation.graph import DelegationGraph
from repro.graphs.properties import gini_coefficient


@dataclass(frozen=True)
class WeightProfile:
    """Concentration statistics of one delegation forest."""

    num_voters: int
    num_sinks: int
    num_delegators: int
    max_weight: int
    mean_weight: float
    weight_gini: float
    effective_num_voters: float
    max_depth: int

    @property
    def delegation_fraction(self) -> float:
        """Fraction of voters that delegated."""
        if self.num_voters == 0:
            return 0.0
        return self.num_delegators / self.num_voters

    def satisfies_max_weight_bound(self, bound: float) -> bool:
        """Whether the Lemma 5 style cap ``max_weight ≤ bound`` holds."""
        return self.max_weight <= bound


def effective_num_voters(weights: np.ndarray) -> float:
    """Inverse-Herfindahl effective number of independent voters.

    ``(Σ w_i)² / Σ w_i²`` — equals the number of sinks when weights are
    uniform, and 1 under a dictatorship.  A direct proxy for the variance
    of the weighted vote sum: outcome variance is ``Σ w_i² p_i (1-p_i)``,
    maximised (for fixed total weight) when the effective number is
    largest.
    """
    arr = np.asarray(weights, dtype=float)
    total_sq = float(arr.sum()) ** 2
    sq_total = float((arr**2).sum())
    if sq_total == 0:
        return 0.0
    return total_sq / sq_total


def weight_profile(delegation: DelegationGraph) -> WeightProfile:
    """Compute the :class:`WeightProfile` of ``delegation``."""
    sink_weights = np.array(
        [delegation.weight(s) for s in delegation.sinks], dtype=float
    )
    num_sinks = delegation.num_sinks
    return WeightProfile(
        num_voters=delegation.num_voters,
        num_sinks=num_sinks,
        num_delegators=delegation.num_delegators,
        max_weight=delegation.max_weight(),
        mean_weight=float(sink_weights.mean()) if num_sinks else 0.0,
        weight_gini=gini_coefficient(sink_weights.tolist()) if num_sinks else 0.0,
        effective_num_voters=effective_num_voters(sink_weights),
        max_depth=delegation.max_depth(),
    )


def outcome_variance(
    delegation: DelegationGraph, competencies: np.ndarray
) -> float:
    """Variance of the weighted number of correct votes.

    ``Var[X] = Σ_{sinks} w_s² p_s (1 - p_s)`` — the quantity the paper's
    "manipulation of variance" is about: DNH fails exactly when delegation
    destroys too much of this variance relative to the n/2 decision margin.
    """
    total = 0.0
    for s in delegation.sinks:
        w = delegation.weight(s)
        p = float(competencies[s])
        total += (w * w) * p * (1.0 - p)
    return total


def normalized_outcome_std(
    delegation: DelegationGraph, competencies: np.ndarray
) -> float:
    """Outcome standard deviation divided by √n.

    Direct voting with bounded competencies keeps this ratio bounded away
    from 0 (Lemma 3's anti-concentration); dictatorial delegation sends it
    to Θ(√n) instead — this statistic makes the "variance manipulation"
    story directly measurable.
    """
    n = delegation.num_voters
    if n == 0:
        return 0.0
    return float(np.sqrt(outcome_variance(delegation, competencies) / n))
