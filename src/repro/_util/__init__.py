"""Internal utilities shared across the :mod:`repro` package.

Nothing in this package is part of the public API; import from the
top-level :mod:`repro` namespace instead.
"""

from repro._util.rng import as_generator, spawn_generators
from repro._util.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_probability_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_probability_vector",
]
