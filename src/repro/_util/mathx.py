"""Small numeric helpers used across analysis modules."""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np


class LRUCache:
    """A small least-recently-used cache for memoising PMF arrays.

    The batched Monte Carlo engine deduplicates sink-weight profiles
    across rounds: identical profiles (common for deterministic
    mechanisms and on complete/regular graphs) hit the cache and skip
    the exact DP entirely.  Bounded so pathological workloads cannot
    hold every distinct ``O(n)`` PMF alive.
    """

    __slots__ = ("_maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def maxsize(self) -> int:
        """Maximum number of retained entries."""
        return self._maxsize

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (None on miss)."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` → ``value``, evicting the oldest entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal (Wald) interval because gain experiments
    routinely estimate probabilities very close to 0 or 1, where Wald
    intervals collapse or escape [0, 1].
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, {trials}], got {successes}")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def logsumexp(values: np.ndarray) -> float:
    """Numerically stable log-sum-exp."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("-inf")
    m = float(np.max(arr))
    if m == float("-inf"):
        return float("-inf")
    return m + float(np.log(np.sum(np.exp(arr - m))))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return min(high, max(low, value))


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
