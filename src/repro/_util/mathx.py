"""Small numeric helpers used across analysis modules."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal (Wald) interval because gain experiments
    routinely estimate probabilities very close to 0 or 1, where Wald
    intervals collapse or escape [0, 1].
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, {trials}], got {successes}")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def logsumexp(values: np.ndarray) -> float:
    """Numerically stable log-sum-exp."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("-inf")
    m = float(np.max(arr))
    if m == float("-inf"):
        return float("-inf")
    return m + float(np.log(np.sum(np.exp(arr - m))))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return min(high, max(low, value))


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
