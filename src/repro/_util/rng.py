"""Random-number-generator plumbing.

Every stochastic entry point in :mod:`repro` accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
Centralising the coercion here keeps experiments reproducible: a single
integer seed at the top of a benchmark deterministically drives every
layer below it.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    thread one generator through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are produced with :meth:`numpy.random.SeedSequence.spawn`, so
    they are statistically independent regardless of how ``seed`` was
    produced.  Used by parameter sweeps to give each grid point its own
    stream while staying reproducible under a single top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Generators carry their own bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    Used by the batched Monte Carlo engine, which needs a *spawnable*
    root rather than a live generator so that per-round child streams
    can be re-derived identically inside worker processes.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
            raise TypeError(
                "generator's bit generator does not expose a SeedSequence"
            )
        return seq
    return np.random.SeedSequence(seed)


def child_seed_sequence(
    root: np.random.SeedSequence, index: int
) -> np.random.SeedSequence:
    """The ``index``-th child of ``root``, by absolute position.

    Equivalent to the child that ``root.spawn`` would produce at
    position ``index`` on a fresh root, but stateless: it neither reads
    nor advances ``root``'s spawn counter, so any process can
    reconstruct any child from ``(root, index)`` alone.  This is the
    determinism contract that makes batched estimates independent of
    ``n_jobs`` and of how rounds are partitioned across workers.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (index,),
        pool_size=root.pool_size,
    )


def derive_seed(seed: SeedLike, index: int) -> Optional[int]:
    """Return a stable derived integer seed for grid point ``index``.

    Unlike :func:`spawn_generators`, this is usable when the consumer wants
    to *store* the seed (e.g. in an experiment record) rather than hold a
    generator object.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        raise TypeError("cannot derive a storable seed from a live Generator")
    if isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if isinstance(seed.entropy, int) else 0
    else:
        base = int(seed)
    # SplitMix-style mix keeps derived seeds well separated.
    mixed = (base + 0x9E3779B97F4A7C15 * (index + 1)) % (2**63)
    return int(mixed)
