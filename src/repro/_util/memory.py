"""Peak-RSS (memory high-water) measurement with stdlib tools only.

The sparse backend's whole promise is peak memory O(E + chunk), so the
benchmark suite and the CI smoke job need an actual high-water number —
without ``psutil``.  Linux exposes two counters:

* ``VmHWM`` in ``/proc/self/status`` — resettable via
  ``/proc/self/clear_refs``, so one process can measure several phases;
* ``ru_maxrss`` from :func:`resource.getrusage` — portable fallback,
  never resets (kilobytes on Linux, bytes on macOS).

:func:`peak_rss_bytes` prefers the resettable counter and falls back
transparently; :func:`reset_peak_rss` reports whether the reset took, so
callers know if a phase measurement is really phase-scoped or
process-lifetime.
"""

from __future__ import annotations

import resource
import sys

_RU_MAXRSS_BYTES_PER_UNIT = 1 if sys.platform == "darwin" else 1024

_PROC_STATUS = "/proc/self/status"
_PROC_CLEAR_REFS = "/proc/self/clear_refs"


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes.

    Reads ``VmHWM`` when procfs is available (Linux), else falls back to
    ``getrusage``'s ``ru_maxrss``.
    """
    try:
        with open(_PROC_STATUS) as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_maxrss * _RU_MAXRSS_BYTES_PER_UNIT


def peak_rss_mib() -> float:
    """:func:`peak_rss_bytes` in MiB (rounded to one decimal)."""
    return round(peak_rss_bytes() / (1024 * 1024), 1)


def reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark; True if the reset took.

    Writes ``5`` to ``/proc/self/clear_refs`` (Linux ≥ 4.0).  When this
    returns False, subsequent :func:`peak_rss_bytes` readings are
    process-lifetime highs rather than phase-scoped highs — callers
    should treat them as upper bounds.
    """
    try:
        with open(_PROC_CLEAR_REFS, "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False
