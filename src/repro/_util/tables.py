"""Minimal ASCII table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's statements
predict; this module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_cell(value: Any, precision: int = 4) -> str:
    """Render a single cell: floats with fixed precision, rest via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-4):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("all rows must have the same number of cells as headers")
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)
