"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie in (0, 1), got {value!r}")
    return float(value)


def check_probability_vector(name: str, values: Sequence[float]) -> np.ndarray:
    """Validate a vector of probabilities and return it as a float array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(np.isnan(arr)):
        raise ValueError(f"{name} contains NaN values")
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        bad = arr[(arr < 0.0) | (arr > 1.0)][0]
        raise ValueError(f"all entries of {name} must lie in [0, 1], found {bad!r}")
    return arr


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a container of ``size``."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not 0 <= value < size:
        raise ValueError(f"{name} must lie in [0, {size}), got {value}")
    return int(value)
