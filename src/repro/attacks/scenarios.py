"""Declarative attack scenarios: who the adversary is, what it may try.

The paper's warning is that delegation *manipulates variance*: its
Figure 1 star concentrates all voting weight on one hub whose competency
(5/8) undercuts the direct-majority probability, breaking do-no-harm
even though every delegation goes "upward".  A scenario here is the
declarative form of one adversary archetype attacking exactly that
failure mode:

* :class:`CompetencyMisreport` — strategic competency misreporting: a
  voter announces an inflated competency, flipping neighbours' approval
  decisions so they delegate to it (the Figure 1 star weaponised: boost
  the hub from benign to 5/8 and every leaf's only approvable neighbour
  becomes the hub);
* :class:`CollusionRing` — a ring of colluders steers delegations
  toward a near-dictator by wiring approval edges at it;
* :class:`SybilFlood` — budgeted Sybil voter injection: fake voters
  join with a single edge to the target and a competency placed just
  low enough to approve it, inflating the target's weight;
* :class:`AdaptiveLemmaProbe` — an adaptive adversary that samples the
  mechanism's own delegation forests, finds the heaviest sink, and
  probes the Lemma 3/5 variance-preserving conditions (max sink weight
  in ``o(n^{1/2 - eps})`` / ``O(n^{0.9})``) by feeding that sink.

Each scenario is a pure proposal generator: ``propose(instance,
mechanism, rng)`` returns candidate :class:`AttackMove`\\ s (edit batches
with a budget cost) and never mutates anything.  Scenarios are
deterministic given the generator they are handed — the attack-
determinism contract (reprolint A501): every scenario declares a
behavioural ``cache_token`` and draws randomness only through
generators built by ``repro._util.rng``, so a search, its served form
and its certificate replay all see identical proposals.

Scenarios travel on the wire as declarative specs (``{"name",
"params"}``) through :data:`SCENARIO_BUILDERS`, mirroring the mechanism
spec registry in :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import ProblemInstance
from repro.incremental.edits import Edit, Join, Rewire, SetCompetency
from repro.mechanisms.base import DelegationMechanism

#: Figure 1 competencies: the hub's 5/8 beats each leaf's 9/16, every
#: leaf delegates, and the electorate collapses onto a 5/8 dictator.
FIGURE1_HUB_COMPETENCY = 5.0 / 8.0
FIGURE1_LEAF_COMPETENCY = 9.0 / 16.0

MAX_PROPOSALS = 64
"""Per-step ceiling on the candidate moves one scenario may emit."""


@dataclass(frozen=True)
class AttackMove:
    """One candidate adversarial action: an edit batch plus its cost.

    ``cost`` is the budget units the move consumes when committed
    (defaulting to one per edit keeps budgets comparable across
    scenarios); ``label`` names the move in search history and
    certificates.
    """

    edits: Tuple[Edit, ...]
    label: str
    cost: int

    def __post_init__(self) -> None:
        if not self.edits:
            raise ValueError("an attack move must carry at least one edit")
        if self.cost < 1:
            raise ValueError(f"move cost must be >= 1, got {self.cost}")


def _move(edits: Sequence[Edit], label: str, cost: Optional[int] = None) -> AttackMove:
    edits = tuple(edits)
    return AttackMove(edits=edits, label=label, cost=len(edits) if cost is None else cost)


class AttackScenario(abc.ABC):
    """Base class for attack scenarios; see the module docstring.

    Subclasses must declare a behavioural :meth:`cache_token` (enforced
    by reprolint A501) and implement :meth:`propose`.  All randomness
    inside :meth:`propose` must come from the passed generator, which
    the search derives through :mod:`repro._util.rng` — never from
    module-level ``numpy.random`` / ``random`` state.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Wire name of this scenario (a :data:`SCENARIO_BUILDERS` key)."""

    @abc.abstractmethod
    def cache_token(self) -> Tuple[Any, ...]:
        """A stable token of this scenario's behaviour.

        Folded into attack-request coalescing keys and certificate
        digests; two scenario objects with equal tokens must propose
        identical moves given identical inputs.
        """

    @abc.abstractmethod
    def propose(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> List[AttackMove]:
        """Candidate moves against the *current* (already-patched) state."""

    def spec(self) -> Dict[str, Any]:
        """The declarative ``{"name", "params"}`` wire form."""
        return {"name": self.name, "params": self._params()}

    @abc.abstractmethod
    def _params(self) -> Dict[str, Any]:
        """The scenario's constructor params in plain JSON types."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _check_positive_int(value: Any, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"scenario param {field!r} must be an integer")
    if value < 1:
        raise ValueError(f"scenario param {field!r} must be >= 1, got {value}")
    return int(value)


def _check_unit(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"scenario param {field!r} must be a number")
    out = float(value)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"scenario param {field!r} must lie in [0, 1], got {out}")
    return out


def _degree_ranked(instance: ProblemInstance, count: int) -> List[int]:
    """The ``count`` highest-degree voters (ties broken by lowest index).

    Degree is the adversary's cheapest proxy for leverage: a misreport
    only moves voters who can *see* the misreporter, so the hub of a
    star is the first voter worth corrupting.
    """
    degrees = instance.approval_structure().degrees
    order = np.lexsort((np.arange(len(degrees)), -degrees))
    return [int(v) for v in order[:count]]


def _neighbor_sets(instance: ProblemInstance) -> List[set]:
    indptr, indices = instance.graph.adjacency_csr()
    return [
        set(int(w) for w in indices[indptr[v]: indptr[v + 1]])
        for v in range(instance.num_voters)
    ]


class CompetencyMisreport(AttackScenario):
    """Strategic competency misreporting against high-leverage voters.

    Proposes :class:`SetCompetency` edits raising a target's announced
    competency to each of ``levels``: the targets are the
    highest-degree voters (plus ``sampled`` rng-drawn extras), because a
    louder announcement only matters to voters adjacent to it.  On the
    benign star this rediscovers Figure 1 exactly — the best move is
    "hub announces 5/8", the smallest level that flips every leaf's
    approval while keeping the hub voting directly.
    """

    def __init__(
        self,
        levels: Sequence[float] = (
            FIGURE1_HUB_COMPETENCY, 0.75, 0.875,
        ),
        targets: int = 3,
        sampled: int = 2,
    ) -> None:
        self._levels = tuple(_check_unit(p, "levels") for p in levels)
        if not self._levels:
            raise ValueError("scenario param 'levels' must be non-empty")
        self._targets = _check_positive_int(targets, "targets")
        self._sampled = int(sampled)
        if self._sampled < 0:
            raise ValueError(
                f"scenario param 'sampled' must be >= 0, got {sampled}"
            )

    @property
    def name(self) -> str:
        return "misreport"

    def cache_token(self) -> Tuple[Any, ...]:
        return (
            type(self).__qualname__, self._levels, self._targets, self._sampled,
        )

    def _params(self) -> Dict[str, Any]:
        return {
            "levels": list(self._levels),
            "targets": self._targets,
            "sampled": self._sampled,
        }

    def propose(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> List[AttackMove]:
        targets = _degree_ranked(instance, self._targets)
        if self._sampled and instance.num_voters > len(targets):
            rest = np.setdiff1d(
                np.arange(instance.num_voters), np.array(targets, dtype=np.int64)
            )
            draw = min(self._sampled, len(rest))
            targets.extend(
                int(v) for v in rng.choice(rest, size=draw, replace=False)
            )
        competencies = instance.competencies
        moves: List[AttackMove] = []
        for voter in targets:
            for level in self._levels:
                if level == float(competencies[voter]):
                    continue
                moves.append(_move(
                    [SetCompetency(voter=voter, competency=level)],
                    f"misreport:v{voter}->{level:g}",
                ))
                if len(moves) >= MAX_PROPOSALS:
                    return moves
        return moves


class CollusionRing(AttackScenario):
    """A colluding ring wires approval edges at a near-dictator.

    The ring picks the most competent voter as its boss and proposes
    :class:`Rewire` edits adding an edge from each (low-competency,
    hence boss-approving) member toward it — plus one aggregate move
    closing the whole ring at once, the budgeted "everyone defects
    together" action.  Voting weight concentrates on the boss the same
    way the Figure 1 star concentrates it on the hub.
    """

    def __init__(self, ring: int = 4) -> None:
        self._ring = _check_positive_int(ring, "ring")

    @property
    def name(self) -> str:
        return "collusion_ring"

    def cache_token(self) -> Tuple[Any, ...]:
        return (type(self).__qualname__, self._ring)

    def _params(self) -> Dict[str, Any]:
        return {"ring": self._ring}

    def propose(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> List[AttackMove]:
        competencies = np.asarray(instance.competencies, dtype=float)
        boss = int(np.argmax(competencies))
        neighbors = _neighbor_sets(instance)
        # Least-competent voters first: they approve the boss (their own
        # competency clears the alpha gap) and carry the least direct
        # voting value, so rewiring them is the cheapest concentration.
        order = np.lexsort((np.arange(len(competencies)), competencies))
        members = [
            int(v) for v in order
            if int(v) != boss and boss not in neighbors[int(v)]
        ][: self._ring]
        moves = [
            _move(
                [Rewire(voter=member, add=(boss,))],
                f"collude:v{member}->v{boss}",
            )
            for member in members
        ]
        if len(members) > 1:
            moves.append(_move(
                [Rewire(voter=member, add=(boss,)) for member in members],
                f"collude:ring{len(members)}->v{boss}",
            ))
        return moves[:MAX_PROPOSALS]


class SybilFlood(AttackScenario):
    """Budgeted Sybil injection: fake voters join pointing at the target.

    Each move is a :class:`Join` whose single neighbour is the most
    competent voter and whose announced competency sits ``gap`` below
    the target's — low enough that the Sybil approves the target (the
    alpha test passes) and delegates its vote upward, high enough to
    look like an ordinary voter.  Inside a delta session every join is
    a full-rebuild edit; the search stays correct, just slower, which
    is exactly what the delta-vs-scratch benchmark quantifies.
    """

    def __init__(self, swarm: int = 2, gap: float = 0.125) -> None:
        self._swarm = _check_positive_int(swarm, "swarm")
        self._gap = _check_unit(gap, "gap")

    @property
    def name(self) -> str:
        return "sybil_flood"

    def cache_token(self) -> Tuple[Any, ...]:
        return (type(self).__qualname__, self._swarm, self._gap)

    def _params(self) -> Dict[str, Any]:
        return {"swarm": self._swarm, "gap": self._gap}

    def propose(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> List[AttackMove]:
        competencies = np.asarray(instance.competencies, dtype=float)
        target = int(np.argmax(competencies))
        sybil_p = max(0.0, float(competencies[target]) - self._gap)
        moves = [
            _move(
                [Join(neighbors=(target,), competency=sybil_p)],
                f"sybil:1->v{target}",
            )
        ]
        if self._swarm > 1:
            moves.append(_move(
                [
                    Join(neighbors=(target,), competency=sybil_p)
                    for _ in range(self._swarm)
                ],
                f"sybil:{self._swarm}->v{target}",
            ))
        return moves


class AdaptiveLemmaProbe(AttackScenario):
    """Adaptive adversary probing the Lemma 3/5 variance conditions.

    Lemmas 3 and 5 are the paper's only variance-preserving escape
    hatches: do-no-harm survives when the maximum delegated weight stays
    in ``o(n^{1/2 - eps})`` (Lemma 3) or, under vanishing-variance
    competencies, ``O(n^{0.9})`` (Lemma 5).  This adversary *measures*
    where the mechanism actually sits — it samples ``probes`` delegation
    forests from the mechanism itself, finds the heaviest sink — and
    then pushes the instance across the threshold: rewiring the least
    competent non-neighbours onto that sink and raising the sink's
    announced competency so more neighbours approve it.
    """

    def __init__(self, probes: int = 2, feeders: int = 3, boost: float = 0.125) -> None:
        self._probes = _check_positive_int(probes, "probes")
        self._feeders = _check_positive_int(feeders, "feeders")
        self._boost = _check_unit(boost, "boost")

    @property
    def name(self) -> str:
        return "lemma_probe"

    def cache_token(self) -> Tuple[Any, ...]:
        return (
            type(self).__qualname__, self._probes, self._feeders, self._boost,
        )

    def _params(self) -> Dict[str, Any]:
        return {
            "probes": self._probes,
            "feeders": self._feeders,
            "boost": self._boost,
        }

    def heaviest_sink(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """The heaviest ``(sink, weight)`` over ``probes`` sampled forests."""
        best_sink, best_weight = 0, 0
        for _ in range(self._probes):
            forest = mechanism.sample_delegations(instance, rng)
            for sink, weight in forest.sink_weights().items():
                if weight > best_weight or (
                    weight == best_weight and sink < best_sink
                ):
                    best_sink, best_weight = int(sink), int(weight)
        return best_sink, best_weight

    @staticmethod
    def lemma_thresholds(num_voters: int) -> Dict[str, float]:
        """The Lemma 3 / Lemma 5 max-weight scales at this electorate size."""
        return {
            "lemma3": float(num_voters) ** 0.5,
            "lemma5": float(num_voters) ** 0.9,
        }

    def propose(
        self,
        instance: ProblemInstance,
        mechanism: DelegationMechanism,
        rng: np.random.Generator,
    ) -> List[AttackMove]:
        sink, _weight = self.heaviest_sink(instance, mechanism, rng)
        competencies = np.asarray(instance.competencies, dtype=float)
        neighbors = _neighbor_sets(instance)
        order = np.lexsort((np.arange(len(competencies)), competencies))
        feeders = [
            int(v) for v in order
            if int(v) != sink and sink not in neighbors[int(v)]
        ][: self._feeders]
        moves = [
            _move(
                [Rewire(voter=feeder, add=(sink,))],
                f"probe:feed v{feeder}->v{sink}",
            )
            for feeder in feeders
        ]
        boosted = min(1.0, float(competencies[sink]) + self._boost)
        if boosted != float(competencies[sink]):
            moves.append(_move(
                [SetCompetency(voter=sink, competency=boosted)],
                f"probe:boost v{sink}->{boosted:g}",
            ))
        return moves[:MAX_PROPOSALS]


# -- scenario specs --------------------------------------------------------


def _check_param_keys(params: Mapping[str, Any], allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown scenario param(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _build_misreport(params: Mapping[str, Any]) -> AttackScenario:
    _check_param_keys(params, ("levels", "targets", "sampled"))
    kwargs: Dict[str, Any] = {}
    if "levels" in params:
        levels = params["levels"]
        if not isinstance(levels, (list, tuple)):
            raise ValueError("scenario param 'levels' must be a list")
        kwargs["levels"] = list(levels)
    for key in ("targets", "sampled"):
        if key in params:
            kwargs[key] = params[key]
    return CompetencyMisreport(**kwargs)


def _build_collusion_ring(params: Mapping[str, Any]) -> AttackScenario:
    _check_param_keys(params, ("ring",))
    return CollusionRing(**dict(params))


def _build_sybil_flood(params: Mapping[str, Any]) -> AttackScenario:
    _check_param_keys(params, ("swarm", "gap"))
    return SybilFlood(**dict(params))


def _build_lemma_probe(params: Mapping[str, Any]) -> AttackScenario:
    _check_param_keys(params, ("probes", "feeders", "boost"))
    return AdaptiveLemmaProbe(**dict(params))


SCENARIO_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], AttackScenario]] = {
    "misreport": _build_misreport,
    "collusion_ring": _build_collusion_ring,
    "sybil_flood": _build_sybil_flood,
    "lemma_probe": _build_lemma_probe,
}
"""Wire name → validated scenario constructor (the scenario registry)."""


def scenario_spec(name: str, **params: Any) -> Dict[str, Any]:
    """Build (and eagerly validate) a scenario spec dict."""
    spec = {"name": name, "params": params}
    build_scenario(spec)
    return spec


def build_scenario(spec: Any) -> AttackScenario:
    """Resolve a ``{"name", "params"}`` spec into a scenario instance."""
    if isinstance(spec, AttackScenario):
        return spec
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"scenario spec must be an object, got {type(spec).__name__}"
        )
    unknown = sorted(set(spec) - {"name", "params"})
    if unknown:
        raise ValueError(f"unknown scenario spec field(s) {unknown}")
    name = spec.get("name")
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_BUILDERS)}"
        )
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError("scenario 'params' must be an object")
    return builder(params)


def benign_star_instance(
    num_voters: int = 25,
    hub_p: float = 0.5,
    leaf_p: float = FIGURE1_LEAF_COMPETENCY,
    alpha: float = 0.01,
) -> ProblemInstance:
    """The Figure 1 star *before* the attack: a hub nobody delegates to.

    Leaves hold the paper's 9/16 competency but the hub announces only
    ``hub_p`` (default 1/2), below every leaf's approval bar — so under
    any approval-based mechanism no leaf delegates and do-no-harm holds
    trivially.  One :class:`CompetencyMisreport` move boosting the hub
    to 5/8 recreates Figure 1 exactly: every leaf's sole approvable
    neighbour becomes the hub, weight collapses onto it, and the
    mechanism's correct-probability drops to 5/8 while the direct
    majority stays far higher.  The seeded starting point for the
    attack-search acceptance tests.
    """
    from repro.graphs.generators import star_graph

    if num_voters < 3:
        raise ValueError(f"a star needs at least 3 voters, got {num_voters}")
    competencies = np.full(num_voters, float(leaf_p))
    competencies[0] = float(hub_p)
    return ProblemInstance(
        star_graph(num_voters), competencies, alpha=float(alpha)
    )
