"""Machine-checkable DNH-violation certificates and their verifier.

A violation found by :class:`~repro.attacks.search.AttackSearch` is only
as good as its replay: the searcher's own estimates could be wrong in
exactly the way that manufactures a "violation".  So every find is
emitted as a :class:`ViolationCertificate` — the serialised base
instance, the mechanism and scenario specs, the committed edit chain,
the engine parameters and seeds, and the pre/post correct-probability
estimates — and :func:`verify_certificate` replays the whole claim
*from scratch*, sharing no state with the search: it rebuilds the
instance from its wire form, re-runs a fresh
:class:`~repro.incremental.session.DeltaSession`, and requires every
estimate field to match **bitwise**, mirroring the repo's
``_reference``-oracle contract (a patched result is only trusted
against an independent recomputation).

Certificates are content-addressed: :meth:`ViolationCertificate.digest`
hashes the canonical JSON of everything above, so a tampered field —
even one float — fails verification at the digest check before any
replay runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cache import _canonical_json, _sha256_hex, instance_token
from repro.core.instance import ProblemInstance
from repro.incremental.edits import edit_chain_digest, edit_from_dict
from repro.voting.montecarlo import CorrectnessEstimate
from repro.voting.outcome import TiePolicy

CERTIFICATE_SCHEMA = 1
"""Bumped whenever the certificate layout changes incompatibly."""


def instance_digest(instance: ProblemInstance) -> str:
    """Content digest of an instance (competencies, graph, alpha)."""
    return _sha256_hex(_canonical_json(instance_token(instance)).encode())


def _estimate_payload(est: CorrectnessEstimate) -> Dict[str, Any]:
    """JSON form of an estimate; floats round-trip exactly."""
    return {
        "probability": est.probability,
        "rounds": est.rounds,
        "std_error": est.std_error,
        "ci_low": est.ci_low,
        "ci_high": est.ci_high,
        "converged": est.converged,
    }


_ESTIMATE_FIELDS = (
    "probability", "rounds", "std_error", "ci_low", "ci_high", "converged",
)


@dataclass(frozen=True)
class ViolationCertificate:
    """A machine-checkable claim that a scenario broke do-no-harm.

    The claim: starting from ``instance`` (the serialised base state)
    and applying ``edits`` (the committed attack chain, in canonical
    wire form, one batch per committed move), the mechanism's
    correct-probability estimate under the recorded engine parameters
    falls short of the direct-majority probability on the same attacked
    state by ``harm`` — and ``harm`` clears ``min_harm`` with a
    ``margin``-sigma statistical cushion.  Every float in ``pre`` /
    ``post`` is the exact value the search observed; the verifier
    replays them bitwise.
    """

    scenario: Dict[str, Any]
    mechanism: Dict[str, Any]
    instance: Dict[str, Any]
    instance_digest: str
    rounds: int
    seed: int
    engine: str
    tie_policy: str
    edits: Tuple[Tuple[Dict[str, Any], ...], ...]
    chain_digest: str
    pre: Dict[str, Any]
    post: Dict[str, Any]
    harm: float
    min_harm: float
    margin: float
    schema: int = CERTIFICATE_SCHEMA

    def payload(self) -> Dict[str, Any]:
        """The digestable content (everything except the digest itself)."""
        return {
            "schema": self.schema,
            "scenario": self.scenario,
            "mechanism": self.mechanism,
            "instance": self.instance,
            "instance_digest": self.instance_digest,
            "rounds": self.rounds,
            "seed": self.seed,
            "engine": self.engine,
            "tie_policy": self.tie_policy,
            "edits": [list(batch) for batch in self.edits],
            "chain_digest": self.chain_digest,
            "pre": self.pre,
            "post": self.post,
            "harm": self.harm,
            "min_harm": self.min_harm,
            "margin": self.margin,
        }

    def digest(self) -> str:
        """Content digest of the whole certificate."""
        return _sha256_hex(_canonical_json(self.payload()).encode())

    def to_dict(self) -> Dict[str, Any]:
        """Wire form: the payload plus its content digest."""
        data = self.payload()
        data["digest"] = self.digest()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ViolationCertificate":
        """Parse a certificate's wire form (digest field ignored here;
        :func:`verify_certificate` is what checks it)."""
        try:
            return cls(
                schema=int(data["schema"]),
                scenario=dict(data["scenario"]),
                mechanism=dict(data["mechanism"]),
                instance=dict(data["instance"]),
                instance_digest=str(data["instance_digest"]),
                rounds=int(data["rounds"]),
                seed=int(data["seed"]),
                engine=str(data["engine"]),
                tie_policy=str(data["tie_policy"]),
                edits=tuple(
                    tuple(dict(edit) for edit in batch)
                    for batch in data["edits"]
                ),
                chain_digest=str(data["chain_digest"]),
                pre=dict(data["pre"]),
                post=dict(data["post"]),
                harm=float(data["harm"]),
                min_harm=float(data["min_harm"]),
                margin=float(data["margin"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed certificate payload: {exc}") from None

    def describe(self) -> str:
        """One human-readable summary line."""
        n = len(self.instance.get("competencies", ()))
        moves = sum(len(batch) for batch in self.edits)
        return (
            f"DNH violation by scenario {self.scenario.get('name')!r} on "
            f"n={n}: {moves} edit(s) in {len(self.edits)} move(s) drop the "
            f"mechanism to p={self.post['estimate']['probability']:.4f} vs "
            f"direct {self.post['direct']:.4f} (harm {self.harm:.4f} > "
            f"min {self.min_harm:g} at {self.margin:g} sigma)"
        )


@dataclass
class VerificationReport:
    """The verifier's verdict: one row per independent check."""

    checks: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, check: str, ok: bool, detail: str = "") -> None:
        self.checks.append({"check": check, "ok": bool(ok), "detail": detail})

    @property
    def ok(self) -> bool:
        """Whether every check passed (and at least one ran)."""
        return bool(self.checks) and all(c["ok"] for c in self.checks)

    def failures(self) -> List[Dict[str, Any]]:
        return [c for c in self.checks if not c["ok"]]

    def describe(self) -> str:
        lines = [
            f"{'PASS' if c['ok'] else 'FAIL'}  {c['check']}"
            + (f": {c['detail']}" if c["detail"] else "")
            for c in self.checks
        ]
        verdict = "certificate verifies" if self.ok else "certificate REJECTED"
        return "\n".join(lines + [verdict])


def _match_estimate(
    report: VerificationReport,
    check: str,
    recorded: Mapping[str, Any],
    replayed: CorrectnessEstimate,
) -> None:
    replay_payload = _estimate_payload(replayed)
    for key in _ESTIMATE_FIELDS:
        if recorded.get(key) != replay_payload[key]:
            report.record(
                check, False,
                f"field {key!r}: recorded {recorded.get(key)!r} != "
                f"replayed {replay_payload[key]!r}",
            )
            return
    report.record(check, True, "all estimate fields bitwise equal")


def verify_certificate(
    certificate: Any, *, cache: Optional[Any] = None
) -> VerificationReport:
    """Replay a certificate from scratch and check every claim bitwise.

    Accepts a :class:`ViolationCertificate` or its wire dict.  The
    replay shares nothing with the search that emitted the certificate:
    the instance is rebuilt from its serialised form, the mechanism and
    scenario come from their declarative specs, and a fresh
    :class:`~repro.incremental.session.DeltaSession` re-estimates the
    pre and post states under the recorded parameters.  Checks:

    1. schema and (for wire dicts) the content digest;
    2. the base instance's content digest;
    3. the edit chain parses and its digest matches;
    4. pre/post mechanism estimates replay bitwise (every field);
    5. pre/post direct-majority probabilities replay bitwise;
    6. the harm arithmetic and the ``harm - margin*se > min_harm``
       violation inequality actually hold.

    Never raises on a bad certificate — a malformed or tampered payload
    yields a report whose failures say what broke.
    """
    from repro.incremental.session import DeltaSession
    from repro.io import instance_from_dict
    from repro.voting.exact import direct_voting_probability

    report = VerificationReport()
    claimed_digest = None
    if isinstance(certificate, Mapping):
        claimed_digest = certificate.get("digest")
        try:
            certificate = ViolationCertificate.from_dict(certificate)
        except ValueError as exc:
            report.record("parse", False, str(exc))
            return report
    cert: ViolationCertificate = certificate

    if cert.schema != CERTIFICATE_SCHEMA:
        report.record(
            "schema", False,
            f"schema {cert.schema} != supported {CERTIFICATE_SCHEMA}",
        )
        return report
    report.record("schema", True)

    if claimed_digest is not None:
        recomputed = cert.digest()
        if claimed_digest != recomputed:
            report.record(
                "digest", False,
                f"claimed {claimed_digest[:16]}... != recomputed "
                f"{recomputed[:16]}... (payload was modified)",
            )
            return report
        report.record("digest", True)

    try:
        instance = instance_from_dict(cert.instance)
    except (KeyError, TypeError, ValueError) as exc:
        report.record("instance", False, f"instance does not rebuild: {exc}")
        return report
    rebuilt_digest = instance_digest(instance)
    report.record(
        "instance-digest",
        rebuilt_digest == cert.instance_digest,
        "" if rebuilt_digest == cert.instance_digest
        else f"rebuilt {rebuilt_digest[:16]}... != recorded "
        f"{cert.instance_digest[:16]}...",
    )

    try:
        batches = [
            [edit_from_dict(edit) for edit in batch] for batch in cert.edits
        ]
    except ValueError as exc:
        report.record("edits", False, f"edit chain does not parse: {exc}")
        return report
    replayed_chain = edit_chain_digest(batches)
    report.record(
        "chain-digest",
        replayed_chain == cert.chain_digest,
        "" if replayed_chain == cert.chain_digest
        else f"replayed {replayed_chain[:16]}... != recorded "
        f"{cert.chain_digest[:16]}...",
    )

    try:
        from repro.service.protocol import ServiceError, build_mechanism

        try:
            mechanism = build_mechanism(dict(cert.mechanism))
        except ServiceError as exc:
            report.record("mechanism", False, str(exc))
            return report
        tie_policy = TiePolicy[cert.tie_policy]
    except KeyError:
        report.record(
            "mechanism", False, f"unknown tie policy {cert.tie_policy!r}"
        )
        return report
    report.record("mechanism", True)

    try:
        session = DeltaSession(
            instance,
            mechanism,
            rounds=cert.rounds,
            seed=cert.seed,
            engine=cert.engine,
            tie_policy=tie_policy,
            cache=cache,
        )
        pre_estimate = session.estimate()
        for batch in batches:
            session.apply(batch)
        post_estimate = session.estimate()
    except ValueError as exc:
        report.record("replay", False, f"replay failed: {exc}")
        return report

    _match_estimate(report, "pre-estimate", cert.pre.get("estimate", {}), pre_estimate)
    _match_estimate(
        report, "post-estimate", cert.post.get("estimate", {}), post_estimate
    )

    pre_direct = direct_voting_probability(
        instance.competencies, tie_policy=tie_policy
    )
    post_direct = direct_voting_probability(
        session.instance.competencies, tie_policy=tie_policy
    )
    report.record(
        "pre-direct",
        cert.pre.get("direct") == pre_direct,
        "" if cert.pre.get("direct") == pre_direct
        else f"recorded {cert.pre.get('direct')!r} != replayed {pre_direct!r}",
    )
    report.record(
        "post-direct",
        cert.post.get("direct") == post_direct,
        "" if cert.post.get("direct") == post_direct
        else f"recorded {cert.post.get('direct')!r} != replayed {post_direct!r}",
    )

    harm = post_direct - post_estimate.probability
    report.record(
        "harm",
        cert.harm == harm,
        "" if cert.harm == harm
        else f"recorded harm {cert.harm!r} != replayed {harm!r}",
    )
    cushion = harm - cert.margin * post_estimate.std_error
    violated = cushion > cert.min_harm
    report.record(
        "violation",
        violated,
        f"harm {harm:.6f} - {cert.margin:g}*se "
        f"{post_estimate.std_error:.6f} = {cushion:.6f} "
        + (">" if violated else "<=") + f" min_harm {cert.min_harm:g}",
    )
    return report
