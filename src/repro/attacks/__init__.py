"""Adversarial manipulation of liquid democracy: scenarios, search, proofs.

The paper's central warning is that delegation *manipulates variance*:
concentrating weight on a few sinks can break do-no-harm even when every
delegation goes "upward" in competency — Figure 1's star, where one
slightly-competent hub absorbs the whole electorate and the mechanism's
correct probability collapses to the hub's.  This package turns that
warning into a red team:

* :mod:`repro.attacks.scenarios` — a declarative
  :class:`AttackScenario` API with four built-ins: strategic competency
  misreporting (:class:`CompetencyMisreport`), collusion rings steering
  delegations toward a near-dictator (:class:`CollusionRing` — the
  Figure 1 star weaponised), budgeted Sybil voter injection
  (:class:`SybilFlood`), and adaptive adversaries probing the Lemma 3/5
  variance-preserving conditions (:class:`AdaptiveLemmaProbe`).
* :mod:`repro.attacks.search` — :class:`AttackSearch`, a greedy budgeted
  driver whose inner loop is a shared
  :class:`~repro.incremental.session.DeltaSession`: candidate moves are
  scored by patched (apply / estimate / un-apply) estimates, not
  from-scratch recomputation.
* :mod:`repro.attacks.certificates` — every violation found is emitted
  as a machine-checkable :class:`ViolationCertificate` that
  :func:`verify_certificate` replays **bitwise** from scratch, sharing
  no state with the search that produced it.

Served at ``POST /v1/attack`` (see :mod:`repro.service`), driven from
the command line by ``repro attack``, and benchmarked by
``benchmarks/bench_attacks.py``.
"""

from repro.attacks.certificates import (
    CERTIFICATE_SCHEMA,
    VerificationReport,
    ViolationCertificate,
    instance_digest,
    verify_certificate,
)
from repro.attacks.scenarios import (
    SCENARIO_BUILDERS,
    AdaptiveLemmaProbe,
    AttackMove,
    AttackScenario,
    CollusionRing,
    CompetencyMisreport,
    SybilFlood,
    benign_star_instance,
    build_scenario,
    scenario_spec,
)
from repro.attacks.search import AttackResult, AttackSearch

__all__ = [
    "AdaptiveLemmaProbe",
    "AttackMove",
    "AttackResult",
    "AttackScenario",
    "AttackSearch",
    "CERTIFICATE_SCHEMA",
    "CollusionRing",
    "CompetencyMisreport",
    "SCENARIO_BUILDERS",
    "SybilFlood",
    "VerificationReport",
    "ViolationCertificate",
    "benign_star_instance",
    "build_scenario",
    "instance_digest",
    "scenario_spec",
    "verify_certificate",
]
