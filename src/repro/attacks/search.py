"""Greedy budgeted attack search for do-no-harm violations.

:class:`AttackSearch` drives a declarative
:class:`~repro.attacks.scenarios.AttackScenario` against an instance:
each step the scenario proposes candidate moves (edit batches with
costs), the searcher scores every affordable candidate by the *harm* it
inflicts — direct-majority correct probability minus the mechanism's
estimate, both on the attacked state — commits the strictly best one,
and stops when the committed harm clears ``min_harm`` with a
``margin``-sigma statistical cushion (a DNH violation, emitted as a
:class:`~repro.attacks.certificates.ViolationCertificate`), when no
candidate improves, or when the budget or step cap runs out.

The inner loop is the point: with ``inner="delta"`` all candidates are
evaluated on **one** shared :class:`~repro.incremental.session.DeltaSession`
by applying the candidate's edits, estimating, and un-applying the
:func:`~repro.incremental.edits.invert_batch` inverse — each score is a
patched estimate touching only the affected voters, not a from-scratch
re-resolution.  ``inner="scratch"`` rebuilds a fresh session per
candidate instead; it is the benchmark baseline
(``benchmarks/bench_attacks.py``) and, because a session is a pure
function of its patched instance, both inners produce **bitwise
identical** scores, commits, and certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro._util.rng import as_generator, as_seed_sequence, child_seed_sequence, derive_seed
from repro.attacks.certificates import (
    ViolationCertificate,
    _estimate_payload,
    instance_digest,
)
from repro.attacks.scenarios import AttackMove, AttackScenario, build_scenario
from repro.core.instance import ProblemInstance
from repro.incremental.edits import (
    Join,
    Leave,
    SetCompetency,
    as_edit,
    canonical_batch,
    edit_chain_digest,
    invert_batch,
)
from repro.incremental.session import DeltaSession
from repro.voting.exact import direct_voting_probability
from repro.voting.montecarlo import CorrectnessEstimate
from repro.voting.outcome import TiePolicy

ENGINES = ("mc", "exact")
INNER_LOOPS = ("delta", "scratch")

#: Scores within this of each other are treated as ties (the earlier
#: proposal wins); committing requires a strictly larger improvement.
_HARM_EPS = 1e-12


@dataclass
class AttackResult:
    """Outcome of one :meth:`AttackSearch.run`.

    ``found`` says whether a certified DNH violation was reached;
    ``certificate`` is its wire dict when it was (kept as a dict so the
    result itself round-trips through JSON unchanged).  ``history`` has
    one record per committed move: step index, move label and cost, the
    post-commit mechanism estimate and direct probability, and the harm.
    """

    found: bool
    scenario: str
    budget: int
    budget_spent: int
    steps: int
    moves_evaluated: int
    baseline_harm: float
    best_harm: float
    history: List[Dict[str, Any]] = field(default_factory=list)
    certificate: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "found": self.found,
            "scenario": self.scenario,
            "budget": self.budget,
            "budget_spent": self.budget_spent,
            "steps": self.steps,
            "moves_evaluated": self.moves_evaluated,
            "baseline_harm": self.baseline_harm,
            "best_harm": self.best_harm,
            "history": self.history,
            "certificate": self.certificate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackResult":
        try:
            certificate = data.get("certificate")
            return cls(
                found=bool(data["found"]),
                scenario=str(data["scenario"]),
                budget=int(data["budget"]),
                budget_spent=int(data["budget_spent"]),
                steps=int(data["steps"]),
                moves_evaluated=int(data["moves_evaluated"]),
                baseline_harm=float(data["baseline_harm"]),
                best_harm=float(data["best_harm"]),
                history=[dict(h) for h in data["history"]],
                certificate=dict(certificate) if certificate is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed attack result payload: {exc}") from None


def _check_positive(value: int, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


class AttackSearch:
    """Explore an attack budget for a certified DNH violation.

    Parameters
    ----------
    instance:
        The base (pre-attack) :class:`~repro.core.instance.ProblemInstance`.
    mechanism:
        A declarative mechanism spec dict (``{"name": ...}`` plus
        parameters, as accepted by the service protocol) — kept
        declarative so certificates replay standalone.
    scenario:
        An :class:`~repro.attacks.scenarios.AttackScenario` or its spec
        dict from :func:`~repro.attacks.scenarios.scenario_spec`.
    budget:
        Total attack budget; each committed move spends its ``cost``.
    rounds, seed, engine, tie_policy:
        Estimation parameters, passed straight to the inner
        :class:`~repro.incremental.session.DeltaSession`; together with
        the instance and mechanism they pin every estimate bitwise.
    min_harm, margin:
        Violation threshold: committed harm must exceed ``min_harm`` by
        ``margin`` standard errors of the mechanism estimate.
    inner:
        ``"delta"`` (shared patched session; default) or ``"scratch"``
        (fresh session per candidate; benchmark baseline).
    max_steps:
        Cap on committed moves (defaults to ``budget``).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        mechanism: Mapping[str, Any],
        scenario: Union[AttackScenario, Mapping[str, Any]],
        *,
        budget: int = 8,
        rounds: int = 64,
        seed: int = 0,
        engine: str = "mc",
        tie_policy: Union[TiePolicy, str] = TiePolicy.INCORRECT,
        min_harm: float = 0.05,
        margin: float = 2.0,
        inner: str = "delta",
        max_steps: Optional[int] = None,
        cache: Optional[Any] = None,
    ) -> None:
        if not isinstance(mechanism, Mapping):
            raise ValueError(
                "mechanism must be a declarative spec mapping "
                "(e.g. {'name': 'random_approved'}) so certificates "
                "replay standalone"
            )
        from repro.service.protocol import ServiceError, build_mechanism

        try:
            built = build_mechanism(dict(mechanism))
        except ServiceError as exc:
            raise ValueError(str(exc)) from None
        from repro.mechanisms.base import LocalDelegationMechanism

        if not isinstance(built, LocalDelegationMechanism) or not (
            getattr(built, "supports_batch_sampling", False)
        ):
            raise ValueError(
                "attack search requires a local mechanism with a batch "
                "kernel (the delta inner loop), got "
                f"{getattr(built, 'name', type(built).__name__)!r}"
            )
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if inner not in INNER_LOOPS:
            raise ValueError(
                f"inner must be one of {INNER_LOOPS}, got {inner!r}"
            )
        if isinstance(tie_policy, str):
            try:
                tie_policy = TiePolicy[tie_policy]
            except KeyError:
                raise ValueError(f"unknown tie policy {tie_policy!r}") from None
        if not isinstance(min_harm, (int, float)) or isinstance(min_harm, bool):
            raise ValueError(f"min_harm must be a number, got {min_harm!r}")
        if not isinstance(margin, (int, float)) or isinstance(margin, bool):
            raise ValueError(f"margin must be a number, got {margin!r}")
        if float(margin) < 0.0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.instance = instance
        self.mechanism_spec = dict(mechanism)
        self.mechanism = built
        self.scenario = build_scenario(scenario)
        self.budget = _check_positive(budget, "budget")
        self.rounds = _check_positive(rounds, "rounds")
        self.seed = int(seed)
        self.engine = engine
        self.tie_policy = tie_policy
        self.min_harm = float(min_harm)
        self.margin = float(margin)
        self.inner = inner
        self.max_steps = (
            self.budget if max_steps is None
            else _check_positive(max_steps, "max_steps")
        )
        self._cache = cache
        # The scenario's proposal stream is seeded independently of the
        # estimation stream so neither perturbs the other.
        self._proposal_root = as_seed_sequence(derive_seed(self.seed, 1))

    # ------------------------------------------------------------------
    # inner loops

    def _fresh_session(self, instance: ProblemInstance) -> DeltaSession:
        return DeltaSession(
            instance,
            self.mechanism,
            rounds=self.rounds,
            seed=self.seed,
            engine=self.engine,
            tie_policy=self.tie_policy,
            cache=self._cache,
        )

    # reprolint: reference=_score_scratch
    def _score_delta(
        self, session: DeltaSession, move: AttackMove
    ) -> CorrectnessEstimate:
        """Patched score: apply, estimate, un-apply on the shared session."""
        inverse = invert_batch(session.instance, move.edits)
        session.apply(move.edits)
        try:
            return session.estimate()
        finally:
            session.apply(inverse)

    def _score_scratch(
        self, instance: ProblemInstance, move: AttackMove
    ) -> CorrectnessEstimate:
        """Baseline score: a fresh session rebuilt per candidate."""
        session = self._fresh_session(instance)
        session.apply(move.edits)
        return session.estimate()

    def _harm(
        self, instance: ProblemInstance, estimate: CorrectnessEstimate
    ) -> Tuple[float, float]:
        direct = direct_voting_probability(
            instance.competencies, tie_policy=self.tie_policy
        )
        return float(direct) - estimate.probability, float(direct)

    # ------------------------------------------------------------------

    def run(self) -> AttackResult:
        """Run the greedy search; returns the (JSON-serialisable) result."""
        session = self._fresh_session(self.instance)
        pre_estimate = session.estimate()
        baseline_harm, _pre_direct = self._harm(session.instance, pre_estimate)

        committed: List[Tuple[Any, ...]] = []  # canonical batches
        history: List[Dict[str, Any]] = []
        moves_evaluated = 0
        budget_left = self.budget
        current_harm = baseline_harm
        post_estimate = pre_estimate
        found = False

        for step in range(self.max_steps):
            rng = as_generator(child_seed_sequence(self._proposal_root, step))
            proposals = self.scenario.propose(
                session.instance, self.mechanism, rng
            )
            affordable = [m for m in proposals if m.cost <= budget_left]
            if not affordable:
                break

            best: Optional[Tuple[AttackMove, CorrectnessEstimate, float]] = None
            for move in affordable:
                moves_evaluated += 1
                if self.inner == "delta":
                    # Shadow edits (e.g. a shared Join) could collide if a
                    # previous candidate leaked state; invert_batch plus
                    # session purity guarantees each candidate scores
                    # against the same committed state.
                    estimate = self._score_delta(session, move)
                else:
                    estimate = self._score_scratch(session.instance, move)
                # Harm is judged on the attacked state: the move may have
                # changed competencies, so recompute direct on a shadow.
                harm = self._candidate_harm(session.instance, move, estimate)
                if best is None or harm > best[2] + _HARM_EPS:
                    best = (move, estimate, harm)

            if best is None or best[2] <= current_harm + _HARM_EPS:
                break  # no strictly improving move

            move, estimate, harm = best
            session.apply(move.edits)
            committed.append(canonical_batch(move.edits))
            budget_left -= move.cost
            current_harm = harm
            post_estimate = estimate
            _harm_now, direct_now = self._harm(session.instance, estimate)
            history.append(
                {
                    "step": step,
                    "label": move.label,
                    "cost": move.cost,
                    "probability": estimate.probability,
                    "std_error": estimate.std_error,
                    "direct": direct_now,
                    "harm": harm,
                }
            )
            if harm - self.margin * estimate.std_error > self.min_harm:
                found = True
                break

        certificate: Optional[Dict[str, Any]] = None
        if found:
            certificate = self._certificate(
                committed, pre_estimate, post_estimate, session.instance
            ).to_dict()

        return AttackResult(
            found=found,
            scenario=self.scenario.name,
            budget=self.budget,
            budget_spent=self.budget - budget_left,
            steps=len(history),
            moves_evaluated=moves_evaluated,
            baseline_harm=baseline_harm,
            best_harm=current_harm,
            history=history,
            certificate=certificate,
        )

    def _candidate_harm(
        self,
        instance: ProblemInstance,
        move: AttackMove,
        estimate: CorrectnessEstimate,
    ) -> float:
        """Harm of a candidate: direct-vs-mechanism on the *attacked* state.

        The direct probability must be computed on the post-move
        competencies (a misreport changes both sides of the comparison),
        so replay the move's competency effects on a scratch copy.
        """
        competencies = instance.competencies
        patched: Optional[List[float]] = None
        for edit in move.edits:
            edit = as_edit(edit)
            if isinstance(edit, SetCompetency):
                if patched is None:
                    patched = [float(p) for p in competencies]
                patched[edit.voter] = edit.competency
            elif isinstance(edit, Join):
                if patched is None:
                    patched = [float(p) for p in competencies]
                patched.append(edit.competency)
            elif isinstance(edit, Leave):
                if patched is None:
                    patched = [float(p) for p in competencies]
                del patched[edit.voter]
        if patched is not None:
            competencies = np.asarray(patched, dtype=np.float64)
        direct = direct_voting_probability(
            competencies, tie_policy=self.tie_policy
        )
        return float(direct) - estimate.probability

    def _certificate(
        self,
        committed: List[Any],
        pre_estimate: CorrectnessEstimate,
        post_estimate: CorrectnessEstimate,
        attacked: ProblemInstance,
    ) -> ViolationCertificate:
        from repro.io import instance_to_dict

        pre_direct = float(
            direct_voting_probability(
                self.instance.competencies, tie_policy=self.tie_policy
            )
        )
        post_direct = float(
            direct_voting_probability(
                attacked.competencies, tie_policy=self.tie_policy
            )
        )
        return ViolationCertificate(
            scenario=self.scenario.spec(),
            mechanism=dict(self.mechanism_spec),
            instance=instance_to_dict(self.instance),
            instance_digest=instance_digest(self.instance),
            rounds=self.rounds,
            seed=self.seed,
            engine=self.engine,
            tie_policy=self.tie_policy.name,
            edits=tuple(tuple(batch) for batch in committed),
            chain_digest=edit_chain_digest(
                [
                    [dict(edit) for edit in batch]
                    for batch in committed
                ]
            ),
            pre={
                "estimate": _estimate_payload(pre_estimate),
                "direct": pre_direct,
            },
            post={
                "estimate": _estimate_payload(post_estimate),
                "direct": post_direct,
            },
            harm=post_direct - post_estimate.probability,
            min_harm=self.min_harm,
            margin=self.margin,
        )
