"""Weighted-majority decision rule and tie policies (Section 2.2).

The paper's rule is strict: the correct option wins only if the weight of
correct sinks strictly exceeds the weight of incorrect sinks; a tie counts
as incorrect.  :class:`TiePolicy` also offers a fair-coin variant used in
robustness checks — none of the paper's asymptotic statements depend on
the tie rule, and the tests confirm the two policies agree up to the tie
probability mass.
"""

from __future__ import annotations

import enum
from typing import Sequence


class TiePolicy(enum.Enum):
    """How a tied weighted majority is resolved."""

    INCORRECT = "incorrect"
    """The paper's rule: correct needs a *strict* majority; ties lose."""

    COIN_FLIP = "coin_flip"
    """A tie is decided by a fair coin (contributes 1/2 probability)."""


def majority_correct(
    correct_weight: float, total_weight: float, tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """Probability the decision is correct given realised sink votes.

    Returns 1.0 / 0.0 for decided outcomes and the tie mass (0.0 or 0.5
    depending on ``tie_policy``) on an exact tie.
    """
    if total_weight < 0 or correct_weight < 0:
        raise ValueError("weights must be non-negative")
    if correct_weight > total_weight:
        raise ValueError(
            f"correct weight {correct_weight} exceeds total {total_weight}"
        )
    incorrect_weight = total_weight - correct_weight
    if correct_weight > incorrect_weight:
        return 1.0
    if correct_weight < incorrect_weight:
        return 0.0
    return 0.5 if tie_policy is TiePolicy.COIN_FLIP else 0.0


def decide(votes: Sequence[bool], weights: Sequence[float],
           tie_policy: TiePolicy = TiePolicy.INCORRECT) -> float:
    """Decision correctness for explicit per-sink votes and weights."""
    if len(votes) != len(weights):
        raise ValueError("votes and weights must have equal length")
    total = float(sum(weights))
    correct = float(sum(w for v, w in zip(votes, weights) if v))
    return majority_correct(correct, total, tie_policy)
