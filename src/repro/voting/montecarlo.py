"""Monte Carlo estimation of ``P^M(G)`` over mechanism randomness.

Two estimators:

* ``exact_conditional=True`` (default) — Rao–Blackwellised: sample only
  the delegation forest, then add the *exact* conditional correctness
  probability of that forest.  Vote-sampling variance vanishes, so a few
  hundred rounds suffice even for tiny gains.
* ``exact_conditional=False`` — the naive full simulation (sample forest
  and votes, record the 0/1 outcome), kept for validation of the exact DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro._util.mathx import wilson_interval
from repro._util.rng import SeedLike, as_generator
from repro.core.instance import ProblemInstance
from repro.voting.exact import forest_correct_probability
from repro.voting.outcome import TiePolicy, majority_correct

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mechanisms.base import DelegationMechanism


@dataclass(frozen=True)
class CorrectnessEstimate:
    """Estimated correct-decision probability with uncertainty.

    ``std_error`` is the standard error of the mean; ``ci_low/ci_high``
    are a 95% interval (Wilson for 0/1 outcomes, normal for the
    Rao–Blackwellised estimator whose per-round values lie in [0, 1]).
    """

    probability: float
    rounds: int
    std_error: float
    ci_low: float
    ci_high: float

    def __float__(self) -> float:
        return self.probability


def sample_outcome(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rng: np.random.Generator,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """One full simulation round: sample forest, sample votes, decide.

    Returns 1.0 / 0.0 (or 0.5 on a coin-flip tie).
    """
    forest = mechanism.sample_delegations(instance, rng)
    comp = instance.competencies
    total = float(instance.num_voters)
    correct = 0.0
    for s in forest.sinks:
        if rng.random() < comp[s]:
            correct += forest.weight(s)
    return majority_correct(correct, total, tie_policy)


def estimate_correct_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    exact_conditional: bool = True,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` over ``rounds`` independent mechanism draws."""
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    values = np.empty(rounds)
    for r in range(rounds):
        if exact_conditional:
            forest = mechanism.sample_delegations(instance, rng)
            values[r] = forest_correct_probability(
                forest, instance.competencies, tie_policy
            )
        else:
            values[r] = sample_outcome(instance, mechanism, rng, tie_policy)
    mean = float(values.mean())
    if exact_conditional:
        se = float(values.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
        ci = (max(0.0, mean - 1.96 * se), min(1.0, mean + 1.96 * se))
    else:
        successes = int(round(values.sum()))
        successes = min(max(successes, 0), rounds)
        ci = wilson_interval(successes, rounds)
        se = float(np.sqrt(mean * (1 - mean) / rounds))
    return CorrectnessEstimate(
        probability=mean, rounds=rounds, std_error=se, ci_low=ci[0], ci_high=ci[1]
    )


def estimate_ballot_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` for mechanisms that may abstain.

    Uses :meth:`~repro.mechanisms.base.DelegationMechanism.sample_ballot`
    and the abstention-aware exact conditional probability, so it agrees
    with :func:`estimate_correct_probability` for never-abstaining
    mechanisms.
    """
    from repro.voting.ballots import ballot_correct_probability

    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    values = np.empty(rounds)
    for r in range(rounds):
        ballot = mechanism.sample_ballot(instance, rng)
        values[r] = ballot_correct_probability(
            ballot, instance.competencies, tie_policy
        )
    mean = float(values.mean())
    se = float(values.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
    return CorrectnessEstimate(
        probability=mean,
        rounds=rounds,
        std_error=se,
        ci_low=max(0.0, mean - 1.96 * se),
        ci_high=min(1.0, mean + 1.96 * se),
    )


def estimate_gain(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> Tuple[float, CorrectnessEstimate, float]:
    """Estimate ``gain(M, G) = P^M(G) − P^D(G)``.

    Direct voting is computed exactly, so the gain estimate inherits only
    the mechanism-sampling uncertainty.  Returns
    ``(gain, mechanism_estimate, direct_probability)``.
    """
    from repro.voting.exact import direct_voting_probability

    direct = direct_voting_probability(instance.competencies, tie_policy)
    est = estimate_correct_probability(
        instance, mechanism, rounds=rounds, seed=seed, tie_policy=tie_policy
    )
    return est.probability - direct, est, direct
