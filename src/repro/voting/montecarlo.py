"""Monte Carlo estimation of ``P^M(G)`` over mechanism randomness.

Two estimators:

* ``exact_conditional=True`` (default) — Rao–Blackwellised: sample only
  the delegation forest, then add the *exact* conditional correctness
  probability of that forest.  Vote-sampling variance vanishes, so a few
  hundred rounds suffice even for tiny gains.
* ``exact_conditional=False`` — the naive full simulation (sample forest
  and votes, record the 0/1 outcome), kept for validation of the exact DP.

Two engines:

* ``engine="serial"`` — the original per-round loop threading one
  generator through all rounds.  Bit-identical to the seed
  implementation; the recorded experiment tables depend on its stream.
* ``engine="batch"`` — :class:`BatchEstimator`: draws every round's
  forest from its own child seed (absolute spawn keys, see
  :func:`repro._util.rng.child_seed_sequence`), deduplicates identical
  sink-weight profiles through an LRU PMF cache, and optionally fans
  rounds out over a process pool.  Results are identical for a fixed
  seed regardless of ``n_jobs`` or worker partitioning (the two engines
  draw different — equally valid — streams, so their estimates differ
  within Monte Carlo error).
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.mathx import LRUCache, wilson_interval
from repro._util.rng import (
    SeedLike,
    as_generator,
    as_seed_sequence,
    child_seed_sequence,
)
from repro.core.instance import ProblemInstance
from repro.voting.exact import (
    forest_correct_probability,
    tail_from_pmf,
    weighted_bernoulli_pmf,
)
from repro.voting.outcome import TiePolicy, majority_correct

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mechanisms.base import DelegationMechanism

ENGINES = ("serial", "batch")
"""Recognised Monte Carlo engines."""


@dataclass(frozen=True)
class CorrectnessEstimate:
    """Estimated correct-decision probability with uncertainty.

    ``std_error`` is the standard error of the mean; ``ci_low/ci_high``
    are a 95% interval (Wilson for 0/1 outcomes, normal for the
    Rao–Blackwellised estimator whose per-round values lie in [0, 1]).
    """

    probability: float
    rounds: int
    std_error: float
    ci_low: float
    ci_high: float

    def __float__(self) -> float:
        return self.probability


def sample_outcome(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rng: np.random.Generator,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """One full simulation round: sample forest, sample votes, decide.

    Returns 1.0 / 0.0 (or 0.5 on a coin-flip tie).
    """
    forest = mechanism.sample_delegations(instance, rng)
    comp = instance.competencies
    total = float(instance.num_voters)
    correct = 0.0
    for s in forest.sinks:
        if rng.random() < comp[s]:
            correct += forest.weight(s)
    return majority_correct(correct, total, tie_policy)


def _profile_key(
    weights: np.ndarray, probs: np.ndarray
) -> Tuple[bytes, bytes]:
    """Canonical hashable key of a sink-weight profile.

    The conditional correctness probability depends only on the multiset
    of ``(weight, competency)`` pairs, so profiles are sorted before
    hashing — forests that permute sinks share one DP.
    """
    order = np.lexsort((probs, weights))
    return (weights[order].tobytes(), probs[order].tobytes())


def _conditional_values(
    instance: ProblemInstance,
    profiles: List[Tuple[np.ndarray, np.ndarray]],
    tie_policy: TiePolicy,
    cache: LRUCache,
) -> np.ndarray:
    """Exact conditional probabilities for a list of sink profiles.

    Deduplicates through ``cache``: each distinct profile pays for one
    weighted-Bernoulli DP; repeats are array lookups.
    """
    total = instance.num_voters
    values = np.empty(len(profiles))
    for i, (weights, probs) in enumerate(profiles):
        key = _profile_key(weights, probs)
        pmf = cache.get(key)
        if pmf is None:
            pmf = weighted_bernoulli_pmf(weights, probs)
            cache.put(key, pmf)
        values[i] = tail_from_pmf(pmf, total, tie_policy)
    return values


def _batch_rounds(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    root: np.random.SeedSequence,
    start: int,
    stop: int,
    tie_policy: TiePolicy,
    exact_conditional: bool,
    cache_size: int,
) -> np.ndarray:
    """Evaluate rounds ``start .. stop-1``; module-level for picklability.

    Round ``r`` always draws from child seed ``r`` of ``root``, so the
    values are independent of how rounds are split across workers.
    """
    comp = instance.competencies
    profiles: List[Tuple[np.ndarray, np.ndarray]] = []
    naive = np.empty(stop - start)
    for offset, r in enumerate(range(start, stop)):
        rng = np.random.default_rng(child_seed_sequence(root, r))
        forest = mechanism.sample_delegations(instance, rng)
        weights = forest.sink_weight_array
        probs = comp[forest.sink_indices]
        if exact_conditional:
            profiles.append((weights, probs))
        else:
            correct = float(weights[rng.random(len(probs)) < probs].sum())
            naive[offset] = majority_correct(
                correct, float(instance.num_voters), tie_policy
            )
    if not exact_conditional:
        return naive
    return _conditional_values(
        instance, profiles, tie_policy, LRUCache(cache_size)
    )


@dataclass
class BatchEstimator:
    """Batched Monte Carlo engine for ``P^M(G)``.

    Draws all rounds' forests up front via the mechanisms' vectorised
    samplers, deduplicates identical sink-weight profiles through an LRU
    PMF cache (:class:`repro._util.mathx.LRUCache`), and — when
    ``n_jobs > 1`` — fans rounds out over a ``concurrent.futures``
    process pool.

    Determinism contract: round ``r`` derives its generator from the
    absolute child seed ``r`` of the root seed, so for a fixed ``seed``
    the estimate is identical for every ``n_jobs`` (and identical to the
    same-seed serial run of this engine).  If the instance or mechanism
    cannot be pickled (e.g. a lambda threshold), the estimator falls
    back to in-process evaluation with a warning — same result, no pool.
    """

    n_jobs: int = 1
    cache_size: int = 512
    _cache: LRUCache = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        self._cache = LRUCache(self.cache_size)

    @property
    def cache(self) -> LRUCache:
        """The in-process PMF cache (worker caches are per-process)."""
        return self._cache

    def estimate(
        self,
        instance: ProblemInstance,
        mechanism: "DelegationMechanism",
        rounds: int = 400,
        seed: SeedLike = None,
        tie_policy: TiePolicy = TiePolicy.INCORRECT,
        exact_conditional: bool = True,
    ) -> CorrectnessEstimate:
        """Estimate ``P^M(G)`` over ``rounds`` independent draws."""
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        root = as_seed_sequence(seed)
        values = self._evaluate(
            instance, mechanism, root, rounds, tie_policy, exact_conditional
        )
        return _summarise_values(values, rounds, exact_conditional)

    def _evaluate(
        self,
        instance: ProblemInstance,
        mechanism: "DelegationMechanism",
        root: np.random.SeedSequence,
        rounds: int,
        tie_policy: TiePolicy,
        exact_conditional: bool,
    ) -> np.ndarray:
        workers = min(self.n_jobs, rounds)
        if workers > 1 and self._picklable(instance, mechanism):
            from concurrent.futures import ProcessPoolExecutor

            bounds = np.linspace(0, rounds, workers + 1).astype(int)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunks = pool.map(
                    _batch_rounds,
                    [instance] * workers,
                    [mechanism] * workers,
                    [root] * workers,
                    bounds[:-1].tolist(),
                    bounds[1:].tolist(),
                    [tie_policy] * workers,
                    [exact_conditional] * workers,
                    [self.cache_size] * workers,
                )
                return np.concatenate(list(chunks))
        if not exact_conditional:
            return _batch_rounds(
                instance, mechanism, root, 0, rounds, tie_policy, False,
                self.cache_size,
            )
        # In-process path shares the estimator's cache across calls.
        comp = instance.competencies
        profiles: List[Tuple[np.ndarray, np.ndarray]] = []
        for r in range(rounds):
            rng = np.random.default_rng(child_seed_sequence(root, r))
            forest = mechanism.sample_delegations(instance, rng)
            profiles.append(
                (forest.sink_weight_array, comp[forest.sink_indices])
            )
        return _conditional_values(instance, profiles, tie_policy, self._cache)

    @staticmethod
    def _picklable(
        instance: ProblemInstance, mechanism: "DelegationMechanism"
    ) -> bool:
        try:
            pickle.dumps((instance, mechanism))
            return True
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            warnings.warn(
                f"falling back to in-process batch estimation: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return False


def _summarise_values(
    values: np.ndarray, rounds: int, exact_conditional: bool
) -> CorrectnessEstimate:
    """Shared mean/CI bookkeeping for both engines."""
    mean = float(values.mean())
    if exact_conditional:
        se = float(values.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
        ci = (max(0.0, mean - 1.96 * se), min(1.0, mean + 1.96 * se))
    else:
        successes = int(round(values.sum()))
        successes = min(max(successes, 0), rounds)
        ci = wilson_interval(successes, rounds)
        se = float(np.sqrt(mean * (1 - mean) / rounds))
    return CorrectnessEstimate(
        probability=mean, rounds=rounds, std_error=se, ci_low=ci[0], ci_high=ci[1]
    )


def estimate_correct_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    exact_conditional: bool = True,
    engine: str = "serial",
    n_jobs: int = 1,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` over ``rounds`` independent mechanism draws.

    ``engine="serial"`` reproduces the seed implementation's stream;
    ``engine="batch"`` (or any ``n_jobs > 1``, which implies it) uses
    :class:`BatchEstimator`.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if engine == "batch" or n_jobs > 1:
        return BatchEstimator(n_jobs=n_jobs).estimate(
            instance,
            mechanism,
            rounds=rounds,
            seed=seed,
            tie_policy=tie_policy,
            exact_conditional=exact_conditional,
        )
    rng = as_generator(seed)
    values = np.empty(rounds)
    for r in range(rounds):
        if exact_conditional:
            forest = mechanism.sample_delegations(instance, rng)
            values[r] = forest_correct_probability(
                forest, instance.competencies, tie_policy
            )
        else:
            values[r] = sample_outcome(instance, mechanism, rng, tie_policy)
    return _summarise_values(values, rounds, exact_conditional)


def estimate_ballot_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` for mechanisms that may abstain.

    Uses :meth:`~repro.mechanisms.base.DelegationMechanism.sample_ballot`
    and the abstention-aware exact conditional probability, so it agrees
    with :func:`estimate_correct_probability` for never-abstaining
    mechanisms.
    """
    from repro.voting.ballots import ballot_correct_probability

    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    values = np.empty(rounds)
    for r in range(rounds):
        ballot = mechanism.sample_ballot(instance, rng)
        values[r] = ballot_correct_probability(
            ballot, instance.competencies, tie_policy
        )
    mean = float(values.mean())
    se = float(values.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
    return CorrectnessEstimate(
        probability=mean,
        rounds=rounds,
        std_error=se,
        ci_low=max(0.0, mean - 1.96 * se),
        ci_high=min(1.0, mean + 1.96 * se),
    )


def estimate_gain(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    engine: str = "serial",
    n_jobs: int = 1,
) -> Tuple[float, CorrectnessEstimate, float]:
    """Estimate ``gain(M, G) = P^M(G) − P^D(G)``.

    Direct voting is computed exactly, so the gain estimate inherits only
    the mechanism-sampling uncertainty.  Returns
    ``(gain, mechanism_estimate, direct_probability)``.
    """
    from repro.voting.exact import direct_voting_probability

    direct = direct_voting_probability(instance.competencies, tie_policy)
    est = estimate_correct_probability(
        instance,
        mechanism,
        rounds=rounds,
        seed=seed,
        tie_policy=tie_policy,
        engine=engine,
        n_jobs=n_jobs,
    )
    return est.probability - direct, est, direct
