"""Monte Carlo estimation of ``P^M(G)`` over mechanism randomness.

Two estimators:

* ``exact_conditional=True`` (default) — Rao–Blackwellised: sample only
  the delegation forest, then add the *exact* conditional correctness
  probability of that forest.  Vote-sampling variance vanishes, so a few
  hundred rounds suffice even for tiny gains.
* ``exact_conditional=False`` — the naive full simulation (sample forest
  and votes, record the 0/1 outcome), kept for validation of the exact DP.

Two engines:

* ``engine="serial"`` — the original per-round loop threading one
  generator through all rounds.  Bit-identical to the seed
  implementation; the recorded experiment tables depend on its stream.
* ``engine="batch"`` — :class:`BatchEstimator`: draws every round's
  forest from its own child seed (absolute spawn keys, see
  :func:`repro._util.rng.child_seed_sequence`), deduplicates identical
  sink-weight profiles through an LRU cache, and optionally fans
  rounds out over a process pool.  Results are identical for a fixed
  seed regardless of ``n_jobs`` or worker partitioning (the two engines
  draw different — equally valid — streams, so their estimates differ
  within Monte Carlo error).

The batch engine samples whole ``(rounds, n)`` delegate matrices through
the mechanisms' vectorised uniform kernels
(:meth:`~repro.mechanisms.base.DelegationMechanism.sample_delegations_batch`),
resolves them with one pointer-doubling pass
(:func:`~repro.delegation.graph.resolve_forests_batch`), and evaluates
all uncached sink-weight profiles in one spectral tail computation
(:func:`~repro.voting.exact.weighted_tails_batch`).  Mechanisms without
a kernel transparently fall back to per-round sampling on the same
child seeds.  The per-round engine of the previous revision survives as
``_reference_batch_rounds`` / ``BatchEstimator(use_reference=True)``
for benchmarking and equivalence testing.

On top of either engine, ``target_se`` selects *adaptive precision*
(geometric round batches until the standard error meets the target —
deterministic stopping, see :func:`_adaptive_estimate`) and ``cache``
persists estimates on disk (:mod:`repro.cache`), keyed by a digest of
instance, mechanism behaviour, seed and estimator parameters.
"""

from __future__ import annotations
# reprolint: sparse-safe

import pickle
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from repro._util.mathx import LRUCache, wilson_interval
from repro._util.rng import (
    SeedLike,
    as_generator,
    as_seed_sequence,
    child_seed_sequence,
)
from repro.core.instance import ProblemInstance
from repro.delegation.graph import resolve_forests_batch
from repro.voting.exact import (
    forest_correct_probability,
    tail_from_pmf,
    weighted_bernoulli_pmf,
    weighted_tails_batch,
)
from repro.voting.outcome import TiePolicy, majority_correct

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mechanisms.base import DelegationMechanism

ENGINES = ("serial", "batch")
"""Recognised Monte Carlo engines."""

ADAPTIVE_START = 64
"""First geometric batch size of the adaptive stopping rule."""

CHUNK_BUDGET_BYTES = 256 * 1024 * 1024
"""Default per-chunk memory budget of the streaming batch engine.

The batch engine processes rounds in row-block chunks sized so the
transient per-chunk arrays (uniform cube, delegate matrix, resolved
sink/weight matrices) stay under this budget; peak memory is then
O(E + chunk·n) rather than O(rounds·n).  Chunking never changes results:
round ``r`` is pinned to absolute child seed ``r``, and the conditional
values are exact per-round quantities, so any partition of rounds into
chunks is bit-identical (the same contract that makes results
``n_jobs``-invariant)."""


def _auto_chunk_rounds(
    instance: ProblemInstance, mechanism: "DelegationMechanism"
) -> int:
    """Rounds per streamed chunk under :data:`CHUNK_BUDGET_BYTES`.

    Estimates the dominant per-round footprint: the uniform rows the
    kernel consumes (float64), the delegate row (index dtype), and the
    int64 sink/weight rows plus pointer scratch of
    :func:`~repro.delegation.graph.resolve_forests_batch`.  Small
    instances resolve to chunks far larger than any realistic round
    count, so the single-shot fast path is unchanged below ~10^5 voters.
    """
    n = max(1, instance.num_voters)
    rows = mechanism.batch_uniform_rows() or 0
    per_round = n * (8 * rows + 4 + 3 * 8)
    return max(1, CHUNK_BUDGET_BYTES // per_round)


@dataclass(frozen=True)
class CorrectnessEstimate:
    """Estimated correct-decision probability with uncertainty.

    ``std_error`` is the standard error of the mean; ``ci_low/ci_high``
    are a 95% interval (Wilson for 0/1 outcomes, normal for the
    Rao–Blackwellised estimator whose per-round values lie in [0, 1]).
    ``converged`` records whether an adaptive run met its ``target_se``
    (fixed-rounds estimates are trivially converged).
    """

    probability: float
    rounds: int
    std_error: float
    ci_low: float
    ci_high: float
    converged: bool = True

    def __float__(self) -> float:
        return self.probability


def sample_outcome(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rng: np.random.Generator,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """One full simulation round: sample forest, sample votes, decide.

    Returns 1.0 / 0.0 (or 0.5 on a coin-flip tie).
    """
    forest = mechanism.sample_delegations(instance, rng)
    comp = instance.competencies
    total = float(instance.num_voters)
    correct = 0.0
    for s in forest.sinks:
        if rng.random() < comp[s]:
            correct += forest.weight(s)
    return majority_correct(correct, total, tie_policy)


def _profile_key(
    weights: np.ndarray, probs: np.ndarray
) -> Tuple[bytes, bytes]:
    """Canonical hashable key of a sink-weight profile.

    The conditional correctness probability depends only on the multiset
    of ``(weight, competency)`` pairs, so profiles are sorted before
    hashing — forests that permute sinks share one DP.
    """
    order = np.lexsort((probs, weights))
    return (weights[order].tobytes(), probs[order].tobytes())


def _conditional_values(
    instance: ProblemInstance,
    profiles: List[Tuple[np.ndarray, np.ndarray]],
    tie_policy: TiePolicy,
    cache: LRUCache,
) -> np.ndarray:
    """Exact conditional probabilities for a list of sink profiles.

    Deduplicates through ``cache``: each distinct profile pays for one
    weighted-Bernoulli DP; repeats are array lookups.
    """
    total = instance.num_voters
    values = np.empty(len(profiles))
    for i, (weights, probs) in enumerate(profiles):
        key = _profile_key(weights, probs)
        pmf = cache.get(key)
        if pmf is None:
            pmf = weighted_bernoulli_pmf(weights, probs)
            cache.put(key, pmf)
        values[i] = tail_from_pmf(pmf, total, tie_policy)
    return values


def _reference_batch_rounds(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    root: np.random.SeedSequence,
    start: int,
    stop: int,
    tie_policy: TiePolicy,
    exact_conditional: bool,
    cache_size: int,
) -> np.ndarray:
    """Per-round batch engine of the previous revision (the oracle).

    Round ``r`` always draws from child seed ``r`` of ``root``, so the
    values are independent of how rounds are split across workers.  Kept
    as the benchmark baseline and the fallback path for mechanisms
    without a uniform kernel; module-level for picklability.
    """
    comp = instance.competencies
    profiles: List[Tuple[np.ndarray, np.ndarray]] = []
    naive = np.empty(stop - start)
    for offset, r in enumerate(range(start, stop)):
        rng = np.random.default_rng(child_seed_sequence(root, r))
        forest = mechanism.sample_delegations(instance, rng)
        weights = forest.sink_weight_array
        probs = comp[forest.sink_indices]
        if exact_conditional:
            profiles.append((weights, probs))
        else:
            correct = float(weights[rng.random(len(probs)) < probs].sum())
            naive[offset] = majority_correct(
                correct, float(instance.num_voters), tie_policy
            )
    if not exact_conditional:
        return naive
    return _conditional_values(
        instance, profiles, tie_policy, LRUCache(cache_size)
    )


_BATCH_DP_CUTOFF = 64
"""Below this total weight the per-profile DP beats the spectral kernel."""


# reprolint: reference=_conditional_values
def _batch_values(
    instance: ProblemInstance,
    weights: np.ndarray,
    tie_policy: TiePolicy,
    cache: LRUCache,
) -> np.ndarray:
    """Exact conditional values for a ``(rounds, n)`` sink-weight matrix.

    ``weights[r, i]`` is the weight voter ``i`` carries in round ``r``
    (0 unless a sink), as returned by
    :func:`~repro.delegation.graph.resolve_forests_batch`.  Columns
    that are zero in *every* round (voters that never sink in this
    batch) are dropped up front — deterministic-condition mechanisms
    produce a fixed mover set, so this typically shrinks the matrix
    substantially before hashing and evaluation.  Rounds are then
    deduplicated by the pair (column set, compacted weight row)
    (competencies are fixed, so equal pairs are equal profiles); the
    cache stores ``(P[W > n/2], P[W = n/2])`` pairs, making cached
    values reusable across tie policies.  All uncached rows go through
    one :func:`~repro.voting.exact.weighted_tails_batch` call (or, for
    small totals, the per-profile DP).
    """
    total = instance.num_voters
    comp = instance.competencies
    rounds = weights.shape[0]
    cols = np.flatnonzero(weights.any(axis=0))
    W = np.ascontiguousarray(weights[:, cols])
    comp_c = comp[cols]
    cols_tag = cols.tobytes()
    keys = [(cols_tag, W[r].tobytes()) for r in range(rounds)]
    # `resolved` holds this call's values independently of the LRU: when
    # a batch has more distinct profiles than the cache holds, earlier
    # entries may already be evicted by read-back time.
    resolved: dict = {}
    pending: dict = {}
    for r, key in enumerate(keys):
        if key in resolved or key in pending:
            continue
        hit = cache.get(key)
        if hit is not None:
            resolved[key] = hit
        else:
            pending[key] = r
    if pending:
        if len(pending) == rounds:
            rows = slice(None)
        else:
            rows = np.fromiter(pending.values(), dtype=np.int64)
        if total < _BATCH_DP_CUTOFF:
            half = total // 2
            for key, r in pending.items():
                mask = W[r] > 0
                pmf = weighted_bernoulli_pmf(W[r][mask], comp_c[mask])
                strict = min(1.0, float(pmf[half + 1 :].sum()))
                atom = float(pmf[half]) if total % 2 == 0 else 0.0
                resolved[key] = (strict, atom)
                cache.put(key, (strict, atom))
        else:
            win, atom = weighted_tails_batch(W[rows], comp_c, total)
            for j, key in enumerate(pending):
                pair = (float(win[j]), float(atom[j]))
                resolved[key] = pair
                cache.put(key, pair)
    values = np.empty(rounds)
    coin = tie_policy is TiePolicy.COIN_FLIP
    for r, key in enumerate(keys):
        strict, atom = resolved[key]
        values[r] = strict + 0.5 * atom if coin else strict
    return np.minimum(values, 1.0)


def _batch_rounds(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    root: np.random.SeedSequence,
    start: int,
    stop: int,
    tie_policy: TiePolicy,
    exact_conditional: bool,
    cache_size: int,
    chunk_rounds: Optional[int] = None,
) -> np.ndarray:
    """Evaluate rounds ``start .. stop-1``; module-level for picklability.

    Forests come from :meth:`sample_delegations_batch` calls — round
    ``r`` is pinned to child seed ``r`` of ``root`` whether it is drawn
    by a vectorised kernel or the per-round fallback, so values stay
    independent of how rounds are split across workers.
    """
    if not exact_conditional and not mechanism.supports_batch_sampling:
        # Per-round loop, bit-identical to the reference engine: the
        # outcome draw continues the forest generator's stream.
        return _reference_batch_rounds(
            instance, mechanism, root, start, stop, tie_policy, False,
            cache_size,
        )
    cache = LRUCache(cache_size) if exact_conditional else None
    return _streamed_rounds(
        instance, mechanism, root, start, stop, tie_policy,
        exact_conditional, cache, chunk_rounds,
    )


def _streamed_rounds(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    root: np.random.SeedSequence,
    start: int,
    stop: int,
    tie_policy: TiePolicy,
    exact_conditional: bool,
    cache: Optional[LRUCache],
    chunk_rounds: Optional[int],
) -> np.ndarray:
    """Row-block streaming core of the batch engine.

    Processes rounds in chunks of ``chunk_rounds`` (default: sized to
    :data:`CHUNK_BUDGET_BYTES`), sampling, resolving and evaluating one
    ``(chunk, n)`` block at a time so delegate/weight matrices for all
    rounds never coexist.  The profile ``cache`` is shared across
    chunks, so dedup reaches across chunk boundaries exactly as it does
    within a single block.
    """
    count = stop - start
    chunk = chunk_rounds or _auto_chunk_rounds(instance, mechanism)
    values = np.empty(count)
    comp = instance.competencies
    total = float(instance.num_voters)
    for cstart in range(start, stop, chunk):
        cstop = min(cstart + chunk, stop)
        delegates = mechanism.sample_delegations_batch(
            instance, cstop - cstart, seed=root, first_round=cstart
        )
        _, weights = resolve_forests_batch(delegates)
        del delegates
        if exact_conditional:
            values[cstart - start : cstop - start] = _batch_values(
                instance, weights, tie_policy, cache
            )
            continue
        for offset, r in enumerate(range(cstart, cstop)):
            # Kernel mechanisms consume uniforms differently from their
            # rng-based samplers, so the outcome draw gets its own
            # spawned child — deterministic and partition-invariant.
            vote_rng = np.random.default_rng(
                child_seed_sequence(root, r).spawn(1)[0]
            )
            mask = weights[offset] > 0
            probs = comp[mask]
            row = weights[offset][mask]
            correct = float(row[vote_rng.random(len(probs)) < probs].sum())
            values[cstart - start + offset] = majority_correct(
                correct, total, tie_policy
            )
    return values


def _resolve_adaptive(
    rounds: int, target_se: Optional[float], max_rounds: Optional[int]
) -> Optional[int]:
    """Validate the adaptive knobs; return the round cap (None = fixed).

    ``target_se=None`` selects the fixed-rounds path (and forbids
    ``max_rounds``, which would silently do nothing).  With a target,
    the cap defaults to ``rounds`` so existing call sites bound the
    adaptive search exactly where the fixed run would have stopped.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if target_se is None:
        if max_rounds is not None:
            raise ValueError("max_rounds requires target_se")
        return None
    if not target_se > 0:
        raise ValueError(f"target_se must be positive, got {target_se}")
    cap = rounds if max_rounds is None else max_rounds
    if cap <= 0:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    return cap


def _adaptive_estimate(
    eval_range: Callable[[int, int], np.ndarray],
    target_se: float,
    cap: int,
    exact_conditional: bool,
) -> CorrectnessEstimate:
    """Grow the round count geometrically until ``target_se`` is met.

    ``eval_range(start, stop)`` evaluates rounds ``start .. stop-1`` and
    must be *extension-consistent*: evaluating ``[0, a)`` then ``[a, b)``
    yields the same values as ``[0, b)`` in one call.  Both engines
    satisfy this — the batch engine pins round ``r`` to absolute child
    seed ``r``, the serial engine threads one generator forward — so the
    stopping round is a deterministic function of the seed alone,
    independent of ``n_jobs`` and of worker partitioning.
    """
    chunks: List[np.ndarray] = []
    done = 0
    target = min(ADAPTIVE_START, cap)
    while True:
        chunks.append(eval_range(done, target))
        done = target
        values = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        est = _summarise_values(values, done, exact_conditional)
        if (done > 1 and est.std_error <= target_se) or done >= cap:
            break
        target = min(cap, done * 2)
    return replace(est, converged=est.std_error <= target_se)


def _cached(
    cache,
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    seed: SeedLike,
    params: dict,
    compute: Callable[[], CorrectnessEstimate],
) -> CorrectnessEstimate:
    """Route ``compute`` through a persistent :class:`~repro.cache.EstimateCache`.

    On a hit with a live ``Generator`` seed, the generator is
    fast-forwarded to the state recorded after the original
    computation, so downstream draws are bit-identical whether the
    estimate came from disk or was recomputed.  Uncacheable inputs
    (fresh-entropy seeds, untokenisable mechanisms) fall through to
    ``compute`` untouched.
    """
    if cache is None:
        return compute()
    from repro.cache import estimate_digest

    digest = estimate_digest(instance, mechanism, seed, params)
    if digest is None:
        return compute()
    entry = cache.get(digest)
    if entry is not None:
        stored = entry["estimate"]
        if isinstance(seed, np.random.Generator) and entry.get("rng_state"):
            seed.bit_generator.state = entry["rng_state"]
        return CorrectnessEstimate(
            probability=float(stored["probability"]),
            rounds=int(stored["rounds"]),
            std_error=float(stored["std_error"]),
            ci_low=float(stored["ci_low"]),
            ci_high=float(stored["ci_high"]),
            converged=bool(stored["converged"]),
        )
    est = compute()
    rng_state = (
        seed.bit_generator.state
        if isinstance(seed, np.random.Generator)
        else None
    )
    cache.put(
        digest,
        {
            "probability": est.probability,
            "rounds": est.rounds,
            "std_error": est.std_error,
            "ci_low": est.ci_low,
            "ci_high": est.ci_high,
            "converged": est.converged,
        },
        rng_state=rng_state,
    )
    return est


@dataclass
class BatchEstimator:
    """Batched Monte Carlo engine for ``P^M(G)``.

    Draws all rounds' forests up front via the mechanisms' vectorised
    samplers, deduplicates identical sink-weight profiles through an LRU
    PMF cache (:class:`repro._util.mathx.LRUCache`), and — when
    ``n_jobs > 1`` — fans rounds out over a ``concurrent.futures``
    process pool.

    Determinism contract: round ``r`` derives its generator from the
    absolute child seed ``r`` of the root seed, so for a fixed ``seed``
    the estimate is identical for every ``n_jobs`` (and identical to the
    same-seed serial run of this engine).  If the instance or mechanism
    cannot be pickled (e.g. a lambda threshold), the estimator falls
    back to in-process evaluation with a warning — same result, no pool.

    ``use_reference=True`` routes everything through the per-round
    engine of the previous revision (``_reference_batch_rounds``) — the
    baseline the benchmark suite measures speedups against.  Both paths
    obey the same determinism contract but consume different uniform
    streams for kernel mechanisms, so their estimates differ within
    Monte Carlo error.

    ``chunk_rounds`` bounds the streaming row-block size: rounds are
    sampled, resolved and evaluated ``chunk_rounds`` at a time (default
    ``None`` sizes chunks to :data:`CHUNK_BUDGET_BYTES`), keeping peak
    memory O(E + chunk·n).  Any value yields bit-identical estimates —
    chunk boundaries, like worker partitions, cannot shift round seeds.
    """

    n_jobs: int = 1
    cache_size: int = 512
    use_reference: bool = False
    chunk_rounds: Optional[int] = None
    _cache: LRUCache = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.chunk_rounds is not None and self.chunk_rounds < 1:
            raise ValueError(
                f"chunk_rounds must be >= 1, got {self.chunk_rounds}"
            )
        self._cache = LRUCache(self.cache_size)

    @property
    def cache(self) -> LRUCache:
        """The in-process PMF cache (worker caches are per-process)."""
        return self._cache

    def estimate(
        self,
        instance: ProblemInstance,
        mechanism: "DelegationMechanism",
        rounds: int = 400,
        seed: SeedLike = None,
        tie_policy: TiePolicy = TiePolicy.INCORRECT,
        exact_conditional: bool = True,
        target_se: Optional[float] = None,
        max_rounds: Optional[int] = None,
    ) -> CorrectnessEstimate:
        """Estimate ``P^M(G)`` over ``rounds`` independent draws.

        With ``target_se`` set, rounds grow in geometric batches
        (``64 → 128 → 256 …``, capped by ``max_rounds``, default
        ``rounds``) until the standard error reaches the target; each
        batch evaluates a contiguous child-seed range, so the stopping
        round — and hence the estimate — is deterministic for a fixed
        seed and invariant to ``n_jobs``.
        """
        cap = _resolve_adaptive(rounds, target_se, max_rounds)
        root = as_seed_sequence(seed)
        if cap is None:
            values = self._evaluate(
                instance, mechanism, root, 0, rounds, tie_policy,
                exact_conditional,
            )
            return _summarise_values(values, rounds, exact_conditional)
        return _adaptive_estimate(
            lambda start, stop: self._evaluate(
                instance, mechanism, root, start, stop, tie_policy,
                exact_conditional,
            ),
            target_se,
            cap,
            exact_conditional,
        )

    def _evaluate(
        self,
        instance: ProblemInstance,
        mechanism: "DelegationMechanism",
        root: np.random.SeedSequence,
        start: int,
        stop: int,
        tie_policy: TiePolicy,
        exact_conditional: bool,
    ) -> np.ndarray:
        """Evaluate the child-seed rounds ``start .. stop-1``."""
        count = stop - start
        rounds_fn = _reference_batch_rounds if self.use_reference else _batch_rounds
        workers = min(self.n_jobs, count)
        if workers > 1 and self._picklable(instance, mechanism):
            from concurrent.futures import ProcessPoolExecutor

            bounds = np.linspace(start, stop, workers + 1).astype(int)
            map_args = [
                [instance] * workers,
                [mechanism] * workers,
                [root] * workers,
                bounds[:-1].tolist(),
                bounds[1:].tolist(),
                [tie_policy] * workers,
                [exact_conditional] * workers,
                [self.cache_size] * workers,
            ]
            if not self.use_reference:
                map_args.append([self.chunk_rounds] * workers)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunks = pool.map(rounds_fn, *map_args)
                return np.concatenate(list(chunks))
        if not exact_conditional:
            if self.use_reference:
                return rounds_fn(
                    instance, mechanism, root, start, stop, tie_policy,
                    False, self.cache_size,
                )
            return _batch_rounds(
                instance, mechanism, root, start, stop, tie_policy, False,
                self.cache_size, self.chunk_rounds,
            )
        # In-process paths share the estimator's cache across calls.
        if self.use_reference:
            comp = instance.competencies
            profiles: List[Tuple[np.ndarray, np.ndarray]] = []
            for r in range(start, stop):
                rng = np.random.default_rng(child_seed_sequence(root, r))
                forest = mechanism.sample_delegations(instance, rng)
                profiles.append(
                    (forest.sink_weight_array, comp[forest.sink_indices])
                )
            return _conditional_values(
                instance, profiles, tie_policy, self._cache
            )
        return _streamed_rounds(
            instance, mechanism, root, start, stop, tie_policy, True,
            self._cache, self.chunk_rounds,
        )

    @staticmethod
    def _picklable(
        instance: ProblemInstance, mechanism: "DelegationMechanism"
    ) -> bool:
        try:
            pickle.dumps((instance, mechanism))
            return True
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            warnings.warn(
                f"falling back to in-process batch estimation: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return False


def _summarise_values(
    values: np.ndarray, rounds: int, exact_conditional: bool
) -> CorrectnessEstimate:
    """Shared mean/CI bookkeeping for both engines."""
    mean = float(values.mean())
    if exact_conditional:
        se = float(values.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
        ci = (max(0.0, mean - 1.96 * se), min(1.0, mean + 1.96 * se))
    else:
        successes = int(round(values.sum()))
        successes = min(max(successes, 0), rounds)
        ci = wilson_interval(successes, rounds)
        se = float(np.sqrt(mean * (1 - mean) / rounds))
    return CorrectnessEstimate(
        probability=mean, rounds=rounds, std_error=se, ci_low=ci[0], ci_high=ci[1]
    )


def estimate_correct_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    exact_conditional: bool = True,
    engine: str = "serial",
    n_jobs: int = 1,
    target_se: Optional[float] = None,
    max_rounds: Optional[int] = None,
    cache=None,
    estimator: Optional["BatchEstimator"] = None,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` over ``rounds`` independent mechanism draws.

    ``engine="serial"`` reproduces the seed implementation's stream;
    ``engine="batch"`` (or any ``n_jobs > 1``, which implies it) uses
    :class:`BatchEstimator`.

    ``target_se`` switches on adaptive precision: rounds grow in
    geometric batches until the standard error reaches the target or
    ``max_rounds`` (default ``rounds``) is exhausted.  With
    ``target_se=None`` the fixed-rounds behaviour is reproduced exactly.
    ``cache`` (a :class:`repro.cache.EstimateCache`) persists the
    estimate on disk keyed by instance/mechanism/seed/params, so
    repeated sweeps skip already-computed points.

    ``estimator`` — an existing :class:`BatchEstimator` — selects the
    batch engine and reuses that estimator's warm profile cache instead
    of constructing a fresh one.  The estimate is bit-identical either
    way (profile-cache entries are exact values); callers serving many
    related estimates — the estimation service groups requests sharing
    an instance/mechanism — pass one estimator per group so repeated
    sink-weight profiles skip their DP across calls, not just within
    one.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    cap = _resolve_adaptive(rounds, target_se, max_rounds)
    use_batch = engine == "batch" or n_jobs > 1 or estimator is not None

    def compute() -> CorrectnessEstimate:
        if use_batch:
            runner = (
                estimator if estimator is not None else BatchEstimator(n_jobs=n_jobs)
            )
            return runner.estimate(
                instance,
                mechanism,
                rounds=rounds,
                seed=seed,
                tie_policy=tie_policy,
                exact_conditional=exact_conditional,
                target_se=target_se,
                max_rounds=max_rounds,
            )
        rng = as_generator(seed)

        def eval_range(start: int, stop: int) -> np.ndarray:
            values = np.empty(stop - start)
            for i in range(stop - start):
                if exact_conditional:
                    forest = mechanism.sample_delegations(instance, rng)
                    values[i] = forest_correct_probability(
                        forest, instance.competencies, tie_policy
                    )
                else:
                    values[i] = sample_outcome(
                        instance, mechanism, rng, tie_policy
                    )
            return values

        if cap is None:
            return _summarise_values(
                eval_range(0, rounds), rounds, exact_conditional
            )
        return _adaptive_estimate(eval_range, target_se, cap, exact_conditional)

    params = {
        "fn": "estimate_correct_probability",
        "rounds": rounds,
        "tie_policy": tie_policy.name,
        "exact_conditional": bool(exact_conditional),
        "engine": "batch" if use_batch else "serial",
        "target_se": target_se,
        "max_rounds": None if target_se is None else cap,
    }
    return _cached(cache, instance, mechanism, seed, params, compute)


def _ballot_values(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    root: np.random.SeedSequence,
    start: int,
    stop: int,
    tie_policy: TiePolicy,
) -> np.ndarray:
    """Ballot rounds ``start .. stop-1`` on absolute child seeds.

    The ballot counterpart of :func:`_batch_rounds`' fallback path;
    module-level for picklability.
    """
    from repro.voting.ballots import ballot_correct_probability

    values = np.empty(stop - start)
    for offset, r in enumerate(range(start, stop)):
        rng = np.random.default_rng(child_seed_sequence(root, r))
        ballot = mechanism.sample_ballot(instance, rng)
        values[offset] = ballot_correct_probability(
            ballot, instance.competencies, tie_policy
        )
    return values


def estimate_ballot_probability(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    engine: str = "serial",
    n_jobs: int = 1,
    target_se: Optional[float] = None,
    max_rounds: Optional[int] = None,
    cache=None,
) -> CorrectnessEstimate:
    """Estimate ``P^M(G)`` for mechanisms that may abstain.

    Uses :meth:`~repro.mechanisms.base.DelegationMechanism.sample_ballot`
    and the abstention-aware exact conditional probability, so it agrees
    with :func:`estimate_correct_probability` for never-abstaining
    mechanisms.  Shares its siblings' parameter surface:
    ``engine="serial"`` threads one generator through all rounds (the
    seed stream); ``engine="batch"`` (or ``n_jobs > 1``) pins round
    ``r`` to absolute child seed ``r`` and optionally fans rounds out
    over a process pool; ``target_se``/``max_rounds`` select adaptive
    precision and ``cache`` persists the result.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    cap = _resolve_adaptive(rounds, target_se, max_rounds)
    use_batch = engine == "batch" or n_jobs > 1

    def compute() -> CorrectnessEstimate:
        if use_batch:
            root = as_seed_sequence(seed)

            def eval_range(start: int, stop: int) -> np.ndarray:
                workers = min(n_jobs, stop - start)
                if workers > 1 and BatchEstimator._picklable(
                    instance, mechanism
                ):
                    from concurrent.futures import ProcessPoolExecutor

                    bounds = np.linspace(start, stop, workers + 1).astype(int)
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        chunks = pool.map(
                            _ballot_values,
                            [instance] * workers,
                            [mechanism] * workers,
                            [root] * workers,
                            bounds[:-1].tolist(),
                            bounds[1:].tolist(),
                            [tie_policy] * workers,
                        )
                        return np.concatenate(list(chunks))
                return _ballot_values(
                    instance, mechanism, root, start, stop, tie_policy
                )

        else:
            from repro.voting.ballots import ballot_correct_probability

            rng = as_generator(seed)

            def eval_range(start: int, stop: int) -> np.ndarray:
                values = np.empty(stop - start)
                for i in range(stop - start):
                    ballot = mechanism.sample_ballot(instance, rng)
                    values[i] = ballot_correct_probability(
                        ballot, instance.competencies, tie_policy
                    )
                return values

        if cap is None:
            return _summarise_values(eval_range(0, rounds), rounds, True)
        return _adaptive_estimate(eval_range, target_se, cap, True)

    params = {
        "fn": "estimate_ballot_probability",
        "rounds": rounds,
        "tie_policy": tie_policy.name,
        "engine": "batch" if use_batch else "serial",
        "target_se": target_se,
        "max_rounds": None if target_se is None else cap,
    }
    return _cached(cache, instance, mechanism, seed, params, compute)


def estimate_gain(
    instance: ProblemInstance,
    mechanism: "DelegationMechanism",
    rounds: int = 400,
    seed: SeedLike = None,
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
    exact_conditional: bool = True,
    engine: str = "serial",
    n_jobs: int = 1,
    target_se: Optional[float] = None,
    max_rounds: Optional[int] = None,
    cache=None,
    estimator: Optional["BatchEstimator"] = None,
) -> Tuple[float, CorrectnessEstimate, float]:
    """Estimate ``gain(M, G) = P^M(G) − P^D(G)``.

    Direct voting is computed exactly, so the gain estimate inherits only
    the mechanism-sampling uncertainty.  Returns
    ``(gain, mechanism_estimate, direct_probability)``.  The
    ``exact_conditional``, adaptive (``target_se``/``max_rounds``),
    persistence (``cache``) and shared ``estimator`` knobs are forwarded
    to :func:`estimate_correct_probability`.
    """
    from repro.voting.exact import direct_voting_probability

    direct = direct_voting_probability(instance.competencies, tie_policy)
    est = estimate_correct_probability(
        instance,
        mechanism,
        rounds=rounds,
        seed=seed,
        tie_policy=tie_policy,
        exact_conditional=exact_conditional,
        engine=engine,
        n_jobs=n_jobs,
        target_se=target_se,
        max_rounds=max_rounds,
        cache=cache,
        estimator=estimator,
    )
    return est.probability - direct, est, direct
