"""Exact correct-decision probabilities via weight-sum dynamic programming.

For a fixed delegation forest the number of correct votes is a *weighted*
sum of independent Bernoullis — one per sink, scaled by the sink's weight.
Its distribution lives on the integers ``0 .. n``, so an exact
convolution over sink weights computes the exact tail probability.
Direct voting is the special case where every weight is 1 (the classical
Poisson binomial).

These exact routines are the backbone of the benchmark harness: DNH
losses shrink polynomially in ``n``, far below Monte Carlo noise floors,
so measuring them requires exact conditional probabilities.

Performance architecture (see ``docs/performance.md``):

* :func:`poisson_binomial_pmf` is a divide-and-conquer merge tree.  The
  per-Bernoulli length-2 PMFs are merged pairwise in vectorised batches
  while blocks are short, then the surviving long blocks are merged with
  ``np.convolve`` — no per-element Python iteration anywhere.
* :func:`weighted_bernoulli_pmf` buckets sinks by weight: each distinct
  weight's sinks collapse into one Poisson-binomial pass (the weight-1
  majority is a single pass), the bucket PMF is stretched onto the
  ``w``-spaced lattice, and buckets are merged by convolution.
* The original quadratic loops are retained as ``_reference_*`` and the
  randomized equivalence suite (``tests/test_perf_kernels.py``) pins the
  fast kernels to them at ≤1e-12 absolute error.
"""

from __future__ import annotations

import heapq
from functools import lru_cache
from math import erf, sqrt
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro._util.validation import check_probability_vector
from repro.delegation.graph import DelegationGraph
from repro.voting.outcome import TiePolicy

_DP_CUTOFF = 64
"""Input size below which the plain DP beats the merge tree (overhead)."""

_TREE_MIN_BLOCKS = 16
"""Block count at which batched pair merging yields to ``np.convolve``."""


def _reference_poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """Seed implementation: iterative convolution, O(n²) time.

    Kept as the equivalence-test oracle for :func:`poisson_binomial_pmf`.
    """
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for k, pi in enumerate(p):
        # After processing k variables only entries 0..k are non-zero.
        upper = k + 1
        pmf[1 : upper + 1] = pmf[1 : upper + 1] * (1.0 - pi) + pmf[:upper] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def _pb_dp(p: np.ndarray) -> np.ndarray:
    """Plain iterative DP — fastest below :data:`_DP_CUTOFF` elements."""
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for k, pi in enumerate(p):
        pmf[1 : k + 2] = pmf[1 : k + 2] * (1.0 - pi) + pmf[: k + 1] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def _grouped_pb(groups: List[np.ndarray]) -> List[np.ndarray]:
    """Poisson-binomial PMFs of several groups via one batched merge tree.

    Each group is padded with ``p = 0`` Bernoullis (convolution
    identities) to a common power-of-two width, so batched pair merges
    stay inside group boundaries at every level.  Padding entries leave
    exact zeros beyond a group's true support, which the final slice
    removes — no approximation is introduced.
    """
    sizes = [len(g) for g in groups]
    num_groups = len(groups)
    width = 1 << max(0, max(sizes) - 1).bit_length()
    padded = np.zeros((num_groups, width))
    for row, group in enumerate(groups):
        padded[row, : len(group)] = group
    if width == 1:
        blocks = np.empty((num_groups, 2))
        blocks[:, 0] = 1.0 - padded.ravel()
        blocks[:, 1] = padded.ravel()
    else:
        # First merge level in closed form: the product of two length-2
        # PMFs is a length-3 PMF, cheaper as three ufunc lines than as a
        # batched convolution over 2x as many rows.
        pp = padded.reshape(num_groups * width // 2, 2)
        qq = 1.0 - pp
        blocks = np.empty((num_groups * width // 2, 3))
        blocks[:, 0] = qq[:, 0] * qq[:, 1]
        blocks[:, 1] = pp[:, 0] * qq[:, 1] + qq[:, 0] * pp[:, 1]
        blocks[:, 2] = pp[:, 0] * pp[:, 1]
    while blocks.shape[0] > max(num_groups, _TREE_MIN_BLOCKS):
        blocks = _convolve_pairs(blocks)
    per_group = blocks.shape[0] // num_groups
    out = []
    for row, size in enumerate(sizes):
        rows = blocks[row * per_group : (row + 1) * per_group]
        pmf = _merge_pmfs(list(rows)) if per_group > 1 else rows[0]
        out.append(pmf[: size + 1])
    return out


def _convolve_pairs(blocks: np.ndarray) -> np.ndarray:
    """One merge level: convolve blocks ``2i`` and ``2i+1`` in a batch.

    ``blocks`` is ``(m, L)`` with even ``m``; returns ``(m/2, 2L-1)``.
    The pairwise polynomial products collapse into a single einsum over
    a sliding-window (Toeplitz) view of the zero-padded right factors.
    Width 3 (the first ladder level, with the most rows) expands the
    five product coefficients explicitly — measurably faster than the
    strided-view einsum at that size.
    """
    m, length = blocks.shape
    left = blocks[0::2]
    if length == 3:
        right = blocks[1::2]
        out = np.empty((m // 2, 5))
        out[:, 0] = left[:, 0] * right[:, 0]
        out[:, 1] = left[:, 0] * right[:, 1] + left[:, 1] * right[:, 0]
        out[:, 2] = (
            left[:, 0] * right[:, 2]
            + left[:, 1] * right[:, 1]
            + left[:, 2] * right[:, 0]
        )
        out[:, 3] = left[:, 1] * right[:, 2] + left[:, 2] * right[:, 1]
        out[:, 4] = left[:, 2] * right[:, 2]
        return out
    out_len = 2 * length - 1
    padded = np.zeros((m // 2, 3 * length - 2))
    padded[:, length - 1 : out_len] = blocks[1::2]
    s0, s1 = padded.strides
    # windows[i, k, j] = padded[i, length-1 + k - j] = right[i, k - j]
    # (a raw strided Toeplitz view: sliding_window_view's checks cost
    # more than the einsum at these block sizes).
    windows = as_strided(
        padded[:, length - 1 :],
        shape=(m // 2, out_len, length),
        strides=(s0, s1, -s1),
    )
    return np.einsum("mj,mkj->mk", left, windows)


def _merge_pmfs(pmfs: List[np.ndarray]) -> np.ndarray:
    """Convolve a list of PMFs with balanced pairwise ``np.convolve``."""
    pmfs = sorted(pmfs, key=len)
    while len(pmfs) > 1:
        pmfs = [
            np.convolve(pmfs[i], pmfs[i + 1]) if i + 1 < len(pmfs) else pmfs[i]
            for i in range(0, len(pmfs), 2)
        ]
    return pmfs[0]


def _pb_unchecked(p: np.ndarray) -> np.ndarray:
    """Poisson-binomial PMF of pre-validated ``p``; see the public docs."""
    n = len(p)
    if n == 0:
        return np.ones(1)
    if n <= _DP_CUTOFF:
        return _pb_dp(p)
    return _grouped_pb([p])[0]


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """PMF of the sum of independent Bernoulli(p_i) variables.

    Returns an array of length ``n + 1`` where entry ``k`` is
    ``P[sum = k]``.  Divide-and-conquer convolution merge tree: length-2
    PMFs are merged pairwise in vectorised batches while many blocks
    remain, then the few surviving long blocks are merged with
    ``np.convolve``.  All arithmetic is plain summation of non-negative
    doubles, so the result matches :func:`_reference_poisson_binomial_pmf`
    to machine precision (the equivalence suite pins it at ≤1e-12).
    """
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    return _pb_unchecked(p)


def _reference_weighted_bernoulli_pmf(
    weights: Sequence[int], probs: Sequence[float]
) -> np.ndarray:
    """Seed implementation: shift-and-add DP, O(#sinks · n) time.

    Kept as the equivalence-test oracle for :func:`weighted_bernoulli_pmf`.
    """
    if len(weights) != len(probs):
        raise ValueError("weights and probs must have equal length")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    total = int(w.sum())
    pmf = np.zeros(total + 1)
    pmf[0] = 1.0
    filled = 0  # highest reachable weight so far
    for wi, pi in zip(w, p):
        wi = int(wi)
        if wi == 0:
            continue
        new = pmf[: filled + 1] * (1.0 - pi)
        shifted = pmf[: filled + 1] * pi
        filled += wi
        pmf[: filled + 1 - wi] = new
        pmf[filled + 1 - wi : filled + 1] = 0.0
        pmf[wi : filled + 1] += shifted
    return pmf


def weighted_bernoulli_pmf(
    weights: Sequence[int], probs: Sequence[float]
) -> np.ndarray:
    """PMF of ``Σ w_i · Bernoulli(p_i)`` on support ``0 .. Σ w_i``.

    Sinks are bucketed by weight: each distinct weight ``w`` contributes
    ``w · PoissonBinomial(probs in bucket)``, whose PMF is the bucket's
    Poisson-binomial PMF stretched onto the ``w``-spaced lattice.  The
    weight-1 majority therefore collapses into a single fast
    Poisson-binomial pass, and bucket PMFs are merged by convolution
    (smallest first, to keep operand lengths short).
    """
    if len(weights) != len(probs):
        raise ValueError("weights and probs must have equal length")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    total = int(w.sum())
    active = w > 0
    if not np.any(active):
        out = np.zeros(total + 1)
        out[0] = 1.0
        return out
    w = w[active]
    p = p[active]
    order = np.argsort(w, kind="stable")
    unique_weights, starts = np.unique(w[order], return_index=True)
    groups = np.split(p[order], starts[1:])
    # One batched merge tree covers every small bucket; the rare huge
    # bucket (e.g. all-weight-1 direct voting) goes through alone so its
    # width does not inflate the shared padding.
    small = [i for i, g in enumerate(groups) if len(g) <= _DP_CUTOFF]
    base_pmfs: List = [None] * len(groups)
    if len(small) == 1:
        base_pmfs[small[0]] = _pb_dp(groups[small[0]])
    elif small:
        for i, pmf in zip(small, _grouped_pb([groups[i] for i in small])):
            base_pmfs[i] = pmf
    for i, g in enumerate(groups):
        if base_pmfs[i] is None:
            base_pmfs[i] = _pb_unchecked(g)
    buckets = []
    for wv, base in zip(unique_weights, base_pmfs):
        wv = int(wv)
        if wv == 1:
            buckets.append(base)
        else:
            stretched = np.zeros(wv * (len(base) - 1) + 1)
            stretched[::wv] = base
            buckets.append(stretched)
    # Support is exactly 0..total by construction.
    return _merge_pmfs(buckets)


def tail_from_pmf(
    pmf: np.ndarray, total_weight: int, tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """P[correct] from a PMF of the correct-vote weight.

    Correct wins iff correct weight strictly exceeds ``total_weight / 2``;
    an exact tie (possible only for even totals) contributes according to
    ``tie_policy``.
    """
    if len(pmf) != total_weight + 1:
        raise ValueError(
            f"pmf length {len(pmf)} does not match total weight {total_weight}"
        )
    half, rem = divmod(total_weight, 2)
    win = float(pmf[half + 1 :].sum())
    if rem == 0 and tie_policy is TiePolicy.COIN_FLIP:
        win += 0.5 * float(pmf[half])
    return min(1.0, win)


def direct_voting_probability(
    competencies: Sequence[float], tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """Exact ``P^D(G)``: probability direct voting decides correctly."""
    p = check_probability_vector("competencies", competencies)
    pmf = poisson_binomial_pmf(p)
    return tail_from_pmf(pmf, len(p), tie_policy)


def forest_correct_probability(
    delegation: DelegationGraph,
    competencies: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Exact correct-decision probability for a fixed delegation forest.

    Conditions on the forest: each sink ``s`` votes correctly with
    probability ``p_s`` carrying weight ``w_s``; the decision is a strict
    weighted majority over total weight ``n``.
    """
    comp = np.asarray(competencies, dtype=float)
    if len(comp) != delegation.num_voters:
        raise ValueError(
            f"competency vector length {len(comp)} does not match "
            f"{delegation.num_voters} voters"
        )
    sinks = delegation.sink_indices
    pmf = weighted_bernoulli_pmf(delegation.sink_weight_array, comp[sinks])
    return tail_from_pmf(pmf, delegation.num_voters, tie_policy)


_EINSUM_MAX = 64
"""Pair-merge operand width below which the einsum kernel beats FFT."""


@lru_cache(maxsize=None)
def _smooth_fft_len(n: int) -> int:
    """Smallest 5-smooth integer ``>= n`` (a fast pocketfft length).

    Power-of-two padding to ``2n`` nearly doubles the transform size;
    mixed-radix lengths with factors {2, 3, 5} stay within ~5% of the
    minimum and measure >2x faster on the doubling-ladder shapes.
    """
    k = max(1, n)
    while True:
        m = k
        for p in (2, 3, 5):
            while m % p == 0:
                m //= p
        if m == 1:
            return k
        k += 1

_PIECE_LEN = 513
"""Doubling-ladder stop: wider bucket classes emit multiple PMF pieces."""


def _classed_pb_pieces(padded: np.ndarray, width: int) -> Tuple[np.ndarray, int]:
    """Batched Poisson-binomial PMFs over ``(m, width)`` padded prob rows.

    All ``m`` groups share the power-of-two pad width, so pair merges stay
    inside group boundaries at every ladder level (einsum batches below
    :data:`_EINSUM_MAX` operand width, batched-FFT doubling above).  The
    ladder stops at :data:`_PIECE_LEN`-wide blocks: the return is
    ``(pieces, n_pieces)`` where group ``g``'s PMF is the convolution of
    rows ``g * n_pieces .. (g + 1) * n_pieces - 1`` of ``pieces`` —
    ``n_pieces == 1`` except for very wide classes, whose final merges are
    cheaper in the caller's shared length-``L`` FFT finish.
    """
    m = padded.shape[0]
    if width == 1:
        out = np.empty((m, 2))
        out[:, 0] = 1.0 - padded[:, 0]
        out[:, 1] = padded[:, 0]
        return out, 1
    pp = padded.reshape(m * width // 2, 2)
    qq = 1.0 - pp
    blocks = np.empty((m * width // 2, 3))
    blocks[:, 0] = qq[:, 0] * qq[:, 1]
    blocks[:, 1] = pp[:, 0] * qq[:, 1] + qq[:, 0] * pp[:, 1]
    blocks[:, 2] = pp[:, 0] * pp[:, 1]
    while blocks.shape[0] > m and blocks.shape[1] < _PIECE_LEN:
        blen = blocks.shape[1]
        if blen <= _EINSUM_MAX:
            blocks = _convolve_pairs(blocks)
        else:
            L = _smooth_fft_len(2 * blen - 1)
            spec = np.fft.rfft(blocks, n=L, axis=1)
            spec = spec[0::2] * spec[1::2]
            out = np.fft.irfft(spec, n=L, axis=1)[:, : 2 * blen - 1]
            np.maximum(out, 0.0, out=out)
            blocks = out
    return blocks, blocks.shape[0] // m


# reprolint: reference=_reference_weighted_bernoulli_pmf
def weighted_tails_batch(
    weights: np.ndarray,
    probs: np.ndarray,
    total: int,
    merge_flop_limit: int = 50_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Strict-majority win probabilities for a batch of sink profiles.

    ``weights`` is a ``(rounds, S)`` integer matrix of sink weights
    (zero entries are ignored, so ragged per-round sink sets fit in one
    rectangular matrix); ``probs`` the matching competencies (``(S,)``
    broadcasts across rounds).  Every round's positive weights must sum
    to ``total`` — delegation conserves votes, and the truncation and
    wrap-correction algebra below relies on it to bound aliasing to the
    single top bin.  Returns ``(win_strict, tie_atom)`` where
    ``win_strict[r] = P[W_r > total / 2]`` and ``tie_atom[r] =
    P[W_r = total / 2]`` (identically zero for odd totals).

    This is the whole-batch counterpart of
    ``tail_from_pmf(weighted_bernoulli_pmf(w, p), total)`` — pinned
    bit-close (≤1e-12) to it by the equivalence suite.  The pipeline is
    described in ``docs/performance.md``:

    1. one cross-round stable argsort buckets every round's sinks by
       weight; bucket boundaries fall out of one flat comparison;
    2. bucket PMFs are computed in mega-batches grouped by power-of-two
       bucket size (:func:`_classed_pb_pieces`);
    3. bucket PMFs are stretched onto their ``w``-spaced lattices by one
       vectorised scatter into a flat buffer;
    4. per round, a shortest-first heap merges small lattice PMFs with
       direct convolution while the pair cost stays under
       ``merge_flop_limit``; the few surviving *finalists* are
    5. zero-padded into one matrix and multiplied in Fourier space at a
       shared length ``L``, and the half-point CDF and tie atom are read
       off with spectral dot products (no inverse transform).  For even
       totals ``L = total``: the only aliased product coefficient is the
       top one, which equals the product of finalist top coefficients
       and is subtracted exactly (it vanishes whenever truncation at
       ``half + 1`` occurred, since then the computed degrees sum below
       ``L``).
    """
    W = np.asarray(weights)
    if W.ndim != 2:
        raise ValueError("weights must be a (rounds, S) matrix")
    rounds, S = W.shape
    P = np.broadcast_to(np.asarray(probs, dtype=float), (rounds, S))
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    half = total // 2
    cap = half + 1
    even = total % 2 == 0
    if even:
        L = max(2, total)
    else:
        L = 1 << int(total).bit_length()
    # 0. factor out sinks whose weight (and competency) is constant
    # across the whole batch: their joint PMF is shared by every round,
    # so it is computed once with the per-profile kernel and multiplied
    # into each round's spectral product at the finish.  Mechanisms with
    # deterministic delegation conditions leave many sinks untouched
    # round over round, making this a large cut of the per-round work.
    shared: Optional[np.ndarray] = None
    if rounds > 1 and S > 1:
        const_cols = (W == W[0]).all(axis=0) & (W[0] > 0)
        if P.strides[0] != 0:
            const_cols &= (P == P[0]).all(axis=0)
        if int(const_cols.sum()) >= 16:
            wc = np.asarray(W[0, const_cols], dtype=np.int64)
            pc = np.ascontiguousarray(P[0, const_cols])
            if int(wc.sum()) + 1 <= L:
                var_cols = ~const_cols
                varW = np.ascontiguousarray(W[:, var_cols])
                if not (varW > 0).any():
                    # Every round is the same profile: one PMF decides all.
                    pmf = weighted_bernoulli_pmf(wc, pc)
                    strict = (
                        min(1.0, float(pmf[half + 1 :].sum()))
                        if len(pmf) > half + 1
                        else 0.0
                    )
                    atom = float(pmf[half]) if even and len(pmf) > half else 0.0
                    return np.full(rounds, strict), np.full(rounds, atom)
                if (varW > 0).any(axis=1).all():
                    shared = weighted_bernoulli_pmf(wc, pc)
                    W = varW
                    if P.strides[0] == 0:
                        P = np.broadcast_to(
                            np.ascontiguousarray(P[0, var_cols]),
                            varW.shape,
                        )
                    else:
                        P = np.ascontiguousarray(P[:, var_cols])
                    S = W.shape[1]
    # 1. bucket sinks by weight: one cross-round sort + flat boundaries.
    # Weights are bounded by ``total``, so narrow the sort key when it
    # fits — NumPy's stable argsort uses radix sort for 16-bit integers,
    # roughly an order of magnitude faster than comparison sort here.
    if total < 1 << 15:
        sort_key = W.astype(np.int16)
    elif total < 1 << 16:
        sort_key = W.astype(np.uint16)
    else:
        sort_key = W
    order = np.argsort(sort_key, axis=1, kind="stable")
    Wsort = np.take_along_axis(W, order, axis=1).astype(np.int64, copy=False)
    Psort = np.ascontiguousarray(np.take_along_axis(P, order, axis=1))
    flatW = Wsort.ravel()
    newseg = np.empty(rounds * S, dtype=bool)
    newseg[0] = True
    newseg[1:] = flatW[1:] != flatW[:-1]
    newseg[::S] = True
    seg_start = np.flatnonzero(newseg)
    seg_len = np.diff(np.append(seg_start, rounds * S))
    seg_w = flatW[seg_start]
    keep = seg_w > 0
    seg_start, seg_len, seg_w = seg_start[keep], seg_len[keep], seg_w[keep]
    # Split buckets wider than one ladder piece into chunks: a bucket of
    # 513+ sinks would otherwise be padded to the next power of two and
    # emitted as multiple pieces, paying for the padding; equal chunks
    # of at most ``_PIECE_LEN - 1`` leaves land in the cheapest size
    # class that fits and always complete to a single PMF piece.  The
    # chunks rejoin in the per-round merge like any other segment.
    maxlen = _PIECE_LEN - 1
    if seg_len.size and int(seg_len.max()) > maxlen:
        nch = -(-seg_len // maxlen)
        within = np.arange(int(nch.sum())) - np.repeat(
            np.cumsum(nch) - nch, nch
        )
        seg_start = np.repeat(seg_start, nch) + within * maxlen
        seg_len = np.minimum(np.repeat(seg_len, nch) - within * maxlen, maxlen)
        seg_w = np.repeat(seg_w, nch)
    seg_round = seg_start // S
    G = len(seg_start)
    present = np.zeros(rounds, dtype=bool)
    present[seg_round] = True
    if not present.all():
        missing = int(np.flatnonzero(~present)[0])
        raise ValueError(f"round {missing} has no positive sink weight")
    # 2. mega-batched bucket PMFs by power-of-two size class.
    cls = np.ones(G, dtype=np.int64)
    big = seg_len > 1
    cls[big] = 1 << (np.ceil(np.log2(seg_len[big])).astype(np.int64))
    pflat = Psort.ravel()
    plain_classes: List[Tuple[np.ndarray, np.ndarray]] = []
    multi: dict = {}
    for c in np.unique(cls):
        members = np.flatnonzero(cls == c)
        lens = seg_len[members]
        pos = np.arange(c)
        colmask = pos[None, :] < lens[:, None]
        src = seg_start[members][:, None] + pos[None, :]
        padded = np.zeros((len(members), c))
        padded[colmask] = pflat[src[colmask]]
        pieces, npc = _classed_pb_pieces(padded, int(c))
        if npc == 1:
            plain_classes.append((members, pieces))
        else:
            for k, g in enumerate(members):
                multi[int(g)] = pieces[k * npc : (k + 1) * npc]
    # 3. stretch single-piece bucket PMFs onto the weight lattice with
    # one masked scatter per size class (buf[seg_off[g] + w * j] = pmf[j]).
    plain = np.array(sorted(set(range(G)) - set(multi)), dtype=np.int64)
    out_len = np.minimum(seg_len[plain] * seg_w[plain] + 1, cap)
    n_pts = (out_len - 1) // seg_w[plain] + 1
    seg_off = np.concatenate(([0], np.cumsum(out_len)))
    buf = np.zeros(int(seg_off[-1]))
    plain_slot = np.full(G, -1, dtype=np.int64)
    plain_slot[plain] = np.arange(len(plain))
    for members, pieces in plain_classes:
        slots = plain_slot[members]
        pos = np.arange(pieces.shape[1])
        colmask = pos[None, :] < n_pts[slots][:, None]
        dst = seg_off[slots][:, None] + seg_w[members][:, None] * pos[None, :]
        buf[dst[colmask]] = pieces[colmask]
    # 4. per-round shortest-first direct merges under the flop limit.
    bounds = np.searchsorted(seg_round, np.arange(rounds + 1))
    finalists: List[Tuple[np.ndarray, bool]] = []
    fin_count = np.zeros(rounds, dtype=np.int64)
    fin_start: List[int] = []
    for r in range(rounds):
        heap = []
        nid = 0
        for g in range(int(bounds[r]), int(bounds[r + 1])):
            w = int(seg_w[g])
            slot = int(plain_slot[g])
            if slot >= 0:
                a = buf[seg_off[slot] : seg_off[slot] + out_len[slot]]
                capped = int(seg_len[g]) * w + 1 > cap
                heap.append((len(a), nid, a, capped))
                nid += 1
            else:
                pieces = multi[g]
                lpp = pieces.shape[1] - 1  # leaves per piece
                for i in range(pieces.shape[0]):
                    real = min(max(int(seg_len[g]) - i * lpp, 0), lpp)
                    base = pieces[i][: real + 1]
                    ln = min(real * w + 1, cap)
                    if w == 1:
                        a = base[:ln]
                    else:
                        a = np.zeros(ln)
                        a[::w] = base[: (ln - 1) // w + 1]
                    heap.append((len(a), nid, a, real * w + 1 > cap))
                    nid += 1
        heapq.heapify(heap)
        while len(heap) > 1:
            la, _, a, ca = heapq.heappop(heap)
            lb, _, b, cb = heapq.heappop(heap)
            if la * lb > merge_flop_limit:
                heap.append((la, nid, a, ca))
                heap.append((lb, nid + 1, b, cb))
                nid += 2
                heapq.heapify(heap)
                break
            c = np.convolve(a, b)
            capped = ca or cb
            if len(c) > cap:
                c = c[:cap]
                capped = True
            heapq.heappush(heap, (len(c), nid, c, capped))
            nid += 1
        fin_count[r] = len(heap)
        fin_start.append(len(finalists))
        for _, _, a, capped in sorted(heap, key=lambda t: (t[0], t[1])):
            finalists.append((a, capped))
    # 5. one shared-length FFT finish: rounds are laid out grouped by
    # finalist count so the spectral product is a plain reshape-prod.
    korder = np.argsort(fin_count, kind="stable")
    nfin = len(finalists)
    ordered = [
        finalists[fin_start[r] + i]
        for r in korder
        for i in range(int(fin_count[r]))
    ]
    lens = np.fromiter((len(a) for a, _ in ordered), dtype=np.int64, count=nfin)
    capped_row = np.fromiter(
        (c for _, c in ordered), dtype=bool, count=nfin
    )
    cat = np.concatenate([a for a, _ in ordered]) if ordered else np.empty(0)
    F = np.zeros((nfin, L))
    ends = np.cumsum(lens)
    within = np.arange(int(ends[-1]) if nfin else 0) - np.repeat(ends - lens, lens)
    F.ravel()[np.repeat(np.arange(nfin) * L, lens) + within] = cat
    # Per-round degree sums and top-coefficient products for the wrap
    # correction; any capped finalist voids the round's correction.
    row_round = np.repeat(korder, fin_count[korder])
    sum_deg = np.bincount(row_round, weights=lens - 1, minlength=rounds).astype(
        np.int64
    )
    prods = np.ones(rounds)
    np.multiply.at(prods, row_round, cat[ends - 1])
    round_capped = np.bincount(row_round, weights=capped_row, minlength=rounds) > 0
    prods[round_capped] = 0.0
    sum_deg[round_capped] = -1
    spec = np.fft.rfft(F, axis=1)
    nbins = L // 2 + 1
    prod_spec = np.empty((rounds, nbins), dtype=complex)
    kc = fin_count[korder]
    row = 0
    pos = 0
    for K in np.unique(kc):
        nk = int((kc == K).sum())
        block = spec[row : row + nk * int(K)].reshape(nk, int(K), nbins)
        prod_spec[korder[pos : pos + nk]] = block.prod(axis=1)
        row += nk * int(K)
        pos += nk
    if shared is not None:
        # The constant-column PMF joins every round as one more factor:
        # its spectrum multiplies in once, and its degree and top
        # coefficient extend the wrap-correction bookkeeping.
        prod_spec *= np.fft.rfft(shared, n=L)[None, :]
        uncapped = sum_deg >= 0
        sum_deg[uncapped] += len(shared) - 1
        prods *= shared[-1]
    # Spectral dot products: cdf(half) = <product, indicator>, tie atom =
    # pmf[half]; rfft bins 0 and L/2 count once, the rest twice.
    indicator = np.zeros(L)
    indicator[: half + 1] = 1.0
    ispec = np.conj(np.fft.rfft(indicator))
    wgt = np.full(nbins, 2.0)
    wgt[0] = 1.0
    if L % 2 == 0:
        wgt[-1] = 1.0
    cdf_half = (prod_spec * (wgt * ispec)[None, :]).real.sum(axis=1) / L
    wrap = np.where(sum_deg == L, prods, 0.0)
    cdf_half -= wrap
    win = np.clip(1.0 - cdf_half, 0.0, 1.0)
    if even:
        phase = np.exp(2j * np.pi * np.arange(nbins) * (half / L))
        atom_w = wgt * phase
        atom = (prod_spec * atom_w[None, :]).real.sum(axis=1) / L
        atom = np.clip(atom, 0.0, 1.0)
    else:
        atom = np.zeros(rounds)
    return win, atom


def normal_approx_probability(
    weights: Sequence[int], probs: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Normal approximation of the weighted-majority tail.

    Used for very large ``n`` where the exact DP is unnecessary; Lemma 4
    (Kahng et al.) justifies the approximation for bounded competencies.
    Applies a half-unit continuity correction consistent with
    ``tie_policy``: for even totals the boundary atom at ``total / 2`` is
    excluded under :attr:`TiePolicy.INCORRECT` and half-counted under
    :attr:`TiePolicy.COIN_FLIP`; for odd totals a tie is impossible and
    the policies coincide.
    """
    w = np.asarray(weights, dtype=float)
    p = np.asarray(probs, dtype=float)
    total = float(w.sum())
    mean = float((w * p).sum())
    var = float((w * w * p * (1.0 - p)).sum())
    threshold = total / 2.0
    if var <= 0.0:
        if mean > threshold:
            return 1.0
        if mean < threshold:
            return 0.0
        return 0.5 if tie_policy is TiePolicy.COIN_FLIP else 0.0
    sd = sqrt(var)

    def _upper(x: float) -> float:
        """P[N(mean, var) > x]."""
        return 0.5 * (1.0 - erf((x - mean) / (sd * sqrt(2.0))))

    if int(round(total)) % 2:
        # Odd total: the smallest winning count is threshold + 0.5, so
        # the continuity-corrected cut sits exactly at the threshold.
        return _upper(threshold)
    strict = _upper(threshold + 0.5)
    if tie_policy is TiePolicy.COIN_FLIP:
        # Half of the tie atom P[X = total/2] ≈ Φ-mass in (t-½, t+½).
        return strict + 0.5 * (_upper(threshold - 0.5) - strict)
    return strict
