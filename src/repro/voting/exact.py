"""Exact correct-decision probabilities via weight-sum dynamic programming.

For a fixed delegation forest the number of correct votes is a *weighted*
sum of independent Bernoullis — one per sink, scaled by the sink's weight.
Its distribution lives on the integers ``0 .. n``, so an ``O(#sinks · n)``
subset-sum DP computes the exact tail probability.  Direct voting is the
special case where every weight is 1 (the classical Poisson binomial).

These exact routines are the backbone of the benchmark harness: DNH
losses shrink polynomially in ``n``, far below Monte Carlo noise floors,
so measuring them requires exact conditional probabilities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util.validation import check_probability_vector
from repro.delegation.graph import DelegationGraph
from repro.voting.outcome import TiePolicy


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """PMF of the sum of independent Bernoulli(p_i) variables.

    Returns an array of length ``n + 1`` where entry ``k`` is
    ``P[sum = k]``.  Iterative convolution, O(n²) time, numerically exact
    to double precision for the sizes used here (n ≤ ~20 000).
    """
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for k, pi in enumerate(p):
        # After processing k variables only entries 0..k are non-zero.
        upper = k + 1
        pmf[1 : upper + 1] = pmf[1 : upper + 1] * (1.0 - pi) + pmf[:upper] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def weighted_bernoulli_pmf(
    weights: Sequence[int], probs: Sequence[float]
) -> np.ndarray:
    """PMF of ``Σ w_i · Bernoulli(p_i)`` on support ``0 .. Σ w_i``."""
    if len(weights) != len(probs):
        raise ValueError("weights and probs must have equal length")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    total = int(w.sum())
    pmf = np.zeros(total + 1)
    pmf[0] = 1.0
    filled = 0  # highest reachable weight so far
    for wi, pi in zip(w, p):
        wi = int(wi)
        if wi == 0:
            continue
        new = pmf[: filled + 1] * (1.0 - pi)
        shifted = pmf[: filled + 1] * pi
        filled += wi
        pmf[: filled + 1 - wi] = new
        pmf[filled + 1 - wi : filled + 1] = 0.0
        pmf[wi : filled + 1] += shifted
    return pmf


def tail_from_pmf(
    pmf: np.ndarray, total_weight: int, tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """P[correct] from a PMF of the correct-vote weight.

    Correct wins iff correct weight strictly exceeds ``total_weight / 2``;
    an exact tie (possible only for even totals) contributes according to
    ``tie_policy``.
    """
    if len(pmf) != total_weight + 1:
        raise ValueError(
            f"pmf length {len(pmf)} does not match total weight {total_weight}"
        )
    half, rem = divmod(total_weight, 2)
    win = float(pmf[half + 1 :].sum())
    if rem == 0 and tie_policy is TiePolicy.COIN_FLIP:
        win += 0.5 * float(pmf[half])
    return min(1.0, win)


def direct_voting_probability(
    competencies: Sequence[float], tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """Exact ``P^D(G)``: probability direct voting decides correctly."""
    p = check_probability_vector("competencies", competencies)
    pmf = poisson_binomial_pmf(p)
    return tail_from_pmf(pmf, len(p), tie_policy)


def forest_correct_probability(
    delegation: DelegationGraph,
    competencies: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Exact correct-decision probability for a fixed delegation forest.

    Conditions on the forest: each sink ``s`` votes correctly with
    probability ``p_s`` carrying weight ``w_s``; the decision is a strict
    weighted majority over total weight ``n``.
    """
    comp = np.asarray(competencies, dtype=float)
    if len(comp) != delegation.num_voters:
        raise ValueError(
            f"competency vector length {len(comp)} does not match "
            f"{delegation.num_voters} voters"
        )
    sinks = delegation.sinks
    weights = [delegation.weight(s) for s in sinks]
    probs = [float(comp[s]) for s in sinks]
    pmf = weighted_bernoulli_pmf(weights, probs)
    return tail_from_pmf(pmf, delegation.num_voters, tie_policy)


def normal_approx_probability(
    weights: Sequence[int], probs: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Normal approximation of the weighted-majority tail.

    Used for very large ``n`` where the exact DP is unnecessary; Lemma 4
    (Kahng et al.) justifies the approximation for bounded competencies.
    Applies a half-unit continuity correction.
    """
    from math import erf, sqrt

    w = np.asarray(weights, dtype=float)
    p = np.asarray(probs, dtype=float)
    total = float(w.sum())
    mean = float((w * p).sum())
    var = float((w * w * p * (1.0 - p)).sum())
    threshold = total / 2.0
    if var <= 0.0:
        if mean > threshold:
            return 1.0
        if mean < threshold:
            return 0.0
        return 0.5 if tie_policy is TiePolicy.COIN_FLIP else 0.0
    z = (threshold + 0.5 - mean) / sqrt(var)
    return 0.5 * (1.0 - erf(z / sqrt(2.0)))
