"""Exact correct-decision probabilities via weight-sum dynamic programming.

For a fixed delegation forest the number of correct votes is a *weighted*
sum of independent Bernoullis — one per sink, scaled by the sink's weight.
Its distribution lives on the integers ``0 .. n``, so an exact
convolution over sink weights computes the exact tail probability.
Direct voting is the special case where every weight is 1 (the classical
Poisson binomial).

These exact routines are the backbone of the benchmark harness: DNH
losses shrink polynomially in ``n``, far below Monte Carlo noise floors,
so measuring them requires exact conditional probabilities.

Performance architecture (see ``docs/performance.md``):

* :func:`poisson_binomial_pmf` is a divide-and-conquer merge tree.  The
  per-Bernoulli length-2 PMFs are merged pairwise in vectorised batches
  while blocks are short, then the surviving long blocks are merged with
  ``np.convolve`` — no per-element Python iteration anywhere.
* :func:`weighted_bernoulli_pmf` buckets sinks by weight: each distinct
  weight's sinks collapse into one Poisson-binomial pass (the weight-1
  majority is a single pass), the bucket PMF is stretched onto the
  ``w``-spaced lattice, and buckets are merged by convolution.
* The original quadratic loops are retained as ``_reference_*`` and the
  randomized equivalence suite (``tests/test_perf_kernels.py``) pins the
  fast kernels to them at ≤1e-12 absolute error.
"""

from __future__ import annotations

from math import erf, sqrt
from typing import List, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro._util.validation import check_probability_vector
from repro.delegation.graph import DelegationGraph
from repro.voting.outcome import TiePolicy

_DP_CUTOFF = 64
"""Input size below which the plain DP beats the merge tree (overhead)."""

_TREE_MIN_BLOCKS = 16
"""Block count at which batched pair merging yields to ``np.convolve``."""


def _reference_poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """Seed implementation: iterative convolution, O(n²) time.

    Kept as the equivalence-test oracle for :func:`poisson_binomial_pmf`.
    """
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for k, pi in enumerate(p):
        # After processing k variables only entries 0..k are non-zero.
        upper = k + 1
        pmf[1 : upper + 1] = pmf[1 : upper + 1] * (1.0 - pi) + pmf[:upper] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def _pb_dp(p: np.ndarray) -> np.ndarray:
    """Plain iterative DP — fastest below :data:`_DP_CUTOFF` elements."""
    pmf = np.zeros(len(p) + 1)
    pmf[0] = 1.0
    for k, pi in enumerate(p):
        pmf[1 : k + 2] = pmf[1 : k + 2] * (1.0 - pi) + pmf[: k + 1] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def _grouped_pb(groups: List[np.ndarray]) -> List[np.ndarray]:
    """Poisson-binomial PMFs of several groups via one batched merge tree.

    Each group is padded with ``p = 0`` Bernoullis (convolution
    identities) to a common power-of-two width, so batched pair merges
    stay inside group boundaries at every level.  Padding entries leave
    exact zeros beyond a group's true support, which the final slice
    removes — no approximation is introduced.
    """
    sizes = [len(g) for g in groups]
    num_groups = len(groups)
    width = 1 << max(0, max(sizes) - 1).bit_length()
    padded = np.zeros((num_groups, width))
    for row, group in enumerate(groups):
        padded[row, : len(group)] = group
    if width == 1:
        blocks = np.empty((num_groups, 2))
        blocks[:, 0] = 1.0 - padded.ravel()
        blocks[:, 1] = padded.ravel()
    else:
        # First merge level in closed form: the product of two length-2
        # PMFs is a length-3 PMF, cheaper as three ufunc lines than as a
        # batched convolution over 2x as many rows.
        pp = padded.reshape(num_groups * width // 2, 2)
        qq = 1.0 - pp
        blocks = np.empty((num_groups * width // 2, 3))
        blocks[:, 0] = qq[:, 0] * qq[:, 1]
        blocks[:, 1] = pp[:, 0] * qq[:, 1] + qq[:, 0] * pp[:, 1]
        blocks[:, 2] = pp[:, 0] * pp[:, 1]
    while blocks.shape[0] > max(num_groups, _TREE_MIN_BLOCKS):
        blocks = _convolve_pairs(blocks)
    per_group = blocks.shape[0] // num_groups
    out = []
    for row, size in enumerate(sizes):
        rows = blocks[row * per_group : (row + 1) * per_group]
        pmf = _merge_pmfs(list(rows)) if per_group > 1 else rows[0]
        out.append(pmf[: size + 1])
    return out


def _convolve_pairs(blocks: np.ndarray) -> np.ndarray:
    """One merge level: convolve blocks ``2i`` and ``2i+1`` in a batch.

    ``blocks`` is ``(m, L)`` with even ``m``; returns ``(m/2, 2L-1)``.
    The pairwise polynomial products collapse into a single einsum over
    a sliding-window (Toeplitz) view of the zero-padded right factors.
    """
    m, length = blocks.shape
    left = blocks[0::2]
    out_len = 2 * length - 1
    padded = np.zeros((m // 2, 3 * length - 2))
    padded[:, length - 1 : out_len] = blocks[1::2]
    s0, s1 = padded.strides
    # windows[i, k, j] = padded[i, length-1 + k - j] = right[i, k - j]
    # (a raw strided Toeplitz view: sliding_window_view's checks cost
    # more than the einsum at these block sizes).
    windows = as_strided(
        padded[:, length - 1 :],
        shape=(m // 2, out_len, length),
        strides=(s0, s1, -s1),
    )
    return np.einsum("mj,mkj->mk", left, windows)


def _merge_pmfs(pmfs: List[np.ndarray]) -> np.ndarray:
    """Convolve a list of PMFs with balanced pairwise ``np.convolve``."""
    pmfs = sorted(pmfs, key=len)
    while len(pmfs) > 1:
        pmfs = [
            np.convolve(pmfs[i], pmfs[i + 1]) if i + 1 < len(pmfs) else pmfs[i]
            for i in range(0, len(pmfs), 2)
        ]
    return pmfs[0]


def _pb_unchecked(p: np.ndarray) -> np.ndarray:
    """Poisson-binomial PMF of pre-validated ``p``; see the public docs."""
    n = len(p)
    if n == 0:
        return np.ones(1)
    if n <= _DP_CUTOFF:
        return _pb_dp(p)
    return _grouped_pb([p])[0]


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """PMF of the sum of independent Bernoulli(p_i) variables.

    Returns an array of length ``n + 1`` where entry ``k`` is
    ``P[sum = k]``.  Divide-and-conquer convolution merge tree: length-2
    PMFs are merged pairwise in vectorised batches while many blocks
    remain, then the few surviving long blocks are merged with
    ``np.convolve``.  All arithmetic is plain summation of non-negative
    doubles, so the result matches :func:`_reference_poisson_binomial_pmf`
    to machine precision (the equivalence suite pins it at ≤1e-12).
    """
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    return _pb_unchecked(p)


def _reference_weighted_bernoulli_pmf(
    weights: Sequence[int], probs: Sequence[float]
) -> np.ndarray:
    """Seed implementation: shift-and-add DP, O(#sinks · n) time.

    Kept as the equivalence-test oracle for :func:`weighted_bernoulli_pmf`.
    """
    if len(weights) != len(probs):
        raise ValueError("weights and probs must have equal length")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    total = int(w.sum())
    pmf = np.zeros(total + 1)
    pmf[0] = 1.0
    filled = 0  # highest reachable weight so far
    for wi, pi in zip(w, p):
        wi = int(wi)
        if wi == 0:
            continue
        new = pmf[: filled + 1] * (1.0 - pi)
        shifted = pmf[: filled + 1] * pi
        filled += wi
        pmf[: filled + 1 - wi] = new
        pmf[filled + 1 - wi : filled + 1] = 0.0
        pmf[wi : filled + 1] += shifted
    return pmf


def weighted_bernoulli_pmf(
    weights: Sequence[int], probs: Sequence[float]
) -> np.ndarray:
    """PMF of ``Σ w_i · Bernoulli(p_i)`` on support ``0 .. Σ w_i``.

    Sinks are bucketed by weight: each distinct weight ``w`` contributes
    ``w · PoissonBinomial(probs in bucket)``, whose PMF is the bucket's
    Poisson-binomial PMF stretched onto the ``w``-spaced lattice.  The
    weight-1 majority therefore collapses into a single fast
    Poisson-binomial pass, and bucket PMFs are merged by convolution
    (smallest first, to keep operand lengths short).
    """
    if len(weights) != len(probs):
        raise ValueError("weights and probs must have equal length")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    p = check_probability_vector("probs", probs) if len(probs) else np.empty(0)
    total = int(w.sum())
    active = w > 0
    if not np.any(active):
        out = np.zeros(total + 1)
        out[0] = 1.0
        return out
    w = w[active]
    p = p[active]
    order = np.argsort(w, kind="stable")
    unique_weights, starts = np.unique(w[order], return_index=True)
    groups = np.split(p[order], starts[1:])
    # One batched merge tree covers every small bucket; the rare huge
    # bucket (e.g. all-weight-1 direct voting) goes through alone so its
    # width does not inflate the shared padding.
    small = [i for i, g in enumerate(groups) if len(g) <= _DP_CUTOFF]
    base_pmfs: List = [None] * len(groups)
    if len(small) == 1:
        base_pmfs[small[0]] = _pb_dp(groups[small[0]])
    elif small:
        for i, pmf in zip(small, _grouped_pb([groups[i] for i in small])):
            base_pmfs[i] = pmf
    for i, g in enumerate(groups):
        if base_pmfs[i] is None:
            base_pmfs[i] = _pb_unchecked(g)
    buckets = []
    for wv, base in zip(unique_weights, base_pmfs):
        wv = int(wv)
        if wv == 1:
            buckets.append(base)
        else:
            stretched = np.zeros(wv * (len(base) - 1) + 1)
            stretched[::wv] = base
            buckets.append(stretched)
    # Support is exactly 0..total by construction.
    return _merge_pmfs(buckets)


def tail_from_pmf(
    pmf: np.ndarray, total_weight: int, tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """P[correct] from a PMF of the correct-vote weight.

    Correct wins iff correct weight strictly exceeds ``total_weight / 2``;
    an exact tie (possible only for even totals) contributes according to
    ``tie_policy``.
    """
    if len(pmf) != total_weight + 1:
        raise ValueError(
            f"pmf length {len(pmf)} does not match total weight {total_weight}"
        )
    half, rem = divmod(total_weight, 2)
    win = float(pmf[half + 1 :].sum())
    if rem == 0 and tie_policy is TiePolicy.COIN_FLIP:
        win += 0.5 * float(pmf[half])
    return min(1.0, win)


def direct_voting_probability(
    competencies: Sequence[float], tie_policy: TiePolicy = TiePolicy.INCORRECT
) -> float:
    """Exact ``P^D(G)``: probability direct voting decides correctly."""
    p = check_probability_vector("competencies", competencies)
    pmf = poisson_binomial_pmf(p)
    return tail_from_pmf(pmf, len(p), tie_policy)


def forest_correct_probability(
    delegation: DelegationGraph,
    competencies: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Exact correct-decision probability for a fixed delegation forest.

    Conditions on the forest: each sink ``s`` votes correctly with
    probability ``p_s`` carrying weight ``w_s``; the decision is a strict
    weighted majority over total weight ``n``.
    """
    comp = np.asarray(competencies, dtype=float)
    if len(comp) != delegation.num_voters:
        raise ValueError(
            f"competency vector length {len(comp)} does not match "
            f"{delegation.num_voters} voters"
        )
    sinks = delegation.sink_indices
    pmf = weighted_bernoulli_pmf(delegation.sink_weight_array, comp[sinks])
    return tail_from_pmf(pmf, delegation.num_voters, tie_policy)


def normal_approx_probability(
    weights: Sequence[int], probs: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Normal approximation of the weighted-majority tail.

    Used for very large ``n`` where the exact DP is unnecessary; Lemma 4
    (Kahng et al.) justifies the approximation for bounded competencies.
    Applies a half-unit continuity correction consistent with
    ``tie_policy``: for even totals the boundary atom at ``total / 2`` is
    excluded under :attr:`TiePolicy.INCORRECT` and half-counted under
    :attr:`TiePolicy.COIN_FLIP`; for odd totals a tie is impossible and
    the policies coincide.
    """
    w = np.asarray(weights, dtype=float)
    p = np.asarray(probs, dtype=float)
    total = float(w.sum())
    mean = float((w * p).sum())
    var = float((w * w * p * (1.0 - p)).sum())
    threshold = total / 2.0
    if var <= 0.0:
        if mean > threshold:
            return 1.0
        if mean < threshold:
            return 0.0
        return 0.5 if tie_policy is TiePolicy.COIN_FLIP else 0.0
    sd = sqrt(var)

    def _upper(x: float) -> float:
        """P[N(mean, var) > x]."""
        return 0.5 * (1.0 - erf((x - mean) / (sd * sqrt(2.0))))

    if int(round(total)) % 2:
        # Odd total: the smallest winning count is threshold + 0.5, so
        # the continuity-corrected cut sits exactly at the threshold.
        return _upper(threshold)
    strict = _upper(threshold + 0.5)
    if tie_policy is TiePolicy.COIN_FLIP:
        # Half of the tie atom P[X = total/2] ≈ Φ-mass in (t-½, t+½).
        return strict + 0.5 * (_upper(threshold - 0.5) - strict)
    return strict
