"""Weighted-majority delegation DAGs — the full Section 6 model.

The paper's base model lets each voter delegate to *one* approved
neighbour.  Section 6 sketches the richer "weighted majority vote"
setting: a voter names several approved delegates with local weights,
and its effective vote is the weighted majority of its delegates'
effective votes.  Because approval is strictly upward in competency
(``α > 0``), the delegate relation is a DAG and effective votes resolve
in one topological pass.

Decision rule: once every voter's effective vote is resolved, the
outcome is the plain majority over all ``n`` effective votes (each voter
still casts exactly one ballot — multi-delegation changes how a ballot
is *formed*, not how many exist).

Exact probabilities are intractable here (effective votes are correlated
through shared upstream delegates), so evaluation is Monte Carlo over
vote realisations; the estimator and its error are reported explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.mathx import wilson_interval
from repro._util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class DelegateWeights:
    """One voter's multi-delegation choice: delegates and their weights."""

    delegates: Tuple[int, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.delegates) != len(self.weights):
            raise ValueError("delegates and weights must have equal length")
        if not self.delegates:
            raise ValueError("a DelegateWeights entry needs at least one delegate")
        if len(set(self.delegates)) != len(self.delegates):
            raise ValueError(f"duplicate delegates in {self.delegates}")
        if any(w <= 0 for w in self.weights):
            raise ValueError("delegate weights must be positive")


class WeightedDelegationDag:
    """A resolved multi-delegation structure over ``n`` voters.

    Parameters
    ----------
    n:
        Number of voters.
    choices:
        Mapping from voter to its :class:`DelegateWeights`; voters absent
        from the mapping vote directly.  The induced delegate relation
        must be acyclic (checked).
    """

    def __init__(self, n: int, choices: Dict[int, DelegateWeights]) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        for voter, choice in choices.items():
            if not 0 <= voter < n:
                raise ValueError(f"voter {voter} out of range")
            for d in choice.delegates:
                if not 0 <= d < n:
                    raise ValueError(
                        f"voter {voter} delegates to out-of-range {d}"
                    )
                if d == voter:
                    raise ValueError(f"voter {voter} delegates to itself")
        self._n = n
        self._choices = dict(choices)
        self._order = self._topological_order()

    def _topological_order(self) -> List[int]:
        """Resolution order: delegates before their delegators.

        Raises ``ValueError`` on a cycle.
        """
        # Kahn's algorithm on edges voter -> delegate (delegate resolves
        # first, so we sort by reversed edges).
        dependents: Dict[int, List[int]] = {v: [] for v in range(self._n)}
        remaining = {v: 0 for v in range(self._n)}
        for voter, choice in self._choices.items():
            remaining[voter] = len(choice.delegates)
            for d in choice.delegates:
                dependents[d].append(voter)
        ready = [v for v in range(self._n) if remaining[v] == 0]
        order: List[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for dep in dependents[v]:
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    ready.append(dep)
        if len(order) != self._n:
            cyclic = sorted(v for v, r in remaining.items() if r > 0)
            raise ValueError(f"delegation cycle among voters {cyclic}")
        return order

    # -- accessors ---------------------------------------------------------

    @property
    def num_voters(self) -> int:
        """Number of voters."""
        return self._n

    @property
    def direct_voters(self) -> Tuple[int, ...]:
        """Voters that vote directly (no delegates), ascending."""
        return tuple(v for v in range(self._n) if v not in self._choices)

    @property
    def num_delegators(self) -> int:
        """Voters with at least one delegate."""
        return len(self._choices)

    def choice(self, voter: int) -> Optional[DelegateWeights]:
        """The voter's multi-delegation entry, or None for direct voters."""
        return self._choices.get(voter)

    def max_fan_in(self) -> int:
        """Maximum number of delegators naming any single voter.

        The DAG analogue of the maximum sink weight: the quantity the
        Lemma 5-style condition would need to bound.
        """
        fan = np.zeros(self._n, dtype=np.int64)
        for choice in self._choices.values():
            for d in choice.delegates:
                fan[d] += 1
        return int(fan.max()) if self._n else 0

    # -- realisation ----------------------------------------------------------

    def sample_effective_votes(
        self,
        competencies: Sequence[float],
        rng: SeedLike = None,
        tie_break_own_vote: bool = True,
    ) -> np.ndarray:
        """Realise all effective votes once; returns a 0/1 array.

        Direct voters draw Bernoulli(p_i).  A delegating voter's vote is
        the weighted majority of its delegates' effective votes; a tied
        weighted majority falls back to the voter's own fresh
        Bernoulli(p_i) draw when ``tie_break_own_vote`` (the "you decide
        when your advisors disagree" rule), else a fair coin.
        """
        comp = np.asarray(competencies, dtype=float)
        if len(comp) != self._n:
            raise ValueError(
                f"competency vector length {len(comp)} does not match n={self._n}"
            )
        gen = as_generator(rng)
        votes = np.zeros(self._n, dtype=np.int8)
        draws = gen.random(self._n)
        tie_draws = gen.random(self._n)
        for v in self._order:
            choice = self._choices.get(v)
            if choice is None:
                votes[v] = 1 if draws[v] < comp[v] else 0
                continue
            correct_w = sum(
                w for d, w in zip(choice.delegates, choice.weights) if votes[d]
            )
            total_w = sum(choice.weights)
            if correct_w > total_w / 2.0:
                votes[v] = 1
            elif correct_w < total_w / 2.0:
                votes[v] = 0
            elif tie_break_own_vote:
                votes[v] = 1 if draws[v] < comp[v] else 0
            else:
                votes[v] = 1 if tie_draws[v] < 0.5 else 0
        return votes

    def estimate_correct_probability(
        self,
        competencies: Sequence[float],
        rounds: int = 400,
        seed: SeedLike = None,
        tie_break_own_vote: bool = True,
    ) -> Tuple[float, float, float]:
        """Monte Carlo ``P[majority of effective votes is correct]``.

        Returns ``(estimate, ci_low, ci_high)`` with a Wilson 95%
        interval.  The final decision uses the strict-majority rule over
        all ``n`` effective votes (ties incorrect), matching the paper.
        """
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        gen = as_generator(seed)
        wins = 0
        for _ in range(rounds):
            votes = self.sample_effective_votes(
                competencies, gen, tie_break_own_vote
            )
            if int(votes.sum()) * 2 > self._n:
                wins += 1
        lo, hi = wilson_interval(wins, rounds)
        return (wins / rounds, lo, hi)

    def __repr__(self) -> str:
        return (
            f"WeightedDelegationDag(n={self._n}, "
            f"delegators={self.num_delegators}, max_fan_in={self.max_fan_in()})"
        )
