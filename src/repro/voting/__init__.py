"""Voting-outcome evaluation.

Computes the probability of a correct weighted-majority decision
(`P^M(G)` in the paper) in three ways:

* **exact** for a fixed delegation forest — a subset-sum DP over sink
  weights (weighted Poisson binomial tail);
* **exact** for direct voting — ordinary Poisson binomial tail;
* **Monte Carlo** over mechanism randomness, optionally using the exact
  conditional probability per sampled forest (a Rao–Blackwellised
  estimator that removes all vote-sampling noise).
"""

from repro.voting.exact import (
    direct_voting_probability,
    forest_correct_probability,
    normal_approx_probability,
    poisson_binomial_pmf,
    tail_from_pmf,
    weighted_bernoulli_pmf,
)
from repro.voting.montecarlo import (
    BatchEstimator,
    CorrectnessEstimate,
    estimate_ballot_probability,
    estimate_correct_probability,
    estimate_gain,
    sample_outcome,
)
from repro.voting.outcome import TiePolicy, majority_correct

__all__ = [
    "TiePolicy",
    "majority_correct",
    "poisson_binomial_pmf",
    "weighted_bernoulli_pmf",
    "tail_from_pmf",
    "normal_approx_probability",
    "direct_voting_probability",
    "forest_correct_probability",
    "BatchEstimator",
    "CorrectnessEstimate",
    "estimate_ballot_probability",
    "estimate_correct_probability",
    "estimate_gain",
    "sample_outcome",
]
