"""Outcome evaluation for ballots with abstention (Section 6).

Abstaining sinks cast no vote: the decision is a strict weighted majority
over the *participating* weight only, and votes delegated to an
abstaining sink are lost with it.  When nobody participates there is no
strict majority for the correct option, so the decision counts as
incorrect (coin-flip tie policy gives it ½).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mechanisms.base import Ballot
from repro.voting.exact import tail_from_pmf, weighted_bernoulli_pmf
from repro.voting.outcome import TiePolicy


def ballot_correct_probability(
    ballot: Ballot,
    competencies: Sequence[float],
    tie_policy: TiePolicy = TiePolicy.INCORRECT,
) -> float:
    """Exact correct-decision probability for a fixed ballot."""
    comp = np.asarray(competencies, dtype=float)
    forest = ballot.forest
    if len(comp) != forest.num_voters:
        raise ValueError(
            f"competency vector length {len(comp)} does not match "
            f"{forest.num_voters} voters"
        )
    participating = [s for s in forest.sinks if s not in ballot.abstaining]
    weights = [forest.weight(s) for s in participating]
    total = int(sum(weights))
    if total == 0:
        return 0.5 if tie_policy is TiePolicy.COIN_FLIP else 0.0
    probs = [float(comp[s]) for s in participating]
    pmf = weighted_bernoulli_pmf(weights, probs)
    return tail_from_pmf(pmf, total, tie_policy)
