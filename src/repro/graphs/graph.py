"""An immutable undirected simple graph on vertices ``0 .. n-1``.

The paper's model is an undirected graph ``(V, E)`` whose vertices are
voters.  We implement our own lightweight structure rather than depending
on :mod:`networkx` in the hot path: delegation resolution and Monte Carlo
experiments iterate neighbourhoods millions of times, and tuple-based
adjacency is both faster and guarantees immutability of problem instances.

:mod:`networkx` interop is provided through :meth:`Graph.from_networkx`
and :meth:`Graph.to_networkx` for tests and external tooling.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

Edge = Tuple[int, int]


class Graph:
    """Immutable undirected simple graph with vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicate edges are
        rejected: the paper's model is a simple graph, and duplicates would
        silently bias "random approved neighbour" sampling.
    """

    __slots__ = ("_n", "_adjacency", "_edges", "_neighbor_sets")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        adjacency: List[List[int]] = [[] for _ in range(self._n)]
        seen = set()
        edge_list: List[Edge] = []
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            edge_list.append(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        for nbrs in adjacency:
            nbrs.sort()
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(nbrs) for nbrs in adjacency
        )
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_list))
        self._neighbor_sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(nbrs) for nbrs in adjacency
        )

    # -- basic accessors -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as sorted ``(min, max)`` tuples, in sorted order."""
        return self._edges

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``vertex``."""
        return self._adjacency[vertex]

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        return len(self._adjacency[vertex])

    def degrees(self) -> List[int]:
        """Degrees of all vertices, indexed by vertex."""
        return [len(nbrs) for nbrs in self._adjacency]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._neighbor_sets[u]

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # -- structure queries ------------------------------------------------

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(self.degrees())

    def min_degree(self) -> int:
        """Minimum degree δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return min(self.degrees())

    def is_complete(self) -> bool:
        """Whether every pair of distinct vertices is adjacent."""
        return self.num_edges == self._n * (self._n - 1) // 2

    def is_regular(self) -> bool:
        """Whether all vertices share the same degree."""
        if self._n == 0:
            return True
        degs = self.degrees()
        return min(degs) == max(degs)

    # -- interop ----------------------------------------------------------

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph.

        Vertices are relabelled ``0 .. n-1`` in sorted node order; the node
        order therefore must be sortable.
        """
        nodes = sorted(nx_graph.nodes())
        index: Dict[object, int] = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        out = nx.Graph()
        out.add_nodes_from(range(self._n))
        out.add_edges_from(self._edges)
        return out

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "Graph":
        """Build from an adjacency-list representation.

        The adjacency lists must be symmetric (``v in adjacency[u]`` iff
        ``u in adjacency[v]``); violations raise ``ValueError``.
        """
        n = len(adjacency)
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                if u not in adjacency[v]:
                    raise ValueError(
                        f"asymmetric adjacency: {v} in adj[{u}] but {u} not in adj[{v}]"
                    )
                if u < v:
                    edges.append((u, v))
        return cls(n, edges)
