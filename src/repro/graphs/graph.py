"""An immutable undirected simple graph on vertices ``0 .. n-1``.

The paper's model is an undirected graph ``(V, E)`` whose vertices are
voters.  We implement our own lightweight structure rather than depending
on :mod:`networkx` in the hot path: delegation resolution and Monte Carlo
experiments iterate neighbourhoods millions of times.

Internally the edge set is a single ``(m, 2)`` integer array validated
and deduplicated with vectorised numpy operations, and the adjacency is
stored in CSR form (``indptr``/``indices``) with a cached degree vector —
the representation consumed directly by the compiled-instance fast paths
(:mod:`repro.core.compiled`).  The tuple-based views (``neighbors``,
``edges``) that the readable reference paths use are materialised lazily,
so array-only consumers never pay for them.

:mod:`networkx` interop is provided through :meth:`Graph.from_networkx`
and :meth:`Graph.to_networkx` for tests and external tooling.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


def _as_edge_array(edges: Iterable[Edge]) -> np.ndarray:
    """Coerce an edge iterable to an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
    else:
        arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (u, v) pairs, got shape {arr.shape}")
    return arr


class Graph:
    """Immutable undirected simple graph with vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs — or an ``(m, 2)`` integer array,
        which the vectorised generators pass to skip Python-level edge
        iteration entirely.  Self-loops and duplicate edges are rejected:
        the paper's model is a simple graph, and duplicates would
        silently bias "random approved neighbour" sampling.
    """

    __slots__ = (
        "_n",
        "_edge_arr",
        "_indptr",
        "_indices",
        "_degrees",
        "_adjacency",
        "_edges",
        "_neighbor_sets",
    )

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        arr = _as_edge_array(edges)
        if arr.shape[0]:
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            self._validate(arr, lo, hi)
            order = np.lexsort((hi, lo))
            canon = np.column_stack((lo[order], hi[order]))
        else:
            canon = arr
        self._edge_arr = canon
        self._edge_arr.setflags(write=False)
        endpoints = canon.ravel()
        self._degrees = np.bincount(endpoints, minlength=self._n).astype(np.int64)
        self._degrees.setflags(write=False)
        # CSR adjacency: each undirected edge contributes both directions.
        src = np.concatenate((canon[:, 0], canon[:, 1]))
        dst = np.concatenate((canon[:, 1], canon[:, 0]))
        csr_order = np.lexsort((dst, src))
        self._indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self._degrees))
        )
        self._indptr.setflags(write=False)
        self._indices = dst[csr_order]
        self._indices.setflags(write=False)
        # Tuple views are built lazily on first access.
        self._adjacency: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._edges: Optional[Tuple[Edge, ...]] = None
        self._neighbor_sets: Optional[Tuple[FrozenSet[int], ...]] = None

    def _validate(self, arr: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> None:
        """Reject out-of-range endpoints, self-loops and duplicate edges.

        Reports the earliest offending edge with the same message (and the
        same per-edge check priority) as the original per-edge loop.
        """
        out_of_range = (lo < 0) | (hi >= self._n)
        self_loop = ~out_of_range & (lo == hi)
        bad = out_of_range | self_loop
        first_bad = int(np.argmax(bad)) if bad.any() else arr.shape[0]
        # Duplicates can only precede the first invalid edge, so dedup the
        # valid prefix; beyond it the invalid edge is reported first.
        first_dup = arr.shape[0]
        if first_bad > 0:
            keys = lo[:first_bad] * self._n + hi[:first_bad]
            _, first_idx = np.unique(keys, return_index=True)
            if len(first_idx) != len(keys):
                dup_mask = np.ones(len(keys), dtype=bool)
                dup_mask[first_idx] = False
                first_dup = int(np.argmax(dup_mask))
        if first_bad < arr.shape[0] and first_bad <= first_dup:
            u, v = int(arr[first_bad, 0]), int(arr[first_bad, 1])
            if out_of_range[first_bad]:
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if first_dup < arr.shape[0]:
            key = (int(lo[first_dup]), int(hi[first_dup]))
            raise ValueError(f"duplicate edge {key}")

    # -- basic accessors -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._edge_arr.shape[0]

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as sorted ``(min, max)`` tuples, in sorted order."""
        if self._edges is None:
            self._edges = tuple(map(tuple, self._edge_arr.tolist()))
        return self._edges

    @property
    def edge_array(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of canonical ``(min, max)`` edges."""
        return self._edge_arr

    def adjacency_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The adjacency in CSR form as read-only ``(indptr, indices)``.

        Vertex ``v``'s sorted neighbours are
        ``indices[indptr[v]:indptr[v + 1]]``.  This is the array-native
        export consumed by :class:`repro.core.compiled.CompiledInstance`.
        """
        return self._indptr, self._indices

    def _adjacency_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        if self._adjacency is None:
            indices = self._indices.tolist()
            indptr = self._indptr.tolist()
            self._adjacency = tuple(
                tuple(indices[indptr[v] : indptr[v + 1]]) for v in range(self._n)
            )
        return self._adjacency

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``vertex``."""
        return self._adjacency_tuples()[vertex]

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        return int(self._degrees[vertex])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as a read-only array, indexed by vertex."""
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        if self._neighbor_sets is None:
            self._neighbor_sets = tuple(
                frozenset(nbrs) for nbrs in self._adjacency_tuples()
            )
        return v in self._neighbor_sets[u]

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and np.array_equal(
            self._edge_arr, other._edge_arr
        )

    def __hash__(self) -> int:
        return hash((self._n, self.edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # -- structure queries ------------------------------------------------

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def min_degree(self) -> int:
        """Minimum degree δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.min())

    def is_complete(self) -> bool:
        """Whether every pair of distinct vertices is adjacent."""
        return self.num_edges == self._n * (self._n - 1) // 2

    def is_regular(self) -> bool:
        """Whether all vertices share the same degree."""
        if self._n == 0:
            return True
        return int(self._degrees.min()) == int(self._degrees.max())

    # -- interop ----------------------------------------------------------

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph.

        Vertices are relabelled ``0 .. n-1`` in sorted node order; the node
        order therefore must be sortable.
        """
        nodes = sorted(nx_graph.nodes())
        index: Dict[object, int] = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        out = nx.Graph()
        out.add_nodes_from(range(self._n))
        out.add_edges_from(self.edges)
        return out

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "Graph":
        """Build from an adjacency-list representation.

        The adjacency lists must be symmetric (``v in adjacency[u]`` iff
        ``u in adjacency[v]``); violations raise ``ValueError``.
        """
        n = len(adjacency)
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                if u not in adjacency[v]:
                    raise ValueError(
                        f"asymmetric adjacency: {v} in adj[{u}] but {u} not in adj[{v}]"
                    )
                if u < v:
                    edges.append((u, v))
        return cls(n, edges)
