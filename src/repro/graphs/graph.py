"""An immutable undirected simple graph on vertices ``0 .. n-1``.

The paper's model is an undirected graph ``(V, E)`` whose vertices are
voters.  We implement our own lightweight structure rather than depending
on :mod:`networkx` in the hot path: delegation resolution and Monte Carlo
experiments iterate neighbourhoods millions of times.

The canonical storage is the CSR adjacency (``indptr``/``indices``) with
a cached degree vector — the representation consumed directly by the
compiled-instance fast paths (:mod:`repro.core.compiled`).  Index arrays
use ``int32`` whenever every vertex id and every ``indptr`` offset fits
(:func:`csr_index_dtype`), halving memory at social-graph scale, and fall
back to ``int64`` past 2^31 entries.  :meth:`Graph.from_csr` builds a
graph straight from CSR arrays with no edge-tuple materialisation, which
is how the large-n generators construct million-voter instances in O(E)
memory.

Tuple views (``edges``, ``_adjacency_tuples``) exist for the readable
reference paths and tests only.  They are built lazily, and above
:data:`TUPLE_VIEW_LIMIT` items they *raise* instead of silently
allocating gigabytes — wrap the access in :func:`allow_tuple_views` to
opt in explicitly.  ``neighbors`` is a per-call CSR slice, so iterating
one vertex's neighbourhood never materialises the other ``n - 1``.

:mod:`networkx` interop is provided through :meth:`Graph.from_networkx`
and :meth:`Graph.to_networkx` for tests and external tooling.
"""

from __future__ import annotations
# reprolint: sparse-safe

import contextlib
import contextvars
import hashlib
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]

#: Largest tuple view (edge count for ``edges``, vertex count for
#: ``_adjacency_tuples``) materialised without an explicit opt-in.
TUPLE_VIEW_LIMIT = 1 << 20

_INT32_MAX = np.iinfo(np.int32).max

_TUPLE_VIEWS_ALLOWED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_graph_tuple_views_allowed", default=False
)


@contextlib.contextmanager
def allow_tuple_views():
    """Permit tuple-view materialisation beyond :data:`TUPLE_VIEW_LIMIT`.

    Large-n code paths must use the array-native APIs (``edge_array``,
    ``adjacency_csr``); this context manager is the explicit escape hatch
    for tools (serialisation of huge graphs, debugging) that knowingly
    accept the memory cost.
    """
    token = _TUPLE_VIEWS_ALLOWED.set(True)
    try:
        yield
    finally:
        _TUPLE_VIEWS_ALLOWED.reset(token)


def csr_index_dtype(num_vertices: int, nnz: int) -> np.dtype:
    """Smallest index dtype holding vertex ids and ``indptr`` offsets.

    ``int32`` iff both the largest vertex id and the largest ``indptr``
    value (``nnz``, the directed entry count) fit in a signed 32-bit
    integer; ``int64`` otherwise.  The overflow guard is exact at the
    boundary: ``nnz = 2^31 - 1`` is still int32, ``2^31`` is not.
    """
    if num_vertices <= _INT32_MAX and nnz <= _INT32_MAX:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def _as_edge_array(edges: Iterable[Edge]) -> np.ndarray:
    """Coerce an edge iterable to an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
    else:
        arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (u, v) pairs, got shape {arr.shape}")
    return arr


class Graph:
    """Immutable undirected simple graph with vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs — or an ``(m, 2)`` integer array,
        which the vectorised generators pass to skip Python-level edge
        iteration entirely.  Self-loops and duplicate edges are rejected:
        the paper's model is a simple graph, and duplicates would
        silently bias "random approved neighbour" sampling.

    Construction from adjacency arrays without any edge materialisation
    is available through :meth:`from_csr`.
    """

    __slots__ = (
        "_n",
        "_edge_arr",
        "_indptr",
        "_indices",
        "_degrees",
        "_edges",
        "_hash",
    )

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        arr = _as_edge_array(edges)
        if arr.shape[0]:
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            self._validate(arr, lo, hi)
            order = np.lexsort((hi, lo))
            canon = np.column_stack((lo[order], hi[order]))
        else:
            canon = arr
        self._edge_arr: Optional[np.ndarray] = canon
        self._edge_arr.setflags(write=False)
        endpoints = canon.ravel()
        self._degrees = np.bincount(endpoints, minlength=self._n).astype(np.int64)
        self._degrees.setflags(write=False)
        # CSR adjacency: each undirected edge contributes both directions.
        idx_dtype = csr_index_dtype(self._n, 2 * canon.shape[0])
        src = np.concatenate((canon[:, 0], canon[:, 1]))
        dst = np.concatenate((canon[:, 1], canon[:, 0]))
        csr_order = np.lexsort((dst, src))
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self._degrees))
        )
        self._indptr = indptr.astype(idx_dtype)
        self._indptr.setflags(write=False)
        self._indices = dst[csr_order].astype(idx_dtype)
        self._indices.setflags(write=False)
        # Tuple views are built lazily (and size-gated) on first access.
        self._edges: Optional[Tuple[Edge, ...]] = None
        self._hash: Optional[int] = None

    @classmethod
    def from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> "Graph":
        """Build a graph directly from a symmetric CSR adjacency.

        ``indices[indptr[v]:indptr[v + 1]]`` must hold vertex ``v``'s
        neighbours in strictly increasing order, and the adjacency must
        be symmetric with no self-loops — exactly the arrays
        :meth:`adjacency_csr` returns.  No ``(m, 2)`` edge array or edge
        tuples are materialised (``edge_array`` stays lazy), so peak
        memory is O(E).  Digest and equality semantics are identical to
        the edge-list constructor: ``from_csr(*g.adjacency_csr())`` is
        ``==`` to ``g``, hashes identically, and produces the same
        :func:`repro.cache.instance_token` digest.

        Set ``validate=False`` only for arrays produced by trusted code
        (the generators); invalid CSR input then yields undefined
        behaviour.
        """
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        n = int(num_vertices)
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.shape[0] != n + 1:
            raise ValueError(
                f"indptr must have length n + 1 = {n + 1}, got {indptr.shape[0]}"
            )
        nnz = int(indices.shape[0])
        if validate:
            cls._validate_csr(n, indptr, indices, nnz)
        idx_dtype = csr_index_dtype(n, nnz)
        self = cls.__new__(cls)
        self._n = n
        self._edge_arr = None
        self._indptr = np.ascontiguousarray(indptr, dtype=idx_dtype)
        self._indptr.setflags(write=False)
        self._indices = np.ascontiguousarray(indices, dtype=idx_dtype)
        self._indices.setflags(write=False)
        self._degrees = np.diff(indptr).astype(np.int64)
        self._degrees.setflags(write=False)
        self._edges = None
        self._hash = None
        return self

    @staticmethod
    def _validate_csr(
        n: int, indptr: np.ndarray, indices: np.ndarray, nnz: int
    ) -> None:
        if indptr.size and (int(indptr[0]) != 0 or int(indptr[-1]) != nnz):
            raise ValueError(
                f"indptr must run from 0 to len(indices)={nnz}, "
                f"got [{int(indptr[0])}, {int(indptr[-1])}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if nnz == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= n:
            raise ValueError(f"indices out of range for {n} vertices")
        degrees = np.diff(indptr)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        if np.any(src == indices):
            v = int(src[np.argmax(src == indices)])
            raise ValueError(f"self-loop at vertex {v} is not allowed")
        if nnz > 1:
            # Positions i, i+1 in the same row must be strictly increasing
            # (sorted, no duplicate neighbours).
            same_row = np.ones(nnz - 1, dtype=bool)
            boundaries = np.asarray(indptr[1:-1], dtype=np.int64)
            boundaries = boundaries[(boundaries > 0) & (boundaries < nnz)]
            same_row[boundaries - 1] = False
            deltas = np.diff(indices.astype(np.int64))
            if np.any(deltas[same_row] <= 0):
                raise ValueError(
                    "each CSR row must list neighbours in strictly "
                    "increasing order with no duplicates"
                )
        # Symmetry: the reversed entry list (dst, src), sorted into CSR
        # order, must reproduce the forward list exactly.
        rev_order = np.lexsort((src, indices))
        if not (
            np.array_equal(src, np.asarray(indices)[rev_order])
            and np.array_equal(np.asarray(indices), src[rev_order])
        ):
            raise ValueError("CSR adjacency must be symmetric (undirected graph)")

    def _validate(self, arr: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> None:
        """Reject out-of-range endpoints, self-loops and duplicate edges.

        Reports the earliest offending edge with the same message (and the
        same per-edge check priority) as the original per-edge loop.
        """
        out_of_range = (lo < 0) | (hi >= self._n)
        self_loop = ~out_of_range & (lo == hi)
        bad = out_of_range | self_loop
        first_bad = int(np.argmax(bad)) if bad.any() else arr.shape[0]
        # Duplicates can only precede the first invalid edge, so dedup the
        # valid prefix; beyond it the invalid edge is reported first.
        first_dup = arr.shape[0]
        if first_bad > 0:
            keys = lo[:first_bad] * self._n + hi[:first_bad]
            _, first_idx = np.unique(keys, return_index=True)
            if len(first_idx) != len(keys):
                dup_mask = np.ones(len(keys), dtype=bool)
                dup_mask[first_idx] = False
                first_dup = int(np.argmax(dup_mask))
        if first_bad < arr.shape[0] and first_bad <= first_dup:
            u, v = int(arr[first_bad, 0]), int(arr[first_bad, 1])
            if out_of_range[first_bad]:
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if first_dup < arr.shape[0]:
            key = (int(lo[first_dup]), int(hi[first_dup]))
            raise ValueError(f"duplicate edge {key}")

    # -- basic accessors -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.shape[0] // 2

    def _check_tuple_view(self, count: int, what: str) -> None:
        if count > TUPLE_VIEW_LIMIT and not _TUPLE_VIEWS_ALLOWED.get():
            raise RuntimeError(
                f"materialising {what} would build {count} tuples "
                f"(> TUPLE_VIEW_LIMIT = {TUPLE_VIEW_LIMIT}); use the "
                f"array-native APIs (edge_array, adjacency_csr) or wrap "
                f"the access in repro.graphs.allow_tuple_views()"
            )

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as sorted ``(min, max)`` tuples, in sorted order.

        Size-gated: raises above :data:`TUPLE_VIEW_LIMIT` edges unless
        inside :func:`allow_tuple_views` — use :attr:`edge_array` in
        array code.
        """
        if self._edges is None:
            self._check_tuple_view(self.num_edges, "Graph.edges")
            self._edges = tuple(map(tuple, self.edge_array.tolist()))
        return self._edges

    @property
    def edge_array(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of canonical ``(min, max)`` edges.

        Lazily derived from the CSR adjacency for :meth:`from_csr`-built
        graphs (CSR rows are sorted, so the derived array is already in
        canonical lexicographic order).
        """
        if self._edge_arr is None:
            src = np.repeat(np.arange(self._n, dtype=np.int64), self._degrees)
            dst = self._indices.astype(np.int64, copy=False)
            mask = src < dst
            arr = np.column_stack((src[mask], dst[mask]))
            arr.setflags(write=False)
            self._edge_arr = arr
        return self._edge_arr

    def adjacency_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The adjacency in CSR form as read-only ``(indptr, indices)``.

        Vertex ``v``'s sorted neighbours are
        ``indices[indptr[v]:indptr[v + 1]]``.  This is the array-native
        export consumed by :class:`repro.core.compiled.CompiledInstance`.
        Index dtype is :func:`csr_index_dtype` of the graph's size.
        """
        return self._indptr, self._indices

    def _adjacency_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """All neighbourhoods as a tuple of tuples (size-gated bulk view)."""
        self._check_tuple_view(self._n, "Graph._adjacency_tuples")
        indices = self._indices.tolist()
        indptr = self._indptr.tolist()
        return tuple(
            tuple(indices[indptr[v] : indptr[v + 1]]) for v in range(self._n)
        )

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbours of ``vertex``.

        A per-call CSR row slice: cost is O(deg(vertex)), never O(n) —
        large-n code paths can interrogate single vertices freely.
        """
        if vertex < 0:
            vertex += self._n
        if not 0 <= vertex < self._n:
            raise IndexError(f"vertex {vertex} out of range for {self._n} vertices")
        start, stop = int(self._indptr[vertex]), int(self._indptr[vertex + 1])
        return tuple(self._indices[start:stop].tolist())

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        return int(self._degrees[vertex])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices as a read-only array, indexed by vertex."""
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present.

        Binary search in ``u``'s sorted CSR row — O(log deg(u)), no set
        materialisation.
        """
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        start, stop = int(self._indptr[u]), int(self._indptr[u + 1])
        pos = int(np.searchsorted(self._indices[start:stop], v))
        return pos < stop - start and int(self._indices[start + pos]) == v

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        # CSR is canonical (rows sorted), so value equality of the index
        # arrays is edge-set equality regardless of index dtype or
        # construction path (edge list vs from_csr).
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            h = hashlib.blake2b(digest_size=8)
            h.update(str(self._n).encode("ascii"))
            h.update(np.ascontiguousarray(self._indptr, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self._indices, dtype=np.int64).tobytes())
            self._hash = int.from_bytes(h.digest(), "little")
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # -- structure queries ------------------------------------------------

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def min_degree(self) -> int:
        """Minimum degree δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.min())

    def is_complete(self) -> bool:
        """Whether every pair of distinct vertices is adjacent."""
        return self.num_edges == self._n * (self._n - 1) // 2

    def is_regular(self) -> bool:
        """Whether all vertices share the same degree."""
        if self._n == 0:
            return True
        return int(self._degrees.min()) == int(self._degrees.max())

    # -- interop ----------------------------------------------------------

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph.

        Vertices are relabelled ``0 .. n-1`` in sorted node order; the node
        order therefore must be sortable.
        """
        nodes = sorted(nx_graph.nodes())
        index: Dict[object, int] = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        out = nx.Graph()
        out.add_nodes_from(range(self._n))
        out.add_edges_from(map(tuple, self.edge_array.tolist()))
        return out

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "Graph":
        """Build from an adjacency-list representation.

        The adjacency lists must be symmetric (``v in adjacency[u]`` iff
        ``u in adjacency[v]``); violations raise ``ValueError``.
        """
        n = len(adjacency)
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                if u not in adjacency[v]:
                    raise ValueError(
                        f"asymmetric adjacency: {v} in adj[{u}] but {u} not in adj[{v}]"
                    )
                if u < v:
                    edges.append((u, v))
        return cls(n, edges)
