"""Graph substrate for the liquid-democracy reproduction.

Provides an immutable undirected :class:`Graph` type, generators for every
topology studied in the paper (complete, star, random d-regular, bounded
degree families) plus the "real-world-ish" families proposed for future
work in Section 6 (Barabási–Albert, Watts–Strogatz, caveman), and degree /
structural-asymmetry statistics.
"""

from repro.graphs.graph import (
    TUPLE_VIEW_LIMIT,
    Graph,
    allow_tuple_views,
    csr_index_dtype,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    connected_caveman_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_bounded_degree_graph,
    random_min_degree_graph,
    random_regular_graph,
    star_graph,
    star_of_cliques_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import (
    DegreeStatistics,
    degree_statistics,
    is_connected,
    structural_asymmetry,
)

__all__ = [
    "Graph",
    "TUPLE_VIEW_LIMIT",
    "allow_tuple_views",
    "csr_index_dtype",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "path_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "connected_caveman_graph",
    "star_of_cliques_graph",
    "random_bounded_degree_graph",
    "random_min_degree_graph",
    "DegreeStatistics",
    "degree_statistics",
    "is_connected",
    "structural_asymmetry",
]
