"""Structural statistics of voting graphs.

The paper's takeaway (Section 6) is that liquid democracy works on graphs
"without too much structural asymmetry in the node degrees".  This module
quantifies that: degree summaries, connectivity, and a degree-Gini-based
structural-asymmetry score used by the topology-audit experiment (X3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of the degree sequence of a graph."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    degree_variance: float
    degree_gini: float

    def is_regular(self) -> bool:
        """Whether every vertex shares the same degree."""
        return self.min_degree == self.max_degree


def gini_coefficient(values: List[float]) -> float:
    """Gini coefficient of a non-negative sequence (0 = equal, → 1 = skewed)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    sorted_arr = np.sort(arr)
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * sorted_arr)) / (n * total) - (n + 1) / n)


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    degs = graph.degrees()
    if not len(degs):
        return DegreeStatistics(0, 0, 0, 0, 0.0, 0.0, 0.0)
    arr = np.asarray(degs, dtype=float)
    return DegreeStatistics(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        min_degree=int(arr.min()),
        max_degree=int(arr.max()),
        mean_degree=float(arr.mean()),
        degree_variance=float(arr.var()),
        degree_gini=gini_coefficient(degs),
    )


def structural_asymmetry(graph: Graph) -> float:
    """Degree-based asymmetry score in [0, 1).

    Defined as the Gini coefficient of the degree sequence: 0 for regular
    graphs (cycle, complete, random d-regular), approaching 1 for a star.
    The paper predicts liquid democracy degrades as this score grows.
    """
    return degree_statistics(graph).degree_gini


def is_connected(graph: Graph) -> bool:
    """Breadth-first connectivity check (empty graph counts as connected)."""
    n = graph.num_vertices
    if n <= 1:
        return True
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n


def connected_components(graph: Graph) -> List[List[int]]:
    """All connected components, each as a sorted vertex list."""
    n = graph.num_vertices
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        comp = [start]
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components
