"""Graph generators for every topology the paper studies or suggests.

All generators return :class:`repro.graphs.Graph` instances and accept a
``seed`` (int, Generator or None) wherever randomness is involved.  The
random d-regular generator uses the configuration (pairing) model with
rejection of loops/multi-edges, which samples asymptotically uniformly for
constant ``d`` — the regime covered by Theorem 3.

The scale generators (Barabási–Albert, Watts–Strogatz, caveman,
d-regular) never build Python edge-tuple lists: edges live in flat NumPy
arrays end to end and the adjacency CSR is assembled directly via
:func:`_graph_from_edge_array`, keeping peak memory ``O(E)`` at
million-vertex sizes.
"""

from __future__ import annotations
# reprolint: sparse-safe

import itertools
from typing import List, Optional, Set, Tuple

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.graphs.graph import Graph

_BA_MAX_REDRAW_ROUNDS = 512
"""Safety cap on Barabási–Albert duplicate-target redraw sweeps."""

_WS_MAX_REJECTION_TRIES = 64
"""Rejection-sampling attempts per Watts–Strogatz rewire before the
exact (enumerate-all-candidates) fallback."""


def _graph_from_edge_array(n: int, edges: np.ndarray) -> Graph:
    """Assemble a :class:`Graph` straight from a trusted edge array.

    ``edges`` must be a ``(m, 2)`` integer array of distinct undirected
    edges with no self-loops (generators guarantee this by
    construction).  The CSR is built in one ``bincount``/``lexsort``
    pass and handed to :meth:`Graph.from_csr` with validation off, so no
    per-edge tuples and no canonicalisation re-sort are ever
    materialised.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return Graph(n)
    src = np.concatenate((edges[:, 0], edges[:, 1]))
    dst = np.concatenate((edges[:, 1], edges[:, 0]))
    counts = np.bincount(src, minlength=n)
    indptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))
    order = np.lexsort((dst, src))
    return Graph.from_csr(n, indptr, dst[order], validate=False)


def complete_graph(n: int) -> Graph:
    """The complete graph :math:`K_n` (graph restriction ``K_n``).

    Emits the CSR directly (row ``i`` is ``0..n-1`` minus ``i``) — no
    intermediate triangle of edge pairs.
    """
    idx = np.arange(n, dtype=np.int64)
    full = np.broadcast_to(idx, (n, n))
    indices = full[full != idx[:, None]]
    indptr = np.arange(n + 1, dtype=np.int64) * max(n - 1, 0)
    return Graph.from_csr(n, indptr, indices, validate=False)


def star_graph(n: int, centre: int = 0) -> Graph:
    """A star on ``n`` vertices with the hub at ``centre``.

    This is the Figure 1 counterexample topology: the single high-degree
    hub lets a delegate-to-better mechanism concentrate all weight on one
    voter, violating do-no-harm.
    """
    if n < 1:
        raise ValueError(f"star graph needs at least 1 vertex, got {n}")
    if not 0 <= centre < n:
        raise ValueError(f"centre {centre} out of range for {n} vertices")
    return Graph(n, ((centre, v) for v in range(n) if v != centre))


def cycle_graph(n: int) -> Graph:
    """The n-cycle — the simplest 2-regular bounded-degree graph."""
    if n < 3:
        raise ValueError(f"cycle graph needs at least 3 vertices, got {n}")
    return Graph(n, ((i, (i + 1) % n) for i in range(n)))


def path_graph(n: int) -> Graph:
    """The n-path (maximum degree 2, minimum degree 1)."""
    if n < 1:
        raise ValueError(f"path graph needs at least 1 vertex, got {n}")
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols 2-D grid — a canonical Δ ≤ 4 bounded-degree graph."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def random_regular_graph(
    n: int, d: int, seed: SeedLike = None, max_tries: int = 200
) -> Graph:
    """A random simple d-regular graph (Steger–Wormald pairing).

    This realises the ``Rand(n, d)`` graph restriction.  Each vertex gets
    ``d`` half-edges ("stubs"); stubs are matched progressively, skipping
    pairs that would create a loop or multi-edge, restarting on a dead
    end.  For ``d = o(n^{1/3})`` the output is asymptotically uniform
    over simple d-regular graphs — the regime of Theorem 3, where ``d``
    is constant or slowly growing.

    Raises
    ------
    ValueError
        If ``n * d`` is odd or ``d >= n`` (no simple d-regular graph
        exists), or if ``max_tries`` restarts all dead-end.
    """
    if d < 0 or n < 0:
        raise ValueError(f"n and d must be non-negative, got n={n}, d={d}")
    if d >= n and not (n == 0 and d == 0):
        raise ValueError(f"no simple {d}-regular graph on {n} vertices exists")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d == 0:
        return Graph(n)
    if d == n - 1:
        return complete_graph(n)
    rng = as_generator(seed)
    for _ in range(max_tries):
        edges = _pair_stubs(n, d, rng)
        if edges is not None:
            return _graph_from_edge_array(n, edges)
    raise ValueError(
        f"failed to sample a simple {d}-regular graph on {n} vertices "
        f"after {max_tries} attempts"
    )


def _pair_stubs(n: int, d: int, rng: np.random.Generator):
    """One Steger–Wormald pairing attempt; None on a dead end.

    Each round shuffles the remaining stubs once (same generator stream
    as the original per-pair loop) and accepts/rejects all pairs with
    array operations: a pair is rejected iff it is a self-loop, repeats
    an already placed edge, or repeats an earlier accepted pair of the
    same round — exactly the sequential acceptance rule.
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    placed_keys = np.empty(0, dtype=np.int64)
    edge_chunks: List[np.ndarray] = []
    while stubs.size:
        rng.shuffle(stubs)
        pairs = stubs[: stubs.size - (stubs.size % 2)].reshape(-1, 2)
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        keys = lo * n + hi
        valid = (lo != hi) & ~np.isin(keys, placed_keys)
        if valid.any():
            # Among valid pairs, only the first occurrence of each key
            # is accepted (earlier pairs win, as in sequential order).
            vidx = np.flatnonzero(valid)
            first = np.unique(keys[vidx], return_index=True)[1]
            accept = np.zeros(len(pairs), dtype=bool)
            accept[vidx[np.sort(first)]] = True
        else:
            return None
        edge_chunks.append(np.column_stack((lo[accept], hi[accept])))
        placed_keys = np.concatenate((placed_keys, keys[accept]))
        leftover = pairs[~accept].ravel()
        if stubs.size % 2:  # odd leftover from a previous round's carry
            leftover = np.append(leftover, stubs[-1])
        stubs = leftover
    return np.concatenate(edge_chunks) if edge_chunks else np.empty((0, 2), int)


def erdos_renyi_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """The Erdős–Rényi graph G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must lie in [0, 1], got {p}")
    rng = as_generator(seed)
    if n < 2 or p <= 0.0:
        return Graph(n)
    # Vectorised draw over the upper triangle; edges stay arrays.
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    return _graph_from_edge_array(n, np.column_stack((iu[mask], ju[mask])))


def barabasi_albert_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Section 6 proposes auditing the paper's variance conditions on such
    hub-heavy "social network" models; this generator feeds experiment X3.
    Starts from a star on ``m + 1`` vertices, then attaches each new vertex
    to ``m`` distinct existing vertices chosen proportionally to degree.

    The attachment pool ("each endpoint once per incident edge") is laid
    out as a flat slot array whose final length is known up front: the
    ``2m`` star endpoints, then per step ``m`` target slots and ``m``
    copies of the new vertex id.  Every step draws its ``m`` pool
    positions in one batched call; positions pointing at earlier target
    slots are resolved by pointer doubling, and steps whose ``m``
    resolved targets collide redraw only the duplicate slots (first
    occurrence kept) until every step is duplicate-free.  This replaces
    the seed's per-step Python loop with ``O(log n)`` array sweeps, so
    the generator stream differs from the original interleaved scalar
    draws — seeded outputs are equally valid preferential-attachment
    samples, not bit-identical to the old ones (same caveat as
    :func:`watts_strogatz_graph`).
    """
    if m < 1:
        raise ValueError(f"m must be at least 1, got {m}")
    if n < m + 1:
        raise ValueError(f"need n >= m + 1 = {m + 1}, got n={n}")
    rng = as_generator(seed)
    star = np.column_stack(
        (np.zeros(m, dtype=np.int64), np.arange(1, m + 1, dtype=np.int64))
    )
    steps = n - m - 1
    if steps == 0:
        return _graph_from_edge_array(n, star)
    slot = 2 * m
    total = slot * (steps + 1)
    # Static pool values: star endpoints interleaved (0, 1, 0, 2, ...),
    # then each step's m new-vertex copies.  Target slots are resolved
    # below; their cells are never read before resolution lands on a
    # static cell (pointers strictly decrease).
    val = np.full(total, -1, dtype=np.int64)
    val[0:slot:2] = 0
    val[1:slot:2] = np.arange(1, m + 1)
    bases = slot + slot * np.arange(steps, dtype=np.int64)
    tg = bases[:, None] + np.arange(m, dtype=np.int64)[None, :]
    new_ids = np.arange(m + 1, n, dtype=np.int64)
    val[bases[:, None] + np.arange(m, slot, dtype=np.int64)[None, :]] = (
        new_ids[:, None]
    )
    ptr_dtype = np.int64 if total > np.iinfo(np.int32).max else np.int32
    ptr = np.arange(total, dtype=ptr_dtype)
    # Step s draws from the pool prefix of length bases[s] (everything
    # appended by earlier steps plus the star) — degree-proportional by
    # the pool invariant.
    ptr[tg] = rng.integers(0, bases[:, None], size=(steps, m), dtype=ptr_dtype)
    targets = None
    for _ in range(_BA_MAX_REDRAW_ROUNDS):
        roots = ptr
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                break
            roots = nxt
        targets = val[roots[tg]]
        # A slot is a duplicate iff an earlier slot of the same step
        # resolved to the same vertex (stable sort ⇒ first slot wins).
        order = np.argsort(targets, axis=1, kind="stable")
        svals = np.take_along_axis(targets, order, axis=1)
        dup_sorted = np.zeros_like(svals, dtype=bool)
        dup_sorted[:, 1:] = svals[:, 1:] == svals[:, :-1]
        if not dup_sorted.any():
            break
        dup = np.zeros_like(dup_sorted)
        np.put_along_axis(dup, order, dup_sorted, axis=1)
        rows, cols = np.nonzero(dup)
        ptr[tg[rows, cols]] = rng.integers(0, bases[rows], dtype=ptr_dtype)
    else:
        raise RuntimeError(
            "Barabási–Albert target redraw failed to converge "
            f"after {_BA_MAX_REDRAW_ROUNDS} sweeps"
        )
    edges = np.concatenate(
        (star, np.column_stack((targets.ravel(), np.repeat(new_ids, m))))
    )
    return _graph_from_edge_array(n, edges)


def watts_strogatz_graph(
    n: int, k: int, rewire_prob: float, seed: SeedLike = None
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring).

    ``k`` must be even; each vertex starts connected to its ``k`` nearest
    ring neighbours, then each clockwise edge is rewired with probability
    ``rewire_prob`` to a uniform non-duplicate target.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ValueError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError(f"rewire_prob must lie in [0, 1], got {rewire_prob}")
    rng = as_generator(seed)
    # Ring lattice, vectorised: clockwise edge (u, (u + offset) % n) for
    # every vertex and offset.  All rewiring coins are drawn in one call
    # before any rewire-target draw, so the stream differs from the
    # seed's interleaved scalar draws — seeded outputs are equally valid
    # Watts–Strogatz samples, not bit-identical to the old ones.
    half = k // 2
    u_all = np.repeat(np.arange(n, dtype=np.int64), half)
    v_all = (u_all + np.tile(np.arange(1, half + 1, dtype=np.int64), n)) % n
    coins = rng.random(n * half)
    flagged = np.flatnonzero(coins < rewire_prob)
    if not flagged.size:
        return _graph_from_edge_array(n, np.column_stack((u_all, v_all)))
    # Rewiring keeps O(E) state: the edge list stays in (u_all, v_all)
    # and membership is a set of scalar edge keys.  Each rewire draws its
    # uniform non-duplicate target by rejection sampling (uniform over
    # valid targets, exactly as enumerating them), falling back to exact
    # enumeration only if a vertex is so saturated that
    # ``_WS_MAX_REJECTION_TRIES`` draws all collide.
    edge_keys = set(
        (np.minimum(u_all, v_all) * n + np.maximum(u_all, v_all)).tolist()
    )
    for idx in flagged.tolist():
        u, v = int(u_all[idx]), int(v_all[idx])
        key = u * n + v if u < v else v * n + u
        if key not in edge_keys:
            continue  # already rewired away
        w = -1
        for _ in range(_WS_MAX_REJECTION_TRIES):
            cand = int(rng.integers(n))
            if cand == u:
                continue
            cand_key = u * n + cand if u < cand else cand * n + u
            if cand_key in edge_keys:
                continue
            w, new_key = cand, cand_key
            break
        else:
            # Exact fallback: recover u's current neighbourhood from the
            # live edge arrays (rare, so the O(E) scan is acceptable).
            mask = np.ones(n, dtype=bool)
            mask[u] = False
            mask[v_all[u_all == u]] = False
            mask[u_all[v_all == u]] = False
            candidates = np.flatnonzero(mask)
            if not candidates.size:
                continue
            w = int(candidates[int(rng.integers(candidates.size))])
            new_key = u * n + w if u < w else w * n + u
        v_all[idx] = w
        edge_keys.remove(key)
        edge_keys.add(new_key)
    return _graph_from_edge_array(n, np.column_stack((u_all, v_all)))


def connected_caveman_graph(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: a ring of cliques sharing one rewired edge.

    A clustered "corporate teams" topology: high minimum degree inside
    cliques with a thin ring connecting them.
    """
    if num_cliques < 1 or clique_size < 2:
        raise ValueError(
            f"need num_cliques >= 1 and clique_size >= 2, got "
            f"{num_cliques}, {clique_size}"
        )
    n = num_cliques * clique_size
    # One clique's upper triangle, broadcast across all clique bases; the
    # first triu pair is (0, 1), i.e. each clique's (base, base + 1) edge
    # that the connected variant rewires into the ring.
    iu, ju = np.triu_indices(clique_size, k=1)
    bases = np.arange(num_cliques, dtype=np.int64) * clique_size
    src = bases[:, None] + iu[None, :]
    dst = bases[:, None] + ju[None, :]
    if num_cliques > 1:
        src, dst = src[:, 1:], dst[:, 1:]
        nxt = ((np.arange(num_cliques, dtype=np.int64) + 1) % num_cliques) * (
            clique_size
        )
        ring_a = np.minimum(bases, nxt + 1)
        ring_b = np.maximum(bases, nxt + 1)
        edges = np.column_stack(
            (
                np.concatenate((src.ravel(), ring_a)),
                np.concatenate((dst.ravel(), ring_b)),
            )
        )
    else:
        edges = np.column_stack((src.ravel(), dst.ravel()))
    return _graph_from_edge_array(n, edges)


def star_of_cliques_graph(num_cliques: int, clique_size: int) -> Graph:
    """A hub vertex connected to one member of each clique.

    An extreme structural-asymmetry topology used in the condition-audit
    experiment (X3): vertex 0 is the hub; cliques hang off it.
    """
    if num_cliques < 1 or clique_size < 1:
        raise ValueError(
            f"need num_cliques >= 1 and clique_size >= 1, got "
            f"{num_cliques}, {clique_size}"
        )
    n = 1 + num_cliques * clique_size
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = 1 + c * clique_size
        members = range(base, base + clique_size)
        edges.extend(itertools.combinations(members, 2))
        edges.append((0, base))
    return Graph(n, edges)


def random_bounded_degree_graph(
    n: int, max_degree: int, target_edges: Optional[int] = None, seed: SeedLike = None
) -> Graph:
    """A random connected-ish graph with maximum degree at most ``max_degree``.

    Realises the ``Δ ≤ k`` restriction (Theorem 4 workloads).  Greedily
    adds uniformly random edges between vertices that still have spare
    degree, starting from a spanning path (itself degree ≤ 2) so that the
    result is connected whenever ``max_degree >= 2``.
    """
    if max_degree < 1:
        raise ValueError(f"max_degree must be >= 1, got {max_degree}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = as_generator(seed)
    degrees = [0] * n
    edges: Set[Tuple[int, int]] = set()
    if max_degree >= 2 and n >= 2:
        order = rng.permutation(n)
        for i in range(n - 1):
            u, v = int(order[i]), int(order[i + 1])
            edges.add((min(u, v), max(u, v)))
            degrees[u] += 1
            degrees[v] += 1
    elif max_degree == 1 and n >= 2:
        order = rng.permutation(n)
        for i in range(0, n - 1, 2):
            u, v = int(order[i]), int(order[i + 1])
            edges.add((min(u, v), max(u, v)))
            degrees[u] += 1
            degrees[v] += 1
        return Graph(n, edges)
    if target_edges is None:
        target_edges = min(n * max_degree // 2, 2 * n)
    attempts = 0
    max_attempts = 20 * max(target_edges, 1) + 100
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        if degrees[u] >= max_degree or degrees[v] >= max_degree:
            continue
        edges.add(key)
        degrees[u] += 1
        degrees[v] += 1
    return Graph(n, edges)


def random_min_degree_graph(n: int, min_degree: int, seed: SeedLike = None) -> Graph:
    """A random graph with minimum degree at least ``min_degree``.

    Realises the ``δ ≥ k`` restriction (Theorem 5 workloads).  Each vertex
    links to ``min_degree`` distinct uniform partners; union of the
    resulting directed picks gives minimum degree ≥ ``min_degree``.
    """
    if min_degree < 0:
        raise ValueError(f"min_degree must be >= 0, got {min_degree}")
    if min_degree >= n and n > 0:
        raise ValueError(
            f"min_degree must be < n for a simple graph, got "
            f"min_degree={min_degree}, n={n}"
        )
    rng = as_generator(seed)
    edges: Set[Tuple[int, int]] = set()
    for u in range(n):
        others = np.array([v for v in range(n) if v != u])
        picks = rng.choice(others, size=min_degree, replace=False)
        for v in picks:
            v = int(v)
            edges.add((min(u, v), max(u, v)))
    return Graph(n, edges)
