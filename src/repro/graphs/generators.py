"""Graph generators for every topology the paper studies or suggests.

All generators return :class:`repro.graphs.Graph` instances and accept a
``seed`` (int, Generator or None) wherever randomness is involved.  The
random d-regular generator uses the configuration (pairing) model with
rejection of loops/multi-edges, which samples asymptotically uniformly for
constant ``d`` — the regime covered by Theorem 3.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set, Tuple

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro.graphs.graph import Graph


def complete_graph(n: int) -> Graph:
    """The complete graph :math:`K_n` (graph restriction ``K_n``)."""
    iu, ju = np.triu_indices(n, k=1)
    return Graph(n, np.column_stack((iu, ju)))


def star_graph(n: int, centre: int = 0) -> Graph:
    """A star on ``n`` vertices with the hub at ``centre``.

    This is the Figure 1 counterexample topology: the single high-degree
    hub lets a delegate-to-better mechanism concentrate all weight on one
    voter, violating do-no-harm.
    """
    if n < 1:
        raise ValueError(f"star graph needs at least 1 vertex, got {n}")
    if not 0 <= centre < n:
        raise ValueError(f"centre {centre} out of range for {n} vertices")
    return Graph(n, ((centre, v) for v in range(n) if v != centre))


def cycle_graph(n: int) -> Graph:
    """The n-cycle — the simplest 2-regular bounded-degree graph."""
    if n < 3:
        raise ValueError(f"cycle graph needs at least 3 vertices, got {n}")
    return Graph(n, ((i, (i + 1) % n) for i in range(n)))


def path_graph(n: int) -> Graph:
    """The n-path (maximum degree 2, minimum degree 1)."""
    if n < 1:
        raise ValueError(f"path graph needs at least 1 vertex, got {n}")
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols 2-D grid — a canonical Δ ≤ 4 bounded-degree graph."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def random_regular_graph(
    n: int, d: int, seed: SeedLike = None, max_tries: int = 200
) -> Graph:
    """A random simple d-regular graph (Steger–Wormald pairing).

    This realises the ``Rand(n, d)`` graph restriction.  Each vertex gets
    ``d`` half-edges ("stubs"); stubs are matched progressively, skipping
    pairs that would create a loop or multi-edge, restarting on a dead
    end.  For ``d = o(n^{1/3})`` the output is asymptotically uniform
    over simple d-regular graphs — the regime of Theorem 3, where ``d``
    is constant or slowly growing.

    Raises
    ------
    ValueError
        If ``n * d`` is odd or ``d >= n`` (no simple d-regular graph
        exists), or if ``max_tries`` restarts all dead-end.
    """
    if d < 0 or n < 0:
        raise ValueError(f"n and d must be non-negative, got n={n}, d={d}")
    if d >= n and not (n == 0 and d == 0):
        raise ValueError(f"no simple {d}-regular graph on {n} vertices exists")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d == 0:
        return Graph(n)
    if d == n - 1:
        return complete_graph(n)
    rng = as_generator(seed)
    for _ in range(max_tries):
        edges = _pair_stubs(n, d, rng)
        if edges is not None:
            return Graph(n, edges)
    raise ValueError(
        f"failed to sample a simple {d}-regular graph on {n} vertices "
        f"after {max_tries} attempts"
    )


def _pair_stubs(n: int, d: int, rng: np.random.Generator):
    """One Steger–Wormald pairing attempt; None on a dead end.

    Each round shuffles the remaining stubs once (same generator stream
    as the original per-pair loop) and accepts/rejects all pairs with
    array operations: a pair is rejected iff it is a self-loop, repeats
    an already placed edge, or repeats an earlier accepted pair of the
    same round — exactly the sequential acceptance rule.
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    placed_keys = np.empty(0, dtype=np.int64)
    edge_chunks: List[np.ndarray] = []
    while stubs.size:
        rng.shuffle(stubs)
        pairs = stubs[: stubs.size - (stubs.size % 2)].reshape(-1, 2)
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        keys = lo * n + hi
        valid = (lo != hi) & ~np.isin(keys, placed_keys)
        if valid.any():
            # Among valid pairs, only the first occurrence of each key
            # is accepted (earlier pairs win, as in sequential order).
            vidx = np.flatnonzero(valid)
            first = np.unique(keys[vidx], return_index=True)[1]
            accept = np.zeros(len(pairs), dtype=bool)
            accept[vidx[np.sort(first)]] = True
        else:
            return None
        edge_chunks.append(np.column_stack((lo[accept], hi[accept])))
        placed_keys = np.concatenate((placed_keys, keys[accept]))
        leftover = pairs[~accept].ravel()
        if stubs.size % 2:  # odd leftover from a previous round's carry
            leftover = np.append(leftover, stubs[-1])
        stubs = leftover
    return np.concatenate(edge_chunks) if edge_chunks else np.empty((0, 2), int)


def erdos_renyi_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """The Erdős–Rényi graph G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must lie in [0, 1], got {p}")
    rng = as_generator(seed)
    edges = []
    if n >= 2 and p > 0.0:
        # Vectorised draw over the upper triangle.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.size) < p
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    return Graph(n, edges)


def barabasi_albert_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Barabási–Albert preferential attachment graph.

    Section 6 proposes auditing the paper's variance conditions on such
    hub-heavy "social network" models; this generator feeds experiment X3.
    Starts from a star on ``m + 1`` vertices, then attaches each new vertex
    to ``m`` distinct existing vertices chosen proportionally to degree.
    """
    if m < 1:
        raise ValueError(f"m must be at least 1, got {m}")
    if n < m + 1:
        raise ValueError(f"need n >= m + 1 = {m + 1}, got n={n}")
    rng = as_generator(seed)
    edges: List[Tuple[int, int]] = [(0, v) for v in range(1, m + 1)]
    # repeated_nodes holds each endpoint once per incident edge, so uniform
    # sampling from it is degree-proportional sampling.
    repeated: List[int] = []
    for u, v in edges:
        repeated.extend((u, v))
    for new in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(int(repeated[rng.integers(len(repeated))]))
        for t in targets:
            edges.append((t, new))
            repeated.extend((t, new))
    return Graph(n, edges)


def watts_strogatz_graph(
    n: int, k: int, rewire_prob: float, seed: SeedLike = None
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring).

    ``k`` must be even; each vertex starts connected to its ``k`` nearest
    ring neighbours, then each clockwise edge is rewired with probability
    ``rewire_prob`` to a uniform non-duplicate target.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ValueError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError(f"rewire_prob must lie in [0, 1], got {rewire_prob}")
    rng = as_generator(seed)
    # Ring lattice, vectorised: clockwise edge (u, (u + offset) % n) for
    # every vertex and offset.  All rewiring coins are drawn in one call
    # before any rewire-target draw, so the stream differs from the
    # seed's interleaved scalar draws — seeded outputs are equally valid
    # Watts–Strogatz samples, not bit-identical to the old ones.
    half = k // 2
    u_all = np.repeat(np.arange(n, dtype=np.int64), half)
    v_all = (u_all + np.tile(np.arange(1, half + 1, dtype=np.int64), n)) % n
    coins = rng.random(n * half)
    flagged = np.flatnonzero(coins < rewire_prob)
    if not flagged.size:
        return Graph(n, np.column_stack((u_all, v_all)))
    neighbor_sets: List[Set[int]] = [set() for _ in range(n)]
    for u, v in zip(u_all.tolist(), v_all.tolist()):
        neighbor_sets[u].add(v)
        neighbor_sets[v].add(u)
    for idx in flagged:
        u, v = int(u_all[idx]), int(v_all[idx])
        if v not in neighbor_sets[u]:
            continue  # already rewired away by the other endpoint
        mask = np.ones(n, dtype=bool)
        mask[u] = False
        mask[list(neighbor_sets[u])] = False
        candidates = np.flatnonzero(mask)
        if not candidates.size:
            continue
        w = int(candidates[int(rng.integers(candidates.size))])
        neighbor_sets[u].discard(v)
        neighbor_sets[v].discard(u)
        neighbor_sets[u].add(w)
        neighbor_sets[w].add(u)
    edges = {(min(u, v), max(u, v)) for u in range(n) for v in neighbor_sets[u]}
    return Graph(n, edges)


def connected_caveman_graph(num_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: a ring of cliques sharing one rewired edge.

    A clustered "corporate teams" topology: high minimum degree inside
    cliques with a thin ring connecting them.
    """
    if num_cliques < 1 or clique_size < 2:
        raise ValueError(
            f"need num_cliques >= 1 and clique_size >= 2, got "
            f"{num_cliques}, {clique_size}"
        )
    n = num_cliques * clique_size
    edges: Set[Tuple[int, int]] = set()
    for c in range(num_cliques):
        base = c * clique_size
        for u, v in itertools.combinations(range(base, base + clique_size), 2):
            edges.add((u, v))
    if num_cliques > 1:
        for c in range(num_cliques):
            base = c * clique_size
            nxt = ((c + 1) % num_cliques) * clique_size
            # Rewire one intra-clique edge to the next clique.
            edges.discard((base, base + 1))
            a, b = sorted((base, nxt + 1))
            edges.add((a, b))
    return Graph(n, edges)


def star_of_cliques_graph(num_cliques: int, clique_size: int) -> Graph:
    """A hub vertex connected to one member of each clique.

    An extreme structural-asymmetry topology used in the condition-audit
    experiment (X3): vertex 0 is the hub; cliques hang off it.
    """
    if num_cliques < 1 or clique_size < 1:
        raise ValueError(
            f"need num_cliques >= 1 and clique_size >= 1, got "
            f"{num_cliques}, {clique_size}"
        )
    n = 1 + num_cliques * clique_size
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        base = 1 + c * clique_size
        members = range(base, base + clique_size)
        edges.extend(itertools.combinations(members, 2))
        edges.append((0, base))
    return Graph(n, edges)


def random_bounded_degree_graph(
    n: int, max_degree: int, target_edges: Optional[int] = None, seed: SeedLike = None
) -> Graph:
    """A random connected-ish graph with maximum degree at most ``max_degree``.

    Realises the ``Δ ≤ k`` restriction (Theorem 4 workloads).  Greedily
    adds uniformly random edges between vertices that still have spare
    degree, starting from a spanning path (itself degree ≤ 2) so that the
    result is connected whenever ``max_degree >= 2``.
    """
    if max_degree < 1:
        raise ValueError(f"max_degree must be >= 1, got {max_degree}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = as_generator(seed)
    degrees = [0] * n
    edges: Set[Tuple[int, int]] = set()
    if max_degree >= 2 and n >= 2:
        order = rng.permutation(n)
        for i in range(n - 1):
            u, v = int(order[i]), int(order[i + 1])
            edges.add((min(u, v), max(u, v)))
            degrees[u] += 1
            degrees[v] += 1
    elif max_degree == 1 and n >= 2:
        order = rng.permutation(n)
        for i in range(0, n - 1, 2):
            u, v = int(order[i]), int(order[i + 1])
            edges.add((min(u, v), max(u, v)))
            degrees[u] += 1
            degrees[v] += 1
        return Graph(n, edges)
    if target_edges is None:
        target_edges = min(n * max_degree // 2, 2 * n)
    attempts = 0
    max_attempts = 20 * max(target_edges, 1) + 100
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges:
            continue
        if degrees[u] >= max_degree or degrees[v] >= max_degree:
            continue
        edges.add(key)
        degrees[u] += 1
        degrees[v] += 1
    return Graph(n, edges)


def random_min_degree_graph(n: int, min_degree: int, seed: SeedLike = None) -> Graph:
    """A random graph with minimum degree at least ``min_degree``.

    Realises the ``δ ≥ k`` restriction (Theorem 5 workloads).  Each vertex
    links to ``min_degree`` distinct uniform partners; union of the
    resulting directed picks gives minimum degree ≥ ``min_degree``.
    """
    if min_degree < 0:
        raise ValueError(f"min_degree must be >= 0, got {min_degree}")
    if min_degree >= n and n > 0:
        raise ValueError(
            f"min_degree must be < n for a simple graph, got "
            f"min_degree={min_degree}, n={n}"
        )
    rng = as_generator(seed)
    edges: Set[Tuple[int, int]] = set()
    for u in range(n):
        others = np.array([v for v in range(n) if v != u])
        picks = rng.choice(others, size=min_degree, replace=False)
        for v in picks:
            v = int(v)
            edges.add((min(u, v), max(u, v)))
    return Graph(n, edges)
