"""Array-native compiled form of a :class:`ProblemInstance`.

Batched mechanism kernels (``sample_delegations_batch``) and the batched
Monte Carlo engine operate on flat arrays, never on per-voter
:class:`~repro.core.instance.LocalView` objects.  ``CompiledInstance``
gathers everything those kernels consume, computed once per instance:

* the graph adjacency in CSR form (``neighbor_indptr``/``neighbor_indices``),
* the approved-neighbour relation (per-voter counts plus an offset
  resolver over competency-ascending segments, backed by the cached
  :class:`~repro.core.structure.ApprovalStructure`),
* the degree and competency vectors,
* derived per-mechanism tables (e.g. greedy best-approved targets),
  memoised through :meth:`memo`.

Everything here is plain numpy data, so a compiled instance travels to
worker processes with the instance when the batch estimator fans out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Tuple

import numpy as np

from repro.delegation.graph import SELF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.instance import ProblemInstance


class CompiledInstance:
    """Flat-array view of one problem instance for batched kernels."""

    def __init__(self, instance: "ProblemInstance") -> None:
        self._instance = instance
        structure = instance.approval_structure()
        self._structure = structure
        self.num_voters: int = instance.num_voters
        self.competencies: np.ndarray = instance.competencies
        self.alpha: float = instance.alpha
        self.degrees: np.ndarray = structure.degrees
        self.approved_counts: np.ndarray = structure.approved_counts
        indptr, indices = instance.graph.adjacency_csr()
        self.neighbor_indptr: np.ndarray = indptr
        self.neighbor_indices: np.ndarray = indices
        self._approved_csr: Tuple[np.ndarray, np.ndarray] = None
        self._greedy_targets: np.ndarray = None
        self._memo: Dict[Hashable, Any] = {}

    # -- approved-neighbour access ----------------------------------------

    def resolve_approved_offsets(
        self, voters: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``approved[voter][offset]`` lookup.

        Offsets index each voter's approved segment in the local-view
        order (competency ascending, ties by vertex index), so a uniform
        offset draw reproduces ``uniform_choice(view.approved, rng)``.
        ``voters`` and ``offsets`` broadcast — kernels pass a ``(1, M)``
        voter row against ``(R, M)`` per-round offsets.
        """
        return self._structure._resolve_offsets(voters, offsets)

    def approved_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The approved relation as explicit ``(indptr, indices)`` arrays.

        Materialised lazily: on complete graphs the cached structure
        stores the O(n) suffix form instead, and batch kernels only need
        :meth:`resolve_approved_offsets`.
        """
        if self._approved_csr is None:
            counts = self.approved_counts
            indptr = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts))
            )
            total = int(indptr[-1])
            voters = np.repeat(np.arange(self.num_voters), counts)
            offsets = np.arange(total) - indptr[voters]
            indices = (
                self.resolve_approved_offsets(voters, offsets)
                if total
                else np.empty(0, dtype=np.int64)
            )
            self._approved_csr = (indptr, np.asarray(indices, dtype=np.int64))
        return self._approved_csr

    # -- derived per-mechanism tables --------------------------------------

    @property
    def greedy_targets(self) -> np.ndarray:
        """Per-voter most competent approved neighbour (ties: lowest index).

        ``SELF`` for voters with no approved neighbour.  This is exactly
        the deterministic choice of
        :class:`repro.mechanisms.greedy.GreedyBest`.
        """
        if self._greedy_targets is None:
            targets = np.full(self.num_voters, SELF, dtype=np.int64)
            indptr, indices = self.approved_csr()
            if len(indices):
                src = np.repeat(
                    np.arange(self.num_voters), np.diff(indptr)
                )
                p = self.competencies[indices]
                # Primary: voter; secondary: competency descending;
                # tertiary: index ascending — first row per voter wins.
                order = np.lexsort((indices, -p, src))
                voters_sorted = src[order]
                first = np.unique(voters_sorted, return_index=True)[1]
                targets[voters_sorted[first]] = indices[order][first]
            self._greedy_targets = targets
            self._greedy_targets.setflags(write=False)
        return self._greedy_targets

    def memo(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Memoise a derived table under ``key`` (built on first use).

        Mechanism kernels use this for instance-level precomputation that
        depends on mechanism parameters, keying by ``(class name,
        parameters)``.
        """
        if key not in self._memo:
            self._memo[key] = build()
        return self._memo[key]
