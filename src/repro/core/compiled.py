"""Array-native compiled form of a :class:`ProblemInstance`.

Batched mechanism kernels (``sample_delegations_batch``) and the batched
Monte Carlo engine operate on flat arrays, never on per-voter
:class:`~repro.core.instance.LocalView` objects.  ``CompiledInstance``
gathers everything those kernels consume, computed once per instance:

* the graph adjacency in CSR form (``neighbor_indptr``/``neighbor_indices``),
* the approved-neighbour relation (per-voter counts plus an offset
  resolver over competency-ascending segments, backed by the cached
  :class:`~repro.core.structure.ApprovalStructure`),
* the degree and competency vectors,
* derived per-mechanism tables (e.g. greedy best-approved targets),
  memoised through :meth:`memo`.

Everything here is plain numpy data, so a compiled instance travels to
worker processes with the instance when the batch estimator fans out.
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Tuple

import numpy as np

from repro.delegation.graph import SELF
from repro.graphs.graph import csr_index_dtype

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.instance import ProblemInstance


class CompiledInstance:
    """Flat-array view of one problem instance for batched kernels."""

    def __init__(self, instance: "ProblemInstance") -> None:
        self._instance = instance
        structure = instance.approval_structure()
        self._structure = structure
        self.num_voters: int = instance.num_voters
        self.competencies: np.ndarray = instance.competencies
        self.alpha: float = instance.alpha
        self.degrees: np.ndarray = structure.degrees
        self.approved_counts: np.ndarray = structure.approved_counts
        indptr, indices = instance.graph.adjacency_csr()
        self.neighbor_indptr: np.ndarray = indptr
        self.neighbor_indices: np.ndarray = indices
        #: Smallest integer dtype holding any voter index (and ``SELF``);
        #: delegate matrices produced by the batch kernels use it, halving
        #: the per-round footprint on sub-2^31 instances.
        self.index_dtype: np.dtype = csr_index_dtype(
            self.num_voters, int(indices.shape[0])
        )
        self._approved_csr: Tuple[np.ndarray, np.ndarray] = None
        self._greedy_targets: np.ndarray = None
        self._memo: Dict[Hashable, Any] = {}

    # -- approved-neighbour access ----------------------------------------

    def resolve_approved_offsets(
        self, voters: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``approved[voter][offset]`` lookup.

        Offsets index each voter's approved segment in the local-view
        order (competency ascending, ties by vertex index), so a uniform
        offset draw reproduces ``uniform_choice(view.approved, rng)``.
        ``voters`` and ``offsets`` broadcast — kernels pass a ``(1, M)``
        voter row against ``(R, M)`` per-round offsets.
        """
        return self._structure._resolve_offsets(voters, offsets)

    def approved_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The approved relation as explicit ``(indptr, indices)`` arrays.

        On general graphs this is the structure's stored CSR, returned
        without copying; on complete graphs (which store the O(n) suffix
        form) the CSR is materialised lazily and cached — batch kernels
        normally only need :meth:`resolve_approved_offsets`.
        """
        if self._approved_csr is None:
            self._approved_csr = self._structure.approved_csr()
        return self._approved_csr

    # -- derived per-mechanism tables --------------------------------------

    @property
    def greedy_targets(self) -> np.ndarray:
        """Per-voter most competent approved neighbour (ties: lowest index).

        ``SELF`` for voters with no approved neighbour.  This is exactly
        the deterministic choice of
        :class:`repro.mechanisms.greedy.GreedyBest`.
        """
        if self._greedy_targets is None:
            targets = np.full(self.num_voters, SELF, dtype=self.index_dtype)
            indptr, indices = self.approved_csr()
            if len(indices):
                src = np.repeat(
                    np.arange(self.num_voters), np.diff(indptr)
                )
                p = self.competencies[indices]
                # Primary: voter; secondary: competency descending;
                # tertiary: index ascending — first row per voter wins.
                order = np.lexsort((indices, -p, src))
                voters_sorted = src[order]
                first = np.unique(voters_sorted, return_index=True)[1]
                targets[voters_sorted[first]] = indices[order][first]
            self._greedy_targets = targets
            self._greedy_targets.setflags(write=False)
        return self._greedy_targets

    def unique_degrees(self) -> Tuple[np.ndarray, np.ndarray]:
        """Memoised ``np.unique(degrees, return_inverse=True)``.

        Threshold-style kernels evaluate their threshold once per
        distinct degree; memoising the O(n log n) unique pass here keeps
        chunk-streamed kernel calls O(n) after the first chunk.
        """
        return self.memo(
            ("unique_degrees",),
            lambda: np.unique(self.degrees, return_inverse=True),
        )

    def adopt_degree_tables(self, other: "CompiledInstance") -> None:
        """Carry degree-derived memo tables across an incremental patch.

        The delta engine rebuilds the compiled view after splicing an
        edited instance; when the degree vector is unchanged (competency
        edits never change it) the memoised ``unique_degrees`` pass — and
        any mechanism table keyed off it — is still valid, so adopting it
        keeps the patched compile O(1) instead of O(n log n).  A degree
        mismatch makes this a no-op rather than an error, so callers can
        invoke it unconditionally.  Only keys tagged degree-derived are
        adopted (``unique_degrees`` and mechanism per-degree tables);
        competency-dependent tables are rebuilt lazily as usual.
        """
        if not np.array_equal(self.degrees, other.degrees):
            return
        for key, value in other._memo.items():
            if isinstance(key, tuple) and key and key[0] in (
                "unique_degrees",
                "per_degree_thresholds",
            ):
                self._memo.setdefault(key, value)

    def memo(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Memoise a derived table under ``key`` (built on first use).

        Mechanism kernels use this for instance-level precomputation that
        depends on mechanism parameters, keying by ``(class name,
        parameters)``.
        """
        if key not in self._memo:
            self._memo[key] = build()
        return self._memo[key]
