"""Competency distributions — the probabilistic-competency extension.

Section 6 proposes unifying the paper's graph-property analysis with
Halpern et al.'s model where competencies are *sampled from a
distribution* rather than fixed adversarially.  This module provides
that model: first-class distribution objects with exact means/variances,
bounded-support checks (so the Lemma 3 condition can be certified at the
distribution level), and samplers that plug into
:class:`~repro.core.instance.ProblemInstance` construction.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_probability


class CompetencyDistribution(abc.ABC):
    """A distribution over a single voter's competency ``p ∈ [0, 1]``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. competencies."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Exact expectation ``E[p]``."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Exact variance ``Var[p]``."""

    @abc.abstractmethod
    def support(self) -> Tuple[float, float]:
        """The closed interval ``[lo, hi]`` containing all mass."""

    def bounded_margin(self) -> float:
        """Largest ``β ≥ 0`` with support inside ``(β, 1−β)``; 0 if none.

        A positive margin certifies the bounded-competency restriction of
        Lemma 3 for *every* instance sampled from the distribution.
        """
        lo, hi = self.support()
        return max(0.0, min(lo, 1.0 - hi))

    def plausible_changeability(self) -> float:
        """``|E[p] − 1/2|`` — the PC witness of the *expected* instance."""
        return abs(self.mean() - 0.5)

    def sample_vector(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw an n-voter competency vector."""
        values = self.sample(as_generator(seed), n)
        return np.clip(np.asarray(values, dtype=float), 0.0, 1.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mean={self.mean():.3f})"


class PointMass(CompetencyDistribution):
    """Every voter has the same fixed competency."""

    def __init__(self, value: float) -> None:
        self._value = check_probability("value", value)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._value)

    def mean(self) -> float:
        return self._value

    def variance(self) -> float:
        return 0.0

    def support(self) -> Tuple[float, float]:
        return (self._value, self._value)


class UniformCompetency(CompetencyDistribution):
    """Uniform on ``[low, high] ⊆ [0, 1]``."""

    def __init__(self, low: float, high: float) -> None:
        check_probability("low", low)
        check_probability("high", high)
        if low > high:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self._low, self._high, size)

    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def variance(self) -> float:
        return (self._high - self._low) ** 2 / 12.0

    def support(self) -> Tuple[float, float]:
        return (self._low, self._high)


class BetaCompetency(CompetencyDistribution):
    """Beta(a, b), optionally rescaled into ``[low, high]``.

    The workhorse of Halpern et al.-style analyses; rescaling gives a
    bounded-support variant that satisfies Lemma 3's condition.
    """

    def __init__(
        self, a: float, b: float, low: float = 0.0, high: float = 1.0
    ) -> None:
        if a <= 0 or b <= 0:
            raise ValueError(f"Beta parameters must be positive, got a={a}, b={b}")
        check_probability("low", low)
        check_probability("high", high)
        if low > high:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        self._a, self._b = float(a), float(b)
        self._low, self._high = float(low), float(high)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        raw = rng.beta(self._a, self._b, size)
        return self._low + (self._high - self._low) * raw

    def mean(self) -> float:
        raw_mean = self._a / (self._a + self._b)
        return self._low + (self._high - self._low) * raw_mean

    def variance(self) -> float:
        ab = self._a + self._b
        raw_var = self._a * self._b / (ab * ab * (ab + 1.0))
        return (self._high - self._low) ** 2 * raw_var

    def support(self) -> Tuple[float, float]:
        return (self._low, self._high)


class TruncatedNormalCompetency(CompetencyDistribution):
    """Normal(mu, sigma²) truncated to ``[low, high]`` by rejection.

    Mean/variance are computed with the standard truncated-normal
    formulas, so distribution-level certificates remain exact.
    """

    def __init__(
        self, mu: float, sigma: float, low: float = 0.0, high: float = 1.0
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        check_probability("low", low)
        check_probability("high", high)
        if low >= high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        self._mu, self._sigma = float(mu), float(sigma)
        self._low, self._high = float(low), float(high)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        out = np.empty(size)
        filled = 0
        while filled < size:
            draw = rng.normal(self._mu, self._sigma, size=2 * (size - filled) + 8)
            keep = draw[(draw >= self._low) & (draw <= self._high)]
            take = min(len(keep), size - filled)
            out[filled : filled + take] = keep[:take]
            filled += take
        return out

    def _phi(self, x: float) -> float:
        return math.exp(-x * x / 2.0) / math.sqrt(2.0 * math.pi)

    def _cdf(self, x: float) -> float:
        return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

    def mean(self) -> float:
        a = (self._low - self._mu) / self._sigma
        b = (self._high - self._mu) / self._sigma
        z = self._cdf(b) - self._cdf(a)
        return self._mu + self._sigma * (self._phi(a) - self._phi(b)) / z

    def variance(self) -> float:
        a = (self._low - self._mu) / self._sigma
        b = (self._high - self._mu) / self._sigma
        z = self._cdf(b) - self._cdf(a)
        term1 = (a * self._phi(a) - b * self._phi(b)) / z
        term2 = ((self._phi(a) - self._phi(b)) / z) ** 2
        return self._sigma**2 * (1.0 + term1 - term2)

    def support(self) -> Tuple[float, float]:
        return (self._low, self._high)


class MixtureCompetency(CompetencyDistribution):
    """A finite mixture of competency distributions.

    Models populations with distinct voter classes ("casual holders" vs
    "researchers" in the DAO example); exact moments follow from the law
    of total variance.
    """

    def __init__(
        self,
        components: Sequence[CompetencyDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("need equally many (>=1) components and weights")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._components: List[CompetencyDistribution] = list(components)
        self._weights = w / w.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choices = rng.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size)
        for idx, component in enumerate(self._components):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self._weights, self._components))
        )

    def variance(self) -> float:
        mean = self.mean()
        second_moment = sum(
            w * (c.variance() + c.mean() ** 2)
            for w, c in zip(self._weights, self._components)
        )
        return float(second_moment - mean**2)

    def support(self) -> Tuple[float, float]:
        los, his = zip(*(c.support() for c in self._components))
        return (min(los), max(his))
