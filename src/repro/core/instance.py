"""Problem instances ``G = (V, E, p)`` and the local view given to mechanisms.

A :class:`ProblemInstance` couples an immutable voting :class:`Graph` with
a competency vector ``p``.  Voter identity is the vertex index; the paper's
"wlog sorted" convention is available via :meth:`ProblemInstance.sorted_by_competency`
but not forced, because topologies like the star attach meaning to specific
vertices (the hub).

Local delegation mechanisms never see the instance itself.  They receive a
:class:`LocalView` containing exactly the information the model grants a
voter (Section 2.1): the pseudonymous identities of its neighbours, which
of them are *approved* (at least ``alpha`` more competent), and an
arbitrary-but-fixed ranking over the approved neighbours.  Competencies are
deliberately absent from the view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro._util.validation import check_index, check_probability_vector
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class LocalView:
    """Everything a voter is allowed to observe (Section 2.1).

    Attributes
    ----------
    voter:
        The observing voter's own index.
    num_neighbors:
        Size of the voter's neighbourhood.
    neighbors:
        Pseudonymous neighbour identities (vertex indices; identities are
        opaque labels to the mechanism — competencies are not included).
    approved:
        The subset of ``neighbors`` in the approval set ``J(voter)``,
        i.e. neighbours with competency at least ``alpha`` higher.  The
        paper grants local mechanisms "an arbitrary ranking over the
        approval set"; we instantiate that ranking as ascending
        competency (ties by vertex index), which is the instantiation
        under which ranking-sensitive mechanisms like best-of-k
        multi-delegation are meaningful.  Competency *values* remain
        hidden.
    """

    voter: int
    num_neighbors: int
    neighbors: Tuple[int, ...]
    approved: Tuple[int, ...]

    @property
    def approval_count(self) -> int:
        """Size of the approved subset ``|J(i) ∩ N(i)|``."""
        return len(self.approved)


class ProblemInstance:
    """A voting problem instance ``G = (V, E, p)`` with approval threshold.

    Parameters
    ----------
    graph:
        The undirected voting graph.
    competencies:
        Sequence of per-voter correctness probabilities ``p_i ∈ [0, 1]``.
    alpha:
        Approval threshold ``α > 0``: voter ``j`` is approved by voter
        ``i`` iff ``p_i + α ≤ p_j``.  Strict positivity guarantees every
        induced delegation graph is acyclic (Section 2.2).
    """

    __slots__ = ("_graph", "_p", "_alpha", "_structure", "_compiled")

    def __init__(
        self, graph: Graph, competencies: Sequence[float], alpha: float = 1e-9
    ) -> None:
        p = check_probability_vector("competencies", competencies)
        if len(p) != graph.num_vertices:
            raise ValueError(
                f"competency vector length {len(p)} does not match "
                f"graph size {graph.num_vertices}"
            )
        if not alpha > 0:
            raise ValueError(
                f"alpha must be > 0 to guarantee acyclic delegation, got {alpha}"
            )
        self._graph = graph
        self._p = p
        self._p.setflags(write=False)
        self._alpha = float(alpha)
        self._structure = None
        self._compiled = None

    # -- accessors ---------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The underlying voting graph."""
        return self._graph

    @property
    def competencies(self) -> np.ndarray:
        """Read-only competency vector ``p`` (indexed by voter)."""
        return self._p

    @property
    def alpha(self) -> float:
        """Approval threshold ``α``."""
        return self._alpha

    @property
    def num_voters(self) -> int:
        """Number of voters ``n``."""
        return self._graph.num_vertices

    def competency(self, voter: int) -> float:
        """Competency ``p_i`` of ``voter``."""
        check_index("voter", voter, self.num_voters)
        return float(self._p[voter])

    def mean_competency(self) -> float:
        """Average competency ``(1/n) Σ p_i``."""
        return float(self._p.mean())

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(n={self.num_voters}, m={self._graph.num_edges}, "
            f"alpha={self._alpha})"
        )

    # -- approval ------------------------------------------------------------

    def approves(self, voter: int, other: int) -> bool:
        """Whether ``other`` is in the (global) approval set ``J(voter)``."""
        return self._p[voter] + self._alpha <= self._p[other]

    def approved_neighbors(self, voter: int) -> Tuple[int, ...]:
        """Neighbours of ``voter`` in ``J(voter)``, sorted by vertex index."""
        p_i = self._p[voter]
        threshold = p_i + self._alpha
        return tuple(
            v for v in self._graph.neighbors(voter) if self._p[v] >= threshold
        )

    def local_view(self, voter: int) -> LocalView:
        """The :class:`LocalView` the model grants to ``voter``."""
        check_index("voter", voter, self.num_voters)
        neighbors = self._graph.neighbors(voter)
        approved = sorted(
            self.approved_neighbors(voter), key=lambda v: (self._p[v], v)
        )
        return LocalView(
            voter=voter,
            num_neighbors=len(neighbors),
            neighbors=neighbors,
            approved=tuple(approved),
        )

    def approval_structure(self):
        """Cached :class:`~repro.core.structure.ApprovalStructure`.

        Built on first use; mechanisms use it to sample delegations in
        O(1) per voter instead of materialising local views each round.
        """
        if self._structure is None:
            from repro.core.structure import ApprovalStructure

            self._structure = ApprovalStructure(self)
        return self._structure

    def install_approval_structure(self, structure) -> None:
        """Install a precomputed :class:`ApprovalStructure` for this instance.

        Splice hook for the incremental engine: a patched copy of an
        instance reuses the clean portions of the previous structure
        instead of re-filtering the whole adjacency.  The structure must
        describe exactly this instance's ``(graph, competencies, alpha)``
        — the incremental tests pin spliced structures bitwise against
        scratch builds.  Must be called before the lazy builders run.
        """
        if structure.num_voters != self.num_voters:
            raise ValueError(
                f"structure covers {structure.num_voters} voters, "
                f"instance has {self.num_voters}"
            )
        if self._structure is not None or self._compiled is not None:
            raise ValueError(
                "cannot install a structure after the lazy builders ran"
            )
        self._structure = structure

    def compiled(self):
        """Cached :class:`~repro.core.compiled.CompiledInstance`.

        The flat-array (CSR) view of this instance consumed by the
        batched mechanism samplers and the batch Monte Carlo engine;
        built on first use.
        """
        if self._compiled is None:
            from repro.core.compiled import CompiledInstance

            self._compiled = CompiledInstance(self)
        return self._compiled

    # -- transforms ------------------------------------------------------------

    def sorted_by_competency(self) -> Tuple["ProblemInstance", np.ndarray]:
        """Relabel voters so ``p_0 ≤ p_1 ≤ … ≤ p_{n-1}`` (the paper's wlog).

        Returns the relabelled instance together with the permutation
        ``perm`` such that new voter ``i`` is old voter ``perm[i]``.
        Ties are broken by original index, so the permutation is stable.
        """
        perm = np.argsort(self._p, kind="stable")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(len(perm))
        new_graph = Graph(self.num_voters, inverse[self._graph.edge_array])

        return (
            ProblemInstance(new_graph, self._p[perm], alpha=self._alpha),
            perm,
        )

    def with_competencies(self, competencies: Sequence[float]) -> "ProblemInstance":
        """A copy of this instance with a different competency vector."""
        return ProblemInstance(self._graph, competencies, alpha=self._alpha)

    def with_alpha(self, alpha: float) -> "ProblemInstance":
        """A copy of this instance with a different approval threshold."""
        return ProblemInstance(self._graph, self._p, alpha=alpha)
