"""Core model types: problem instances, competencies, approval, restrictions.

Implements Section 2 of the paper: a problem instance ``G = (V, E, p)``,
the approval sets ``J(i)`` under threshold ``alpha``, composable graph
restrictions (Definition 1), plausible changeability / bounded competency,
and the delegate restriction (Definition 2).
"""

from repro.core.approval import ApprovalOracle, approval_set
from repro.core.approval_graph import (
    ApprovalGraphStats,
    approval_graph_stats,
    potential_hub_voters,
)
from repro.core.competencies import (
    bounded_uniform_competencies,
    constant_competencies,
    linear_competencies,
    plausible_changeability,
    sampled_competencies,
    two_block_competencies,
)
from repro.core.instance import LocalView, ProblemInstance
from repro.core.restrictions import (
    BoundedCompetency,
    CompleteGraph,
    GraphRestriction,
    MaxDegreeAtMost,
    MinDegreeAtLeast,
    PlausibleChangeability,
    RandomRegular,
    RestrictionSet,
)

__all__ = [
    "ProblemInstance",
    "LocalView",
    "ApprovalOracle",
    "approval_set",
    "ApprovalGraphStats",
    "approval_graph_stats",
    "potential_hub_voters",
    "constant_competencies",
    "linear_competencies",
    "bounded_uniform_competencies",
    "two_block_competencies",
    "sampled_competencies",
    "plausible_changeability",
    "GraphRestriction",
    "RestrictionSet",
    "CompleteGraph",
    "RandomRegular",
    "MaxDegreeAtMost",
    "MinDegreeAtLeast",
    "PlausibleChangeability",
    "BoundedCompetency",
]
