"""Graph restrictions (Definition 1) as composable predicate objects.

A restriction is a property a problem instance must satisfy; a
:class:`RestrictionSet` is the paper's ``G_n^P`` — all instances on ``n``
vertices satisfying every property in ``P``.  Restrictions validate
instances (for experiment sanity checks) and describe themselves (for
report headers).

The built-in restrictions mirror Section 2.1:

* ``K_n``                      → :class:`CompleteGraph`
* ``Rand(n, d)``               → :class:`RandomRegular`
* ``Δ ≤ k``                    → :class:`MaxDegreeAtMost`
* ``δ ≥ k``                    → :class:`MinDegreeAtLeast`
* ``PC = a``                   → :class:`PlausibleChangeability`
* ``p ∈ (β, 1-β)``             → :class:`BoundedCompetency`
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Tuple

import numpy as np

from repro.core.competencies import plausible_changeability
from repro.core.instance import ProblemInstance


class GraphRestriction(abc.ABC):
    """A single property instances must satisfy (element of ``P``)."""

    @abc.abstractmethod
    def is_satisfied(self, instance: ProblemInstance) -> bool:
        """Whether ``instance`` satisfies this restriction."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable form, e.g. ``"Δ ≤ 8"``."""

    def violation(self, instance: ProblemInstance) -> str:
        """Explain why ``instance`` violates this restriction ('' if it doesn't)."""
        if self.is_satisfied(instance):
            return ""
        return f"instance violates restriction {self.describe()}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class CompleteGraph(GraphRestriction):
    """The graph is the complete graph ``K_n``."""

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        return instance.graph.is_complete()

    def describe(self) -> str:
        return "K_n"


class RandomRegular(GraphRestriction):
    """The graph is d-regular (membership check for ``Rand(n, d)``).

    Uniform randomness of the draw is a property of the *generator*, not
    checkable on a single instance; the verifiable part is d-regularity.
    """

    def __init__(self, d: int) -> None:
        if d < 0:
            raise ValueError(f"d must be non-negative, got {d}")
        self.d = int(d)

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        degs = instance.graph.degrees()
        return all(deg == self.d for deg in degs)

    def describe(self) -> str:
        return f"Rand(n, {self.d})"


class MaxDegreeAtMost(GraphRestriction):
    """Maximum degree restriction ``Δ ≤ k``."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = int(k)

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        return instance.graph.max_degree() <= self.k

    def describe(self) -> str:
        return f"Δ ≤ {self.k}"


class MinDegreeAtLeast(GraphRestriction):
    """Minimum degree restriction ``δ ≥ k``."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = int(k)

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        return instance.graph.min_degree() >= self.k

    def describe(self) -> str:
        return f"δ ≥ {self.k}"


class PlausibleChangeability(GraphRestriction):
    """``PC = a``: mean competency within ``a`` of one half.

    Captures "the instance is close enough to undecided that delegation
    can flip the outcome" (Section 2.1).
    """

    def __init__(self, a: float) -> None:
        if a < 0:
            raise ValueError(f"a must be non-negative, got {a}")
        self.a = float(a)

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        return plausible_changeability(instance.competencies) <= self.a + 1e-12

    def describe(self) -> str:
        return f"PC = {self.a}"


class BoundedCompetency(GraphRestriction):
    """``p ∈ (β, 1-β)``: every competency strictly inside the interval."""

    def __init__(self, beta: float) -> None:
        if not 0 < beta < 0.5:
            raise ValueError(f"beta must lie in (0, 1/2), got {beta}")
        self.beta = float(beta)

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        p = instance.competencies
        return bool(np.all(p > self.beta) and np.all(p < 1.0 - self.beta))

    def describe(self) -> str:
        return f"p ∈ ({self.beta}, {1.0 - self.beta})"


class RestrictionSet:
    """The paper's ``G_n^P``: conjunction of restrictions ``P``.

    Iterable and composable with ``&``.
    """

    def __init__(self, restrictions: Iterable[GraphRestriction] = ()) -> None:
        self._restrictions: Tuple[GraphRestriction, ...] = tuple(restrictions)

    @property
    def restrictions(self) -> Tuple[GraphRestriction, ...]:
        """The member restrictions, in insertion order."""
        return self._restrictions

    def is_satisfied(self, instance: ProblemInstance) -> bool:
        """Whether ``instance`` satisfies every restriction."""
        return all(r.is_satisfied(instance) for r in self._restrictions)

    def violations(self, instance: ProblemInstance) -> List[str]:
        """All violation messages for ``instance`` (empty when satisfied)."""
        return [
            r.violation(instance)
            for r in self._restrictions
            if not r.is_satisfied(instance)
        ]

    def require(self, instance: ProblemInstance) -> ProblemInstance:
        """Return ``instance`` unchanged, raising if any restriction fails."""
        problems = self.violations(instance)
        if problems:
            raise ValueError("; ".join(problems))
        return instance

    def describe(self) -> str:
        """Set-builder style description, e.g. ``{K_n, PC = 0.1}``."""
        inner = ", ".join(r.describe() for r in self._restrictions)
        return "{" + inner + "}"

    def __and__(self, other: "RestrictionSet") -> "RestrictionSet":
        if not isinstance(other, RestrictionSet):
            return NotImplemented
        return RestrictionSet(self._restrictions + other._restrictions)

    def __iter__(self):
        return iter(self._restrictions)

    def __len__(self) -> int:
        return len(self._restrictions)

    def __repr__(self) -> str:
        return f"RestrictionSet({self.describe()})"
