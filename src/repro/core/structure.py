"""Precomputed approval structure for fast delegation sampling.

Monte Carlo experiments sample thousands of delegation forests per
instance; building a :class:`~repro.core.instance.LocalView` per voter
per round is O(n²) on dense graphs.  :class:`ApprovalStructure` computes
the approval relation once per instance:

* on a **complete graph**, voter ``i``'s approved set is a suffix of the
  competency-sorted voter order, so the structure stores just the sorted
  order and one start index per voter (O(n) memory);
* on **general graphs**, a CSR-style (indptr, indices) pair stores each
  voter's approved neighbours (O(m) memory), built by filtering the
  graph's flat CSR adjacency with one vectorised comparison — no
  per-voter Python loop, which is what lets million-voter instances
  compile in seconds.  The original per-voter construction is retained
  as :meth:`ApprovalStructure._reference_general_csr` and pinned to the
  vectorised build by the equivalence suite.

Mechanism fast paths consume only ``approved_count``, ``degree`` and
``sample_approved`` — exactly the information their ``decide`` methods
use — so the fast and slow paths are distributionally identical (tested).
"""

from __future__ import annotations
# reprolint: sparse-safe

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.graphs.graph import csr_index_dtype

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.instance import ProblemInstance


class ApprovalStructure:
    """Per-instance approval relation in sampling-friendly form."""

    def __init__(self, instance: "ProblemInstance") -> None:
        self._instance = instance
        graph = instance.graph
        p = instance.competencies
        alpha = instance.alpha
        n = graph.num_vertices
        self._degrees = np.asarray(graph.degrees(), dtype=np.int64)
        self._complete = graph.is_complete() and n >= 2
        if self._complete:
            # Approved set of i = suffix of the ascending-competency order
            # starting at the first voter with p >= p_i + alpha.
            order = np.argsort(p, kind="stable")
            sorted_p = p[order]
            starts = np.searchsorted(sorted_p, p + alpha, side="left")
            self._order = order
            self._starts = starts.astype(np.int64)
            self._counts = (n - self._starts).astype(np.int64)
            self._indptr = None
            self._indices = None
        else:
            indptr, indices = self._general_csr(graph, p, alpha)
            self._indptr = indptr
            self._indices = indices
            self._counts = np.diff(indptr).astype(np.int64)
            self._order = None
            self._starts = None

    @classmethod
    def from_general_csr(
        cls,
        instance: "ProblemInstance",
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "ApprovalStructure":
        """Wrap precomputed general-form CSR arrays without rebuilding.

        Splice hook for the incremental engine
        (:mod:`repro.incremental.structure`): after a localised edit the
        approved relation changes only in the dirtied voters' segments,
        so the caller patches the CSR arrays directly and installs them
        here instead of re-filtering the whole adjacency.  The arrays
        must equal what ``_general_csr`` would build for ``instance`` —
        the incremental tests pin this bitwise.  Only the general form is
        supported; complete graphs rebuild through the constructor (the
        O(n) suffix form is cheap from scratch).
        """
        self = object.__new__(cls)
        self._instance = instance
        self._degrees = np.asarray(instance.graph.degrees(), dtype=np.int64)
        self._complete = False
        self._indptr = indptr
        self._indices = indices
        self._counts = np.diff(indptr).astype(np.int64)
        self._order = None
        self._starts = None
        return self

    # reprolint: reference=_reference_general_csr
    @staticmethod
    def _general_csr(
        graph, p: np.ndarray, alpha: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approved-neighbour CSR by flat filtering of the adjacency CSR.

        An edge entry ``(src, dst)`` survives iff ``p[dst] >= p[src] +
        alpha`` — the same float comparison, voter by voter, that
        ``ProblemInstance.approved_neighbors`` evaluates, so the filter
        is bit-identical to the reference loop.  Each surviving segment
        is then ordered competency-ascending (ties by vertex index) with
        a single global lexsort keyed ``(src, p[dst], dst)``, matching
        the per-voter ``lexsort((arr, p[arr]))`` of the reference.
        """
        n = graph.num_vertices
        g_indptr, g_indices = graph.adjacency_csr()
        degrees = np.diff(g_indptr).astype(np.int64)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        dst = g_indices.astype(np.int64, copy=False)
        thresholds = p + alpha
        keep = p[dst] >= thresholds[src]
        asrc = src[keep]
        adst = dst[keep]
        if adst.size:
            order = np.lexsort((adst, p[adst], asrc))
            adst = adst[order]
        counts = np.bincount(asrc, minlength=n)
        idx_dtype = csr_index_dtype(n, int(adst.size))
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        ).astype(idx_dtype)
        return indptr, adst.astype(idx_dtype)

    @staticmethod
    def _reference_general_csr(
        instance: "ProblemInstance",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Seed builder: per-voter approved-neighbour loop.

        Kept as the equivalence-test oracle for :meth:`_general_csr`.
        """
        n = instance.num_voters
        p = instance.competencies
        indptr = np.zeros(n + 1, dtype=np.int64)
        chunks = []
        for v in range(n):
            approved = instance.approved_neighbors(v)
            indptr[v + 1] = indptr[v] + len(approved)
            if approved:
                arr = np.asarray(approved, dtype=np.int64)
                # Competency-ascending segment order (ties by index)
                # so that "offset within segment" equals local rank —
                # used by best-of-k sampling.
                arr = arr[np.lexsort((arr, p[arr]))]
                chunks.append(arr)
        indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return indptr, indices

    @property
    def num_voters(self) -> int:
        """Number of voters."""
        return len(self._counts)

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degrees, indexed by voter."""
        return self._degrees

    @property
    def approved_counts(self) -> np.ndarray:
        """``|J(i) ∩ N(i)|`` for every voter."""
        return self._counts

    @property
    def is_complete_form(self) -> bool:
        """Whether the O(n) complete-graph suffix form is in use."""
        return self._complete

    def approved_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The approved relation as ``(indptr, indices)`` CSR arrays.

        Segments are in local-view order (competency ascending, ties by
        index).  On general graphs this returns the stored arrays
        directly (no copy); on complete graphs the CSR is materialised
        from the O(n) suffix form on demand — callers that only need
        counts or offset resolution should prefer those accessors.
        """
        if not self._complete:
            return self._indptr, self._indices
        n = self.num_voters
        counts = self._counts
        total = int(counts.sum())
        idx_dtype = csr_index_dtype(n, total)
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        ).astype(idx_dtype)
        voters = np.repeat(np.arange(n, dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) - indptr[voters].astype(np.int64)
        indices = (
            self._resolve_offsets(voters, offsets).astype(idx_dtype)
            if total
            else np.empty(0, dtype=idx_dtype)
        )
        return indptr, indices

    def approved_count(self, voter: int) -> int:
        """``|J(voter) ∩ N(voter)|``."""
        return int(self._counts[voter])

    def approved_neighbors(self, voter: int) -> Tuple[int, ...]:
        """The approved neighbours of ``voter`` (unordered)."""
        if self._complete:
            return tuple(int(v) for v in self._order[self._starts[voter]:])
        lo, hi = self._indptr[voter], self._indptr[voter + 1]
        return tuple(int(v) for v in self._indices[lo:hi])

    def sample_approved(self, voter: int, rng: np.random.Generator) -> int:
        """A uniformly random approved neighbour of ``voter``."""
        count = int(self._counts[voter])
        if count == 0:
            raise ValueError(f"voter {voter} has no approved neighbours")
        k = int(rng.integers(count))
        if self._complete:
            return int(self._order[self._starts[voter] + k])
        return int(self._indices[self._indptr[voter] + k])

    def sample_approved_many(
        self, voters: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorised :meth:`sample_approved` over an array of voters.

        All listed voters must have at least one approved neighbour.
        """
        counts = self._counts[voters]
        if np.any(counts == 0):
            bad = int(voters[np.argmax(counts == 0)])
            raise ValueError(f"voter {bad} has no approved neighbours")
        offsets = rng.integers(counts)
        return self._resolve_offsets(voters, offsets)

    def sample_best_of_k_many(
        self, voters: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """For each voter, the most competent of ``k`` uniform approved picks.

        Segments are stored in ascending competency (ties by index), so
        "best of k picks" is simply the maximal offset among k uniform
        offsets — the same tie-breaking as the local-view ranking.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        counts = self._counts[voters]
        if np.any(counts == 0):
            bad = int(voters[np.argmax(counts == 0)])
            raise ValueError(f"voter {bad} has no approved neighbours")
        offsets = rng.integers(np.broadcast_to(counts, (k, len(voters)))).max(axis=0)
        return self._resolve_offsets(voters, offsets)

    def _resolve_offsets(self, voters: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        if self._complete:
            return self._order[self._starts[voters] + offsets]
        return self._indices[self._indptr[voters] + offsets]
